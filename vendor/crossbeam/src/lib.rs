//! Minimal vendored stand-in for the `crossbeam` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the subset of crossbeam it actually uses: multi-producer multi-consumer
//! channels (`unbounded`/`bounded`), timeout/try receives, the dynamic
//! [`channel::Select`] multiplexer, and the two-arm `select!` macro.
//!
//! The implementation is a `Mutex<VecDeque>` + `Condvar` queue with a
//! watcher list for select support — far simpler than crossbeam's lock-free
//! channels, but semantically equivalent for this workspace's traffic.

// The workspace-wide disallowed-types lint steers code to parking_lot, but
// this vendored stub deliberately builds on bare std::sync primitives so it
// depends on nothing else.
#![allow(clippy::disallowed_types)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, Weak};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by blocking [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is empty right now.
        Empty,
        /// Channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel is empty and every sender is gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        cap: Option<usize>,
    }

    /// A watcher registered by a [`Select`] waiting on several channels.
    pub(crate) struct Watcher {
        fired: Mutex<bool>,
        cv: Condvar,
    }

    impl Watcher {
        fn new() -> Self {
            Watcher {
                fired: Mutex::new(false),
                cv: Condvar::new(),
            }
        }

        fn fire(&self) {
            let mut f = self.fired.lock().unwrap_or_else(|e| e.into_inner());
            *f = true;
            self.cv.notify_all();
        }

        fn reset(&self) {
            *self.fired.lock().unwrap_or_else(|e| e.into_inner()) = false;
        }

        /// Waits until fired or the timeout elapses (spurious-safe).
        fn wait(&self, timeout: Duration) {
            let deadline = Instant::now() + timeout;
            let mut f = self.fired.lock().unwrap_or_else(|e| e.into_inner());
            while !*f {
                let now = Instant::now();
                let Some(left) = deadline.checked_duration_since(now) else {
                    return;
                };
                let (guard, res) = self
                    .cv
                    .wait_timeout(f, left)
                    .unwrap_or_else(|e| e.into_inner());
                f = guard;
                if res.timed_out() {
                    return;
                }
            }
        }
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        recv_ready: Condvar,
        send_ready: Condvar,
        watchers: Mutex<Vec<Weak<Watcher>>>,
    }

    impl<T> Chan<T> {
        fn notify_watchers(&self) {
            let mut ws = self.watchers.lock().unwrap_or_else(|e| e.into_inner());
            ws.retain(|w| match w.upgrade() {
                Some(w) => {
                    w.fire();
                    true
                }
                None => false,
            });
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half of a channel. Clones share the queue: each message is
    /// delivered to exactly one receiver.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded channel. A capacity of zero is treated as one (the
    /// workspace never uses rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                cap,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .chan
                            .send_ready
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.recv_ready.notify_one();
            self.chan.notify_watchers();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.chan.lock();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                self.chan.recv_ready.notify_all();
                self.chan.notify_watchers();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .recv_ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _) = self
                    .chan
                    .recv_ready
                    .wait_timeout(st, left)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.send_ready.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Identity helper used by the `select!` macro to normalise owned
        /// receivers and references to a plain `&Receiver<T>`.
        pub fn by_ref(&self) -> &Receiver<T> {
            self
        }

        fn msg_ready(&self) -> bool {
            let st = self.chan.lock();
            !st.queue.is_empty() || st.senders == 0
        }

        fn attach(&self, w: &Arc<Watcher>) {
            self.chan
                .watchers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::downgrade(w));
        }

        fn detach(&self, w: &Arc<Watcher>) {
            self.chan
                .watchers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|c| c.upgrade().map(|c| !Arc::ptr_eq(&c, w)).unwrap_or(false));
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.chan.lock();
                st.receivers -= 1;
                st.receivers
            };
            if remaining == 0 {
                self.chan.send_ready.notify_all();
            }
        }
    }

    /// Object-safe view of a receiver used by [`Select`].
    trait Pollable {
        fn poll_ready(&self) -> bool;
        fn poll_attach(&self, w: &Arc<Watcher>);
        fn poll_detach(&self, w: &Arc<Watcher>);
    }

    impl<T> Pollable for Receiver<T> {
        fn poll_ready(&self) -> bool {
            self.msg_ready()
        }
        fn poll_attach(&self, w: &Arc<Watcher>) {
            self.attach(w);
        }
        fn poll_detach(&self, w: &Arc<Watcher>) {
            self.detach(w);
        }
    }

    /// Dynamic multiplexer over heterogeneous receivers.
    ///
    /// Register receivers with [`Select::recv`] (returning their index),
    /// then block in [`Select::select`] until one is ready. "Ready" means a
    /// message is queued or the channel is disconnected, so a completing
    /// [`SelectedOperation::recv`] never blocks in the single-consumer
    /// pattern this workspace uses.
    #[derive(Default)]
    pub struct Select<'a> {
        targets: Vec<&'a dyn Pollable>,
    }

    impl<'a> Select<'a> {
        /// Creates an empty selector.
        pub fn new() -> Self {
            Select {
                targets: Vec::new(),
            }
        }

        /// Adds a receive operation; returns its index.
        pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
            self.targets.push(r);
            self.targets.len() - 1
        }

        /// Blocks until some registered receiver is ready.
        pub fn select(&mut self) -> SelectedOperation {
            assert!(!self.targets.is_empty(), "select on empty Select");
            let watcher = Arc::new(Watcher::new());
            for t in &self.targets {
                t.poll_attach(&watcher);
            }
            let index = loop {
                watcher.reset();
                if let Some(i) = self.targets.iter().position(|t| t.poll_ready()) {
                    break i;
                }
                // The timeout is belt-and-braces against lost wakeups; the
                // watcher normally fires as soon as any channel changes.
                watcher.wait(Duration::from_millis(50));
            };
            for t in &self.targets {
                t.poll_detach(&watcher);
            }
            SelectedOperation { index }
        }
    }

    /// A ready operation returned by [`Select::select`].
    pub struct SelectedOperation {
        index: usize,
    }

    impl SelectedOperation {
        /// Index of the ready operation (as returned by [`Select::recv`]).
        pub fn index(&self) -> usize {
            self.index
        }

        /// Completes the operation against the receiver it was registered
        /// with.
        pub fn recv<T>(self, r: &Receiver<T>) -> Result<T, RecvError> {
            match r.try_recv() {
                Ok(v) => Ok(v),
                Err(TryRecvError::Disconnected) => Err(RecvError),
                // Lost a race with another consumer of the same receiver;
                // fall back to blocking (single-consumer in practice).
                Err(TryRecvError::Empty) => r.recv(),
            }
        }
    }

    // Re-export the crate-level `select!` macro at `crossbeam::channel::`
    // scope, matching the real crate's layout.
    pub use crate::select;
}

/// Two-arm `select!` over receive operations, in crossbeam's syntax:
///
/// ```ignore
/// crossbeam::channel::select! {
///     recv(stop_rx) -> _ => break,
///     recv(sub.receiver()) -> msg => { /* use msg: Result<T, RecvError> */ }
/// }
/// ```
#[macro_export]
macro_rules! select {
    (recv($r1:expr) -> $p1:pat => $b1:expr, recv($r2:expr) -> $p2:pat => $b2:expr $(,)?) => {{
        let __sel_r1 = ($r1).by_ref();
        let __sel_r2 = ($r2).by_ref();
        let mut __sel = $crate::channel::Select::new();
        let __i1 = __sel.recv(__sel_r1);
        let __sel_op = {
            let _ = __sel.recv(__sel_r2);
            __sel.select()
        };
        if __sel_op.index() == __i1 {
            let $p1 = __sel_op.recv(__sel_r1);
            $b1
        } else {
            let $p2 = __sel_op.recv(__sel_r2);
            $b2
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_propagates() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<i32>();
        drop(rx2);
        assert!(tx2.send(5).is_err());
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = bounded(1);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn select_picks_ready_channel() {
        let (tx_a, rx_a) = unbounded::<&str>();
        let (_tx_b, rx_b) = unbounded::<&str>();
        tx_a.send("hello").unwrap();
        let mut sel = Select::new();
        let ia = sel.recv(&rx_a);
        let _ib = sel.recv(&rx_b);
        let op = sel.select();
        assert_eq!(op.index(), ia);
        assert_eq!(op.recv(&rx_a), Ok("hello"));
    }

    #[test]
    fn select_wakes_on_late_message() {
        let (tx, rx) = unbounded::<i32>();
        let (_keep, rx_idle) = unbounded::<i32>();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(7).unwrap();
        });
        let mut sel = Select::new();
        let _ = sel.recv(&rx_idle);
        let i = sel.recv(&rx);
        let op = sel.select();
        assert_eq!(op.index(), i);
        assert_eq!(op.recv(&rx), Ok(7));
        h.join().unwrap();
    }

    #[test]
    fn select_macro_two_arms() {
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let (tx, rx) = unbounded::<i32>();
        let rx_ref = &rx;
        tx.send(9).unwrap();
        let got = crate::select! {
            recv(stop_rx) -> _ => unreachable!("stop not signalled"),
            recv(rx_ref) -> msg => Some(msg.unwrap()),
        };
        assert_eq!(got, Some(9));
        stop_tx.send(()).unwrap();
        let got = crate::select! {
            recv(stop_rx) -> _ => Some(0),
            recv(rx_ref) -> _msg => unreachable!("no message queued"),
        };
        assert_eq!(got, Some(0));
        let _ = Arc::new(());
    }

    #[test]
    fn shared_receivers_split_work() {
        let (tx, rx) = unbounded::<i32>();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
    }
}
