//! Minimal vendored stand-in for the `serde_json` crate.
//!
//! Shares the [`Value`] model with the vendored `serde` crate and adds the
//! text layer: a strict JSON parser ([`from_str`]), compact printing
//! ([`to_string`], via `Value`'s `Display`), value conversion
//! ([`to_value`] / [`from_value`]), and the [`json!`] literal macro.

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Reconstructs a typed value out of a [`Value`].
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize(&value)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().to_string())
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close);
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value)
}

/// Parses JSON text into a [`Value`].
fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!("invalid JSON at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid surrogate pair"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid unicode escape"))?;
        let v =
            u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| Error::custom("invalid number"))?;
            Number::from_f64(f)
                .map(Value::Number)
                .ok_or_else(|| Error::custom("non-finite number"))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::Number(Number::PosInt(u)))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Number(Number::NegInt(i)))
        } else {
            // Integer out of 64-bit range: keep it as a float.
            let f: f64 = text.parse().map_err(|_| Error::custom("invalid number"))?;
            Ok(Value::Number(Number::Float(f)))
        }
    }
}

/// Builds a [`Value`] from a JSON-like literal, interpolating expressions.
///
/// Mirrors serde_json's `json!`: object keys are string literals, values
/// are nested JSON literals or arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////////////// arrays ////////////////////
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////// objects ////////////////////
    // Finished (possibly via trailing comma).
    (@object $object:ident () () ()) => {};
    // Insert the current entry followed by more entries.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Current value is a JSON keyword / literal / nested structure.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Current value is an expression followed by more entries.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Current value is the last expression.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one token onto the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////// primary ////////////////////
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! argument serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str::<Value>("42").unwrap(), json!(42));
        assert_eq!(from_str::<Value>("-17").unwrap(), json!(-17));
        assert_eq!(from_str::<Value>("2.5").unwrap(), json!(2.5));
        assert_eq!(from_str::<Value>("1e3").unwrap(), json!(1000.0));
        assert_eq!(from_str::<Value>("\"hi\"").unwrap(), json!("hi"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = json!("a\"b\\c\nd\te\u{1F600}");
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
        assert_eq!(
            from_str::<Value>("\"\\u0041\\uD83D\\uDE00\"").unwrap(),
            json!("A\u{1F600}")
        );
    }

    #[test]
    fn nested_round_trip() {
        let v = json!({
            "name": "Ada",
            "skills": ["python", "ml"],
            "level": 3,
            "score": 0.75,
            "meta": {"active": true, "note": null}
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["skills"][1], json!("ml"));
        assert_eq!(back["meta"]["active"], Value::Bool(true));
    }

    #[test]
    fn json_macro_interpolates_expressions() {
        let x = 5u64;
        let s = format!("id-{x}");
        let v = json!({"x": x, "s": s, "arr": [x, {"inner": x}], "lit": [1, 2, 3]});
        assert_eq!(v["x"], json!(5));
        assert_eq!(v["s"], json!("id-5"));
        assert_eq!(v["arr"][1]["inner"], json!(5));
        assert_eq!(v["lit"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn float_int_distinction_survives_text() {
        let v = json!({"f": 1.0, "i": 1});
        let text = to_string(&v).unwrap();
        assert_eq!(text, "{\"f\":1.0,\"i\":1}");
        let back: Value = from_str(&text).unwrap();
        assert!(back["f"].as_f64().is_some());
        assert!(back["f"].as_i64().is_none());
        assert_eq!(back["i"].as_i64(), Some(1));
    }

    #[test]
    fn typed_round_trip_via_text() {
        let v: Vec<(String, f64)> = vec![("a".into(), 0.5), ("b".into(), 1.5)];
        let text = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({"a": [1], "b": {}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": [\n    1\n  ]"));
    }
}
