//! Minimal vendored stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so serialization is vendored
//! as a deliberately small value-based design: [`Serialize`] renders a type
//! into the in-memory JSON [`Value`] model and [`Deserialize`] reads it back
//! out. The `serde_json` vendored crate layers text parsing/printing and the
//! `json!` macro on top of the same [`Value`].
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) are provided by
//! the companion `serde_derive` proc-macro crate and generate impls of these
//! two traits with serde's standard data-model conventions: structs as
//! objects, newtype structs as their inner value, enums externally tagged.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a value into the in-memory JSON data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn serialize(&self) -> Value;
}

/// Reconstructs a value from the in-memory JSON data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a [`Value`], rejecting mismatched shapes.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Number::from_f64(*self)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        (*self as f64).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| V::deserialize(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| V::deserialize(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array"))?;
                const LEN: usize = 0 $( + { let _ = $idx; 1 } )+;
                if arr.len() != LEN {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($name::deserialize(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::deserialize(&42i64.serialize()).unwrap(), 42);
        assert_eq!(u64::deserialize(&7u64.serialize()).unwrap(), 7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(String::deserialize(&"hi".serialize()).unwrap(), "hi");
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(Option::<String>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(String::deserialize(&Value::Bool(true)).is_err());
        assert!(u64::deserialize(&Value::String("x".into())).is_err());
        assert!(u64::deserialize(&(-3i64).serialize()).is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1i64, 2, 3];
        assert_eq!(Vec::<i64>::deserialize(&v.serialize()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        assert_eq!(
            BTreeMap::<String, f64>::deserialize(&m.serialize()).unwrap(),
            m
        );
        let t = ("x".to_string(), 2u64);
        assert_eq!(<(String, u64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn ints_deserialize_as_floats() {
        assert_eq!(f64::deserialize(&3i64.serialize()).unwrap(), 3.0);
    }
}
