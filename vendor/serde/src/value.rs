//! The in-memory JSON value model shared by the vendored `serde` and
//! `serde_json` crates.

use std::collections::BTreeMap;
use std::fmt;

/// JSON object map. Sorted by key (mirrors serde_json's default BTreeMap
/// backing), which also makes serialized output deterministic.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON number: positive integer, negative integer, or float.
///
/// Integers and floats are distinct (as in serde_json): `1` and `1.0` are
/// different numbers at the value level, though numeric deserializers accept
/// integers where floats are expected.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl Number {
    /// Builds a number from a float; `None` for NaN/infinite values, which
    /// JSON cannot represent.
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number::Float(f))
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(_) => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// The value as a float (integers convert losslessly enough).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(u) => Some(u as f64),
            Number::NegInt(i) => Some(i as f64),
            Number::Float(f) => Some(f),
        }
    }

    /// True if this is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// True if this is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Float(_), _) | (_, Number::Float(_)) => false,
            // Integer representations compare by numeric value.
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x == y,
                _ => a.as_u64() == b.as_u64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(u) => write!(f, "{u}"),
            Number::NegInt(i) => write!(f, "{i}"),
            Number::Float(x) => {
                // Keep floats recognizable as floats across a text round
                // trip (serde_json prints `1.0`, not `1`).
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

macro_rules! number_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                Number::PosInt(v as u64)
            }
        }
    )*};
}

macro_rules! number_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                if v < 0 {
                    Number::NegInt(v as i64)
                } else {
                    Number::PosInt(v as u64)
                }
            }
        }
    )*};
}

number_from_unsigned!(u8, u16, u32, u64, usize);
number_from_signed!(i8, i16, i32, i64, isize);

/// An arbitrary JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-value map.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// String content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Numeric content as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric content as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable elements if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Entries if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutable entries if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True for numbers.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True for booleans.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Indexes into objects (by key) or arrays (by position); `None` when
    /// the index does not apply.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Mutable variant of [`Value::get`].
    pub fn get_mut<I: ValueIndex>(&mut self, index: I) -> Option<&mut Value> {
        index.index_into_mut(self)
    }

    /// Replaces `self` with `Null`, returning the previous value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

/// Index types usable with [`Value::get`] and `value[...]`.
pub trait ValueIndex {
    /// Shared lookup.
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value>;
    /// Mutable lookup.
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value>;
    /// Mutable lookup for `value[i] = x`, inserting where serde_json would.
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value;
}

impl ValueIndex for usize {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_array()?.get(*self)
    }
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value> {
        v.as_array_mut()?.get_mut(*self)
    }
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        // serde_json panics on non-arrays and out-of-bounds indices.
        let len = v.as_array().map(Vec::len);
        match v.as_array_mut().and_then(|a| a.get_mut(*self)) {
            Some(slot) => slot,
            None => panic!("cannot index into {len:?} with {self}"),
        }
    }
}

impl ValueIndex for str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_object()?.get(self)
    }
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value> {
        v.as_object_mut()?.get_mut(self)
    }
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        if matches!(v, Value::Null) {
            *v = Value::Object(Map::new());
        }
        match v {
            Value::Object(map) => map.entry(self.to_string()).or_insert(Value::Null),
            other => panic!("cannot index into {other} with key {self:?}"),
        }
    }
}

impl ValueIndex for String {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().index_into(v)
    }
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value> {
        self.as_str().index_into_mut(v)
    }
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        self.as_str().index_or_insert(v)
    }
}

impl<T: ValueIndex + ?Sized> ValueIndex for &T {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        (**self).index_into(v)
    }
    fn index_into_mut<'a>(&self, v: &'a mut Value) -> Option<&'a mut Value> {
        (**self).index_into_mut(v)
    }
    fn index_or_insert<'a>(&self, v: &'a mut Value) -> &'a mut Value {
        (**self).index_or_insert(v)
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;

    /// Missing keys/indices yield `Null` (matching serde_json), so chained
    /// lookups like `v["a"]["b"]` never panic.
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: ValueIndex> std::ops::IndexMut<I> for Value {
    /// `value["key"] = x` inserts into objects (auto-vivifying `Null`);
    /// array indices must already exist, matching serde_json.
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_or_insert(self)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<Number> for Value {
    fn from(n: Number) -> Value {
        Value::Number(n)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(o: Map<String, Value>) -> Value {
        Value::Object(o)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::from(v))
            }
        }
    )*};
}

value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Number::from_f64(f)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::from(f as f64)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON text (serde_json's `Display` behaviour).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(o) => {
                f.write_str("{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_equality_is_typed() {
        assert_eq!(Number::PosInt(1), Number::PosInt(1));
        assert_eq!(Number::NegInt(-1), Number::NegInt(-1));
        assert_eq!(Number::PosInt(5), Number::from(5i64));
        assert_ne!(Number::PosInt(1), Number::Float(1.0));
        assert_eq!(Number::Float(1.5), Number::Float(1.5));
    }

    #[test]
    fn float_display_keeps_decimal_point() {
        assert_eq!(Number::Float(1.0).to_string(), "1.0");
        assert_eq!(Number::Float(0.25).to_string(), "0.25");
        assert_eq!(Number::PosInt(3).to_string(), "3");
    }

    #[test]
    fn value_display_compact() {
        let mut obj = Map::new();
        obj.insert("b".to_string(), Value::from(2u64));
        obj.insert("a".to_string(), Value::from("x\n"));
        let v = Value::Array(vec![Value::Null, Value::Bool(true), Value::Object(obj)]);
        assert_eq!(v.to_string(), "[null,true,{\"a\":\"x\\n\",\"b\":2}]");
    }

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["ghost"].is_null());
        assert!(v["a"]["b"].is_null());
    }

    #[test]
    fn take_replaces_with_null() {
        let mut v = Value::Bool(true);
        assert_eq!(v.take(), Value::Bool(true));
        assert!(v.is_null());
    }
}
