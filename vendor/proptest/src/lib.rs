//! Minimal vendored stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so property testing is
//! vendored as deterministic random sampling: every `proptest!` test runs a
//! fixed number of cases (default 64, `PROPTEST_CASES` overrides) with a
//! per-case RNG seeded from the case index — reproducible across runs with
//! no persistence files. There is no shrinking; a failure reports the case
//! index so it can be replayed.
//!
//! Supported strategy surface (what this workspace uses): integer and float
//! ranges, `Just`, simple regex-ish string patterns (`.{m,n}`,
//! `[class]{m,n}`), tuples of strategies, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, `any::<bool>()`, and the
//! `prop_map` / `prop_flat_map` / `prop_shuffle` combinators.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Case-count and RNG plumbing used by the `proptest!` macro.

    /// Number of cases per property (env `PROPTEST_CASES`, default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one property run.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0x5DEE_CE66_D1CE_B00C ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n.max(1)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// True with probability `p`.
        pub fn chance(&mut self, p: f64) -> bool {
            self.unit_f64() < p
        }
    }
}

use test_runner::TestRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!` failed.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }

    /// True for rejections (skip, don't fail).
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
            TestCaseError::Reject => f.write_str("input rejected by prop_assume!"),
        }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Random permutation of a generated `Vec`.
    fn prop_shuffle(self) -> ShuffleStrategy<Self>
    where
        Self: Sized,
    {
        ShuffleStrategy { inner: self }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// `prop_map` adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMapStrategy<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// `prop_shuffle` adapter (Fisher-Yates over generated vectors).
pub struct ShuffleStrategy<S> {
    inner: S,
}

impl<S, T> Strategy for ShuffleStrategy<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.new_value(rng);
        for i in (1..v.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

/// Type-erased strategy handle.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (s as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// Pattern strategy for `&'static str` regex subset: `.{m,n}` or
/// `[class]{m,n}` where `class` supports literal chars and `a-z` ranges.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses the supported pattern subset into (alphabet, min_len, max_len).
fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        // Printable ASCII for the `.` class (plenty for payload fuzzing).
        ((32u8..127).map(|b| b as char).collect::<Vec<char>>(), rest)
    } else if let Some(body_and_rest) = pattern.strip_prefix('[') {
        let close = body_and_rest
            .find(']')
            .unwrap_or_else(|| panic!("unsupported pattern `{pattern}`"));
        let body: Vec<char> = body_and_rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                alphabet.extend((lo..=hi).collect::<Vec<char>>());
                i += 3;
            } else {
                alphabet.push(body[i]);
                i += 1;
            }
        }
        (alphabet, &body_and_rest[close + 1..])
    } else {
        panic!("unsupported pattern `{pattern}`: expected `.` or `[class]`");
    };
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported pattern `{pattern}`: expected `{{m,n}}`"));
    let (min, max) = counts
        .split_once(',')
        .unwrap_or_else(|| panic!("unsupported pattern `{pattern}`"));
    let min: usize = min.trim().parse().expect("pattern min count");
    let max: usize = max.trim().parse().expect("pattern max count");
    assert!(min <= max && !class.is_empty(), "bad pattern `{pattern}`");
    (class, min, max)
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Types with a canonical strategy (only what the workspace needs).
pub trait Arbitrary {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical bool strategy (fair coin).
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.chance(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `option`, `sample`).

    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Sizes acceptable to [`vec()`]: a fixed `usize` or a `Range`.
        pub trait IntoSizeRange {
            /// Converts into a half-open `[min, max)` pair.
            fn bounds(self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self + 1)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end)
            }
        }

        /// Strategy producing vectors of values from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.max - self.min) as u64;
                let len = self.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }
    }

    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `Option`s of an inner strategy.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
                // Bias toward Some, as real proptest does.
                rng.chance(0.75).then(|| self.inner.new_value(rng))
            }
        }

        /// `prop::option::of(strategy)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }

    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy picking one element of a fixed set.
        pub struct SelectStrategy<T: Clone> {
            choices: Vec<T>,
        }

        impl<T: Clone> Strategy for SelectStrategy<T> {
            type Value = T;
            fn new_value(&self, rng: &mut TestRng) -> T {
                self.choices[rng.below(self.choices.len() as u64) as usize].clone()
            }
        }

        /// `prop::sample::select(choices)`.
        pub fn select<T: Clone>(choices: Vec<T>) -> SelectStrategy<T> {
            assert!(!choices.is_empty(), "select from empty set");
            SelectStrategy { choices }
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]`-able function running `test_runner::cases()` cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::cases();
                let __strategies = ($($strat,)+);
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    // Tuple strategies generate left-to-right, matching textual order.
                    let ($($arg,)+) = $crate::Strategy::new_value(&__strategies, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(e) if e.is_rejection() => continue,
                        ::std::result::Result::Err(e) => {
                            panic!("proptest `{}` case {} failed: {}", stringify!($name), __case, e)
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{}` == `{}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{}` != `{}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..200 {
            let v = (0u64..40).new_value(&mut rng);
            assert!(v < 40);
            let f = (0.5f64..1.0).new_value(&mut rng);
            assert!((0.5..1.0).contains(&f));
        }
    }

    #[test]
    fn pattern_strategies_match_shape() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        for _ in 0..100 {
            let s = "[a-z]{2,8}".new_value(&mut rng);
            assert!((2..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = ".{0,16}".new_value(&mut rng);
            assert!(t.len() <= 16);
            let u = "[a-z ]{0,60}".new_value(&mut rng);
            assert!(u.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::test_runner::TestRng::for_case(2);
        let strat = (0u32..10, "[a-z]{1,3}")
            .prop_map(|(n, s)| format!("{n}-{s}"))
            .prop_flat_map(|s| prop::collection::vec(Just(s), 1..4));
        for _ in 0..50 {
            let v = strat.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let shuffled = Just((0..10).collect::<Vec<usize>>()).prop_shuffle();
        let mut p = shuffled.new_value(&mut rng);
        p.sort_unstable();
        assert_eq!(p, (0..10).collect::<Vec<usize>>());
    }

    proptest! {
        #[test]
        fn macro_binds_and_asserts(xs in prop::collection::vec(0u32..100, 0..10), b in any::<bool>()) {
            prop_assume!(xs.len() != 3);
            prop_assert!(xs.len() < 10);
            let coin = u8::from(b);
            prop_assert_eq!(coin, u8::from(b));
            prop_assert_ne!(xs.len(), 3);
        }
    }
}
