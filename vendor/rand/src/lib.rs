//! Minimal vendored stand-in for the `rand` crate (0.8-style API subset).
//!
//! Provides exactly what this workspace uses: a seedable `StdRng`,
//! `Rng::gen_range` over integer/float ranges, and `Rng::gen_bool`. The
//! generator is a SplitMix64-seeded xorshift — statistically plain but
//! deterministic, fast, and more than adequate for synthetic data
//! generation.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`a..b`, `a..=b`, integer or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator.
    ///
    /// SplitMix64 state advance with an xorshift-style output mix; passes
    /// the "looks random enough for synthetic HR data" bar by a wide margin.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: i64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&x));
            let f: f64 = rng.gen_range(0.85..1.25);
            assert!((0.85..1.25).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
