//! Minimal vendored stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access, so this crate supplies the
//! subset of the criterion API the workspace benches use: `criterion_group!`
//! / `criterion_main!`, `Criterion::benchmark_group`, group configuration
//! (`sample_size`, `measurement_time`, `throughput`), `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and `Bencher::iter`.
//!
//! Timing model: each benchmark warms up briefly, then runs `sample_size`
//! samples whose per-sample iteration count is sized so one sample takes
//! roughly `measurement_time / sample_size`, and reports the mean, min, and
//! max nanoseconds per iteration on stdout. There is no statistical
//! analysis, plotting, or baseline persistence — benches are for relative,
//! same-machine comparisons only.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (one per `criterion_group!`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_benchmark(&format!("{}", id.into()), sample_size, measurement_time, f);
    }
}

/// Throughput annotation attached to a group (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Records the per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
    }

    /// Ends the group (separator line in output).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `payload`.
    pub fn iter<O>(&mut self, mut payload: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(payload());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `payload` only, rebuilding its input with `setup` each
    /// iteration outside the measured window.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut payload: impl FnMut(I) -> O,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(payload(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Opaque value sink preventing the optimiser from deleting the payload.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration pass: one iteration, to size per-sample iteration counts.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time / sample_size as u32;
    let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000);

    let mut nanos_per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        nanos_per_iter.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    let mean = nanos_per_iter.iter().sum::<f64>() / nanos_per_iter.len() as f64;
    let min = nanos_per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = nanos_per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<56} time: [{} {} {}]",
        format_nanos(min),
        format_nanos(mean),
        format_nanos(max)
    );
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendor/criterion");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(1));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("agents", 4).to_string(), "agents/4");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
