//! Derive macros for the vendored `serde` crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-based serde traits, following serde's standard data
//! model: structs serialize as objects, newtype structs as their inner
//! value, tuple structs as arrays, and enums externally tagged (unit
//! variants as strings, data variants as single-entry objects).
//!
//! Written against the raw `proc_macro` API (no `syn`/`quote` in the
//! offline build container): the input item is parsed with a small
//! hand-rolled scanner and the generated impls are emitted by string
//! formatting + `TokenStream::from_str`.
//!
//! Supported shapes — everything this workspace derives on:
//! - non-generic structs with named fields (`#[serde(default)]` honoured,
//!   `Option<..>` fields default to `None` when missing)
//! - tuple / newtype / unit structs
//! - non-generic enums with unit, newtype, tuple, and struct variants

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::str::FromStr;

/// One parsed named field.
struct Field {
    name: String,
    /// Normalised type text (used only to spot `Option<..>`).
    ty: String,
    /// `#[serde(default)]` present.
    has_default: bool,
}

/// Shape of a struct body or enum variant payload.
enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Scans an attribute token (`#` already consumed; `group` is the `[...]`)
/// for `serde(default)`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Consumes leading attributes; returns whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if attr_is_serde_default(g) {
                has_default = true;
            }
            *i += 2;
        } else {
            break;
        }
    }
    has_default
}

/// Consumes a `pub` / `pub(..)` visibility prefix.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Collects type tokens until a top-level comma, tracking `<`/`>` depth.
fn take_type(tokens: &[TokenTree], i: &mut usize) -> String {
    let mut depth: i32 = 0;
    let mut ty = String::new();
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                ',' if depth == 0 => break,
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        write!(ty, "{t}").expect("write to String");
        *i += 1;
    }
    ty.retain(|c| !c.is_whitespace());
    ty
}

/// Parses the contents of a `{ .. }` group as named fields.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let has_default = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected ':' after field `{name}`, found {other:?}"),
        }
        let ty = take_type(&tokens, &mut i);
        // Skip the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field {
            name,
            ty,
            has_default,
        });
    }
    fields
}

/// Counts top-level comma-separated entries of a `( .. )` group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let ty = take_type(&tokens, &mut i);
        if !ty.is_empty() {
            count += 1;
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn shape_from_group(group: &proc_macro::Group) -> Shape {
    match group.delimiter() {
        Delimiter::Brace => Shape::Named(parse_named_fields(group)),
        Delimiter::Parenthesis => match count_tuple_fields(group) {
            1 => Shape::Newtype,
            n => Shape::Tuple(n),
        },
        other => panic!("serde derive: unexpected delimiter {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported; derive on `{name}` manually");
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) => shape_from_group(g),
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde derive: expected enum body, found {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body_tokens.len() {
                skip_attrs(&body_tokens, &mut j);
                let vname = match body_tokens.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => break,
                    other => panic!("serde derive: expected variant name, found {other:?}"),
                };
                j += 1;
                let shape = match body_tokens.get(j) {
                    Some(TokenTree::Group(g)) => {
                        let s = shape_from_group(g);
                        j += 1;
                        s
                    }
                    _ => Shape::Unit,
                };
                if let Some(TokenTree::Punct(p)) = body_tokens.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
                variants.push(Variant { name: vname, shape });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde derive: cannot derive for `{other}`"),
    }
}

fn is_option(ty: &str) -> bool {
    ty.starts_with("Option<")
        || ty.starts_with("option::Option<")
        || ty.starts_with("std::option::Option<")
        || ty.starts_with("::std::option::Option<")
        || ty.starts_with("core::option::Option<")
}

/// `a: ... deserialize from __obj.get("a") ...` for one named field.
fn named_field_de(out: &mut String, f: &Field, source: &str) {
    let missing = if f.has_default || is_option(&f.ty) {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::custom(\"missing field `{}`\"))",
            f.name
        )
    };
    let _ = write!(
        out,
        "{name}: match {source}.get(\"{name}\") {{ \
            ::std::option::Option::Some(__f) => ::serde::Deserialize::deserialize(__f)?, \
            ::std::option::Option::None => {missing}, \
        }},",
        name = f.name,
        source = source,
        missing = missing,
    );
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    let _ = write!(
        out,
        "#[automatically_derived] #[allow(warnings, clippy::all, clippy::pedantic)] \
         impl ::serde::Serialize for {name} {{ \
           fn serialize(&self) -> ::serde::Value {{ "
    );
    match item {
        Item::Struct { shape, .. } => match shape {
            Shape::Unit => {
                let _ = write!(out, "::serde::Value::Null");
            }
            Shape::Newtype => {
                let _ = write!(out, "::serde::Serialize::serialize(&self.0)");
            }
            Shape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                let _ = write!(
                    out,
                    "::serde::Value::Array(::std::vec![{}])",
                    elems.join(", ")
                );
            }
            Shape::Named(fields) => {
                let _ = write!(out, "let mut __map = ::serde::Map::new(); ");
                for f in fields {
                    let _ = write!(
                        out,
                        "__map.insert(::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::serialize(&self.{n})); ",
                        n = f.name
                    );
                }
                let _ = write!(out, "::serde::Value::Object(__map)");
            }
        },
        Item::Enum { name, variants } => {
            let _ = write!(out, "match self {{ ");
            for v in variants {
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            out,
                            "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")), ",
                            v = v.name
                        );
                    }
                    Shape::Newtype => {
                        let _ = write!(
                            out,
                            "{name}::{v}(__f0) => {{ \
                               let mut __map = ::serde::Map::new(); \
                               __map.insert(::std::string::String::from(\"{v}\"), \
                                 ::serde::Serialize::serialize(__f0)); \
                               ::serde::Value::Object(__map) }}, ",
                            v = v.name
                        );
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        let _ = write!(
                            out,
                            "{name}::{v}({binds}) => {{ \
                               let mut __map = ::serde::Map::new(); \
                               __map.insert(::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Array(::std::vec![{elems}])); \
                               ::serde::Value::Object(__map) }}, ",
                            v = v.name,
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut __inner = ::serde::Map::new(); ");
                        for f in fields {
                            let _ = write!(
                                inner,
                                "__inner.insert(::std::string::String::from(\"{n}\"), \
                                 ::serde::Serialize::serialize({n})); ",
                                n = f.name
                            );
                        }
                        let _ = write!(
                            out,
                            "{name}::{v} {{ {binds} }} => {{ \
                               {inner} \
                               let mut __map = ::serde::Map::new(); \
                               __map.insert(::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Object(__inner)); \
                               ::serde::Value::Object(__map) }}, ",
                            v = v.name,
                            binds = binds.join(", "),
                            inner = inner
                        );
                    }
                }
            }
            let _ = write!(out, "}}");
        }
    }
    let _ = write!(out, " }} }}");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    let _ = write!(
        out,
        "#[automatically_derived] #[allow(warnings, clippy::all, clippy::pedantic)] \
         impl ::serde::Deserialize for {name} {{ \
           fn deserialize(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ "
    );
    match item {
        Item::Struct { shape, .. } => match shape {
            Shape::Unit => {
                let _ = write!(
                    out,
                    "if __value.is_null() {{ ::std::result::Result::Ok({name}) }} else {{ \
                       ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected null for unit struct {name}\")) }}"
                );
            }
            Shape::Newtype => {
                let _ = write!(
                    out,
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))"
                );
            }
            Shape::Tuple(n) => {
                let _ = write!(
                    out,
                    "let __arr = __value.as_array().ok_or_else(|| \
                       ::serde::Error::custom(\"expected array for {name}\"))?; \
                     if __arr.len() != {n} {{ \
                       return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong tuple length for {name}\")); }} "
                );
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                    .collect();
                let _ = write!(
                    out,
                    "::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                );
            }
            Shape::Named(fields) => {
                let _ = write!(
                    out,
                    "let __obj = __value.as_object().ok_or_else(|| \
                       ::serde::Error::custom(\"expected object for {name}\"))?; \
                     ::std::result::Result::Ok({name} {{ "
                );
                for f in fields {
                    named_field_de(&mut out, f, "__obj");
                }
                let _ = write!(out, " }})");
            }
        },
        Item::Enum { name, variants } => {
            // Unit variants arrive as plain strings.
            let _ = write!(
                out,
                "if let ::std::option::Option::Some(__s) = __value.as_str() {{ \
                   return match __s {{ "
            );
            for v in variants {
                if matches!(v.shape, Shape::Unit) {
                    let _ = write!(
                        out,
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}), ",
                        v = v.name
                    );
                }
            }
            let _ = write!(
                out,
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                   format!(\"unknown variant `{{__other}}` of {name}\"))) }}; }} "
            );
            // Data variants arrive as single-entry objects.
            let _ = write!(
                out,
                "let __obj = __value.as_object().ok_or_else(|| \
                   ::serde::Error::custom(\"expected string or object for {name}\"))?; \
                 if __obj.len() != 1 {{ \
                   return ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected single-entry object for {name}\")); }} \
                 let (__k, __inner) = __obj.iter().next().expect(\"len checked\"); \
                 match __k.as_str() {{ "
            );
            for v in variants {
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            out,
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}), ",
                            v = v.name
                        );
                    }
                    Shape::Newtype => {
                        let _ = write!(
                            out,
                            "\"{v}\" => ::std::result::Result::Ok(\
                               {name}::{v}(::serde::Deserialize::deserialize(__inner)?)), ",
                            v = v.name
                        );
                    }
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                            .collect();
                        let _ = write!(
                            out,
                            "\"{v}\" => {{ \
                               let __arr = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{v}\"))?; \
                               if __arr.len() != {n} {{ \
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                   \"wrong tuple length for {name}::{v}\")); }} \
                               ::std::result::Result::Ok({name}::{v}({elems})) }}, ",
                            v = v.name,
                            elems = elems.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let mut body = String::new();
                        for f in fields {
                            named_field_de(&mut body, f, "__o");
                        }
                        let _ = write!(
                            out,
                            "\"{v}\" => {{ \
                               let __o = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object for {name}::{v}\"))?; \
                               ::std::result::Result::Ok({name}::{v} {{ {body} }}) }}, ",
                            v = v.name,
                            body = body
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                   format!(\"unknown variant `{{__other}}` of {name}\"))) }}"
            );
        }
    }
    let _ = write!(out, " }} }}");
    out
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    TokenStream::from_str(&code).expect("serde derive: generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    TokenStream::from_str(&code).expect("serde derive: generated Deserialize impl parses")
}
