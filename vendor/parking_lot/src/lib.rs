//! Minimal vendored stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! handful of external dependencies are vendored as API-compatible subsets.
//! This one wraps `std::sync` locks with parking_lot's non-poisoning guard
//! API: `lock()`, `read()` and `write()` return guards directly instead of
//! `Result`s, and a panicked holder does not poison the lock for everyone
//! else.

// This crate IS the lock facade the workspace-wide disallowed-types lint
// points everyone else at, so it alone may touch std::sync locks.
#![allow(clippy::disallowed_types)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
