.PHONY: all build test fmt lint bench bench-json bench-check chaos serving serving-bench

all: build lint test

build:
	cargo build --workspace

test:
	cargo test --workspace

fmt:
	cargo fmt --all --check

# Lint gate: formatting plus clippy over the whole workspace, all targets,
# warnings are errors.
lint: fmt
	cargo clippy --all-targets -- -D warnings

bench:
	cargo bench --workspace

# Machine-readable coordinator perf trajectory: sequential vs parallel vs
# memoized timings, written to BENCH_coordinator.json at the repo root
# (override the destination with BENCH_OUT=path).
bench-json:
	cargo run --release -p blueprint-bench --bin bench_json

# Bench-regression gate: regenerate the coordinator report into target/ and
# compare its parallel/memoized medians against the committed baseline,
# normalized by the sequential median so machine speed cancels out.
bench-check:
	mkdir -p target
	BENCH_OUT=target/BENCH_candidate.json cargo run --release -p blueprint-bench --bin bench_json
	cargo run --release -p blueprint-bench --bin bench_check -- target/BENCH_candidate.json

# Chaos suite: both interaction flows under three pinned fault seeds. Seeds
# are fixed so CI failures reproduce locally with the exact same injected
# faults. Lint runs as its own CI job, not as a dependency here.
chaos:
	CHAOS_SEEDS="7 21 42" cargo test -p integration-tests --test chaos -- --nocapture

# Serving gate: the session-isolation property battery at the 256-case
# acceptance bar plus the pinned-seed 16-session golden serving run.
serving:
	PROPTEST_CASES=256 cargo test -p blueprint-session --test isolation_properties
	cargo test -p integration-tests --test serving

# Throughput sweep: the deterministic load generator replays the mixed
# workload across 1/8/64 sessions and writes BENCH_serving.json at the repo
# root (override the destination with BENCH_OUT=path).
serving-bench:
	cargo run --release -p blueprint-bench --bin loadgen -- --sessions 1,8,64
