.PHONY: all build test lint bench bench-json chaos

all: build lint test

build:
	cargo build --workspace

test:
	cargo test --workspace

# Clippy gate: the whole workspace, all targets, warnings are errors.
lint:
	cargo clippy --all-targets -- -D warnings

bench:
	cargo bench --workspace

# Machine-readable coordinator perf trajectory: sequential vs parallel vs
# memoized timings, written to BENCH_coordinator.json at the repo root.
bench-json:
	cargo run --release -p blueprint-bench --bin bench_json

# Chaos suite: both interaction flows under three pinned fault seeds,
# gated on a clean clippy run. Seeds are fixed so CI failures reproduce
# locally with the exact same injected faults.
chaos: lint
	CHAOS_SEEDS="7 21 42" cargo test -p integration-tests --test chaos -- --nocapture
