.PHONY: all build test fmt lint bench bench-json bench-check chaos serving serving-bench ir docs

all: build lint test

build:
	cargo build --workspace

test:
	cargo test --workspace

fmt:
	cargo fmt --all --check

# Lint gate: formatting plus clippy over the whole workspace, all targets,
# warnings are errors.
lint: fmt
	cargo clippy --all-targets -- -D warnings

bench:
	cargo bench --workspace

# Machine-readable coordinator perf trajectory: sequential vs parallel vs
# memoized timings, written to BENCH_coordinator.json at the repo root
# (override the destination with BENCH_OUT=path).
bench-json:
	cargo run --release -p blueprint-bench --bin bench_json

# Bench-regression gate: regenerate the coordinator report and the
# 64-session serving sweep point into target/ and compare their watched
# medians (parallel/memoized for the coordinator; serving p50/p99 for the
# router) against the committed baselines, normalized by the sequential
# medians so machine speed cancels out.
bench-check:
	mkdir -p target
	BENCH_OUT=target/BENCH_candidate.json cargo run --release -p blueprint-bench --bin bench_json
	BENCH_OUT=target/BENCH_serving_candidate.json cargo run --release -p blueprint-bench --bin loadgen -- --sessions 64
	cargo run --release -p blueprint-bench --bin bench_check -- target/BENCH_candidate.json \
		--serving target/BENCH_serving_candidate.json

# Chaos suite: both interaction flows under three pinned fault seeds. Seeds
# are fixed so CI failures reproduce locally with the exact same injected
# faults. Lint runs as its own CI job, not as a dependency here.
chaos:
	CHAOS_SEEDS="7 21 42" cargo test -p integration-tests --test chaos -- --nocapture

# Serving gate: the session-isolation property battery at the 256-case
# acceptance bar plus the pinned-seed 16-session golden serving run.
serving:
	PROPTEST_CASES=256 cargo test -p blueprint-session --test isolation_properties
	cargo test -p integration-tests --test serving

# Throughput sweep: the deterministic load generator replays the mixed
# workload across 1/8/64 sessions and writes BENCH_serving.json at the repo
# root (override the destination with BENCH_OUT=path).
serving-bench:
	cargo run --release -p blueprint-bench --bin loadgen -- --sessions 1,8,64

# Unified-IR gate: the IR unit tests, the lowering/execution equivalence
# property battery (including the pinned adaptive re-optimization seeds),
# and the joint optimizer search.
ir:
	cargo test -p blueprint-planner --lib ir::
	cargo test -p blueprint-planner --test ir_properties
	cargo test -p blueprint-optimizer --lib unified::

# Rustdoc gate: the API docs must build without warnings.
docs:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
