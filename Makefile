.PHONY: all build test lint bench chaos

all: build lint test

build:
	cargo build --workspace

test:
	cargo test --workspace

# Clippy gate: the whole workspace, all targets, warnings are errors.
lint:
	cargo clippy --all-targets -- -D warnings

bench:
	cargo bench --workspace

# Chaos suite: both interaction flows under three pinned fault seeds,
# gated on a clean clippy run. Seeds are fixed so CI failures reproduce
# locally with the exact same injected faults.
chaos: lint
	CHAOS_SEEDS="7 21 42" cargo test -p integration-tests --test chaos -- --nocapture
