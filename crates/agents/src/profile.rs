//! Cost/latency/accuracy profiles and deployment configuration.
//!
//! Every agent carries a [`CostProfile`] — the per-call quality-of-service
//! statistics the optimizer (§V-G) and the budget (§V-H) consume — and a
//! [`Deployment`] describing how its container should be provisioned
//! (Fig 2: agents are deployed to CPU or GPU clusters according to their
//! requirements, configured to scale and restart on failure).

use serde::{Deserialize, Serialize};

/// Per-call quality-of-service statistics for an agent or operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Monetary cost per invocation, in abstract cost units
    /// (e.g. thousandths of a cent).
    pub cost_per_call: f64,
    /// Expected latency per invocation in microseconds (simulated time).
    pub latency_micros: u64,
    /// Expected task accuracy/quality in `[0, 1]`.
    pub accuracy: f64,
}

impl CostProfile {
    /// A free, instant, perfect profile — the identity for composition.
    pub const FREE: CostProfile = CostProfile {
        cost_per_call: 0.0,
        latency_micros: 0,
        accuracy: 1.0,
    };

    /// Creates a profile, clamping accuracy into `[0, 1]`.
    pub fn new(cost_per_call: f64, latency_micros: u64, accuracy: f64) -> Self {
        CostProfile {
            cost_per_call: cost_per_call.max(0.0),
            latency_micros,
            accuracy: accuracy.clamp(0.0, 1.0),
        }
    }

    /// Sequential composition: costs and latencies add, accuracies multiply
    /// (errors compound along a pipeline).
    pub fn then(&self, next: &CostProfile) -> CostProfile {
        CostProfile {
            cost_per_call: self.cost_per_call + next.cost_per_call,
            latency_micros: self.latency_micros + next.latency_micros,
            accuracy: self.accuracy * next.accuracy,
        }
    }

    /// Parallel composition: costs add, latency is the max, accuracies
    /// multiply (all branches must be right).
    pub fn join(&self, other: &CostProfile) -> CostProfile {
        CostProfile {
            cost_per_call: self.cost_per_call + other.cost_per_call,
            latency_micros: self.latency_micros.max(other.latency_micros),
            accuracy: self.accuracy * other.accuracy,
        }
    }
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile::FREE
    }
}

/// The compute class an agent's container needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DeploymentKind {
    /// General-purpose CPU container.
    #[default]
    Cpu,
    /// GPU-backed container (LLMs, embedding models).
    Gpu,
    /// Co-located with a data service (SQL executors, retrievers).
    DataProximate,
}

/// Container/deployment configuration for an agent (Fig 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// Compute class.
    pub kind: DeploymentKind,
    /// Docker image the enterprise registry maps the agent to.
    pub image: String,
    /// Number of worker threads in the instance's pool.
    pub workers: usize,
    /// Maximum automatic restarts after a processor panic before the
    /// instance is marked failed.
    pub max_restarts: u32,
}

impl Default for Deployment {
    fn default() -> Self {
        Deployment {
            kind: DeploymentKind::Cpu,
            image: "blueprint/agent:latest".to_string(),
            workers: 2,
            max_restarts: 3,
        }
    }
}

impl Deployment {
    /// GPU deployment with the given worker count.
    pub fn gpu(workers: usize) -> Self {
        Deployment {
            kind: DeploymentKind::Gpu,
            workers: workers.max(1),
            ..Default::default()
        }
    }

    /// CPU deployment with the given worker count.
    pub fn cpu(workers: usize) -> Self {
        Deployment {
            kind: DeploymentKind::Cpu,
            workers: workers.max(1),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps() {
        let p = CostProfile::new(-1.0, 5, 1.5);
        assert_eq!(p.cost_per_call, 0.0);
        assert_eq!(p.accuracy, 1.0);
    }

    #[test]
    fn sequential_composition() {
        let a = CostProfile::new(1.0, 10, 0.9);
        let b = CostProfile::new(2.0, 20, 0.8);
        let c = a.then(&b);
        assert_eq!(c.cost_per_call, 3.0);
        assert_eq!(c.latency_micros, 30);
        assert!((c.accuracy - 0.72).abs() < 1e-9);
    }

    #[test]
    fn parallel_composition_takes_max_latency() {
        let a = CostProfile::new(1.0, 10, 0.9);
        let b = CostProfile::new(2.0, 50, 1.0);
        let c = a.join(&b);
        assert_eq!(c.cost_per_call, 3.0);
        assert_eq!(c.latency_micros, 50);
        assert!((c.accuracy - 0.9).abs() < 1e-9);
    }

    #[test]
    fn free_is_identity_for_then() {
        let a = CostProfile::new(1.5, 42, 0.7);
        let composed = CostProfile::FREE.then(&a);
        assert_eq!(composed, a);
    }

    #[test]
    fn deployment_defaults_and_builders() {
        let d = Deployment::default();
        assert_eq!(d.kind, DeploymentKind::Cpu);
        assert!(d.workers >= 1);
        assert_eq!(Deployment::gpu(4).kind, DeploymentKind::Gpu);
        assert_eq!(Deployment::gpu(0).workers, 1);
        assert_eq!(Deployment::cpu(3).workers, 3);
    }
}
