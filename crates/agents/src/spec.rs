//! Agent specifications: the declarative half of an agent.
//!
//! The spec is what the agent registry stores (§V-C): name, description,
//! typed parameters, stream inclusion/exclusion rules, cost profile, and
//! deployment configuration. The host uses it to wire subscriptions and to
//! validate inputs; planners use it to match outputs to inputs.

use serde::{Deserialize, Serialize};

use blueprint_streams::{Selector, TagFilter};

use crate::error::AgentError;
use crate::param::ParamSpec;
use crate::profile::{CostProfile, Deployment};
use crate::trigger::PairingPolicy;
use crate::Result;

/// How the agent is activated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ActivationMode {
    /// Only by explicit `execute-agent` control messages (centralized).
    #[default]
    Centralized,
    /// Only by monitoring stream/message tags (decentralized, autonomous).
    Decentralized,
    /// Both: responds to instructions *and* monitors tags.
    Hybrid,
}

impl ActivationMode {
    /// True if the agent listens for explicit instructions.
    pub fn accepts_instructions(self) -> bool {
        matches!(self, ActivationMode::Centralized | ActivationMode::Hybrid)
    }

    /// True if the agent autonomously monitors tagged streams.
    pub fn monitors_tags(self) -> bool {
        matches!(self, ActivationMode::Decentralized | ActivationMode::Hybrid)
    }
}

/// Binds one input parameter to a stream subscription.
///
/// Each binding is a "place" in the agent's trigger net (Fig 4): messages
/// matching `selector` + `filter` become tokens for parameter `param`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamBinding {
    /// Input parameter this binding feeds.
    pub param: String,
    /// Which streams to watch.
    pub selector: Selector,
    /// Which messages on those streams count (inclusion/exclusion rules).
    pub filter: TagFilter,
}

impl StreamBinding {
    /// Binds `param` to all messages carrying any of the given tags.
    pub fn tagged<I, T>(param: impl Into<String>, tags: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<blueprint_streams::Tag>,
    {
        StreamBinding {
            param: param.into(),
            selector: Selector::AllStreams,
            filter: TagFilter::any_of(tags),
        }
    }

    /// Binds `param` to every message of a specific stream.
    pub fn stream(
        param: impl Into<String>,
        stream: impl Into<blueprint_streams::StreamId>,
    ) -> Self {
        StreamBinding {
            param: param.into(),
            selector: Selector::Stream(stream.into()),
            filter: TagFilter::all(),
        }
    }
}

/// The full declarative description of an agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentSpec {
    /// Unique agent name (kebab-case by convention, e.g. `job-matcher`).
    pub name: String,
    /// Natural-language description used for registry search and planning.
    pub description: String,
    /// Input parameter declarations.
    pub inputs: Vec<ParamSpec>,
    /// Output parameter declarations.
    pub outputs: Vec<ParamSpec>,
    /// Stream bindings for decentralized activation (one per bound input).
    pub bindings: Vec<StreamBinding>,
    /// How tokens from multiple bindings are paired when firing.
    pub pairing: PairingPolicy,
    /// Activation mode.
    pub activation: ActivationMode,
    /// Tags this agent attaches to its outputs (drives downstream
    /// tag-chained workflows, e.g. NL2Q tagging its output `sql`).
    pub output_tags: Vec<String>,
    /// QoS statistics for planning and budgeting.
    pub profile: CostProfile,
    /// Container/deployment configuration.
    pub deployment: Deployment,
}

impl AgentSpec {
    /// Creates a minimal centralized agent spec.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        AgentSpec {
            name: name.into(),
            description: description.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            bindings: Vec::new(),
            pairing: PairingPolicy::Zip,
            activation: ActivationMode::Centralized,
            output_tags: Vec::new(),
            profile: CostProfile::FREE,
            deployment: Deployment::default(),
        }
    }

    /// Builder-style: adds an input parameter.
    pub fn with_input(mut self, p: ParamSpec) -> Self {
        self.inputs.push(p);
        self
    }

    /// Builder-style: adds an output parameter.
    pub fn with_output(mut self, p: ParamSpec) -> Self {
        self.outputs.push(p);
        self
    }

    /// Builder-style: adds a stream binding and switches on tag monitoring.
    pub fn with_binding(mut self, b: StreamBinding) -> Self {
        self.bindings.push(b);
        if self.activation == ActivationMode::Centralized {
            self.activation = ActivationMode::Hybrid;
        }
        self
    }

    /// Builder-style: sets the activation mode.
    pub fn with_activation(mut self, mode: ActivationMode) -> Self {
        self.activation = mode;
        self
    }

    /// Builder-style: sets the pairing policy.
    pub fn with_pairing(mut self, pairing: PairingPolicy) -> Self {
        self.pairing = pairing;
        self
    }

    /// Builder-style: sets the cost profile.
    pub fn with_profile(mut self, profile: CostProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Builder-style: sets the deployment.
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Builder-style: adds an output tag.
    pub fn with_output_tag(mut self, tag: impl Into<String>) -> Self {
        self.output_tags.push(tag.into());
        self
    }

    /// Finds an input parameter spec by name.
    pub fn input(&self, name: &str) -> Option<&ParamSpec> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Finds an output parameter spec by name.
    pub fn output(&self, name: &str) -> Option<&ParamSpec> {
        self.outputs.iter().find(|p| p.name == name)
    }

    /// Validates internal consistency of the spec.
    pub fn validate(&self) -> Result<()> {
        if self.name.trim().is_empty() {
            return Err(AgentError::InvalidSpec("empty agent name".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for p in &self.inputs {
            if !seen.insert(&p.name) {
                return Err(AgentError::InvalidSpec(format!(
                    "duplicate input parameter: {}",
                    p.name
                )));
            }
        }
        let mut seen_out = std::collections::HashSet::new();
        for p in &self.outputs {
            if !seen_out.insert(&p.name) {
                return Err(AgentError::InvalidSpec(format!(
                    "duplicate output parameter: {}",
                    p.name
                )));
            }
        }
        for b in &self.bindings {
            if self.input(&b.param).is_none() {
                return Err(AgentError::InvalidSpec(format!(
                    "binding references unknown input parameter: {}",
                    b.param
                )));
            }
        }
        if self.activation.monitors_tags() && self.bindings.is_empty() {
            return Err(AgentError::InvalidSpec(
                "tag-monitoring agent has no stream bindings".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::DataType;

    fn spec() -> AgentSpec {
        AgentSpec::new("job-matcher", "match seekers to jobs")
            .with_input(ParamSpec::required(
                "job_seeker_data",
                "profile",
                DataType::Json,
            ))
            .with_input(ParamSpec::required("jobs", "job rows", DataType::Table))
            .with_input(ParamSpec::optional(
                "criteria",
                "conditions",
                DataType::Text,
            ))
            .with_output(ParamSpec::required(
                "matches",
                "ranked matches",
                DataType::Table,
            ))
    }

    #[test]
    fn valid_spec_passes() {
        spec().validate().unwrap();
    }

    #[test]
    fn duplicate_input_rejected() {
        let s = spec().with_input(ParamSpec::required("jobs", "again", DataType::Table));
        assert!(matches!(s.validate(), Err(AgentError::InvalidSpec(_))));
    }

    #[test]
    fn duplicate_output_rejected() {
        let s = spec().with_output(ParamSpec::required("matches", "again", DataType::Table));
        assert!(s.validate().is_err());
    }

    #[test]
    fn binding_to_unknown_param_rejected() {
        let s = spec().with_binding(StreamBinding::tagged("nope", ["x"]));
        assert!(s.validate().is_err());
    }

    #[test]
    fn empty_name_rejected() {
        assert!(AgentSpec::new("  ", "d").validate().is_err());
    }

    #[test]
    fn monitoring_without_bindings_rejected() {
        let s = spec().with_activation(ActivationMode::Decentralized);
        assert!(s.validate().is_err());
    }

    #[test]
    fn adding_binding_upgrades_activation() {
        let s = spec().with_binding(StreamBinding::tagged("criteria", ["criteria"]));
        assert_eq!(s.activation, ActivationMode::Hybrid);
        s.validate().unwrap();
    }

    #[test]
    fn activation_mode_predicates() {
        assert!(ActivationMode::Centralized.accepts_instructions());
        assert!(!ActivationMode::Centralized.monitors_tags());
        assert!(ActivationMode::Decentralized.monitors_tags());
        assert!(!ActivationMode::Decentralized.accepts_instructions());
        assert!(ActivationMode::Hybrid.accepts_instructions());
        assert!(ActivationMode::Hybrid.monitors_tags());
    }

    #[test]
    fn lookup_params() {
        let s = spec();
        assert!(s.input("jobs").is_some());
        assert!(s.input("nope").is_none());
        assert!(s.output("matches").is_some());
    }

    #[test]
    fn serde_round_trip() {
        let s = spec().with_binding(StreamBinding::stream("criteria", "session:1:criteria"));
        let j = serde_json::to_string(&s).unwrap();
        let back: AgentSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }
}
