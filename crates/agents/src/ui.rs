//! Declarative UI forms and their event streams.
//!
//! Agents "can also generate UI forms, for example to collect user profiles,
//! specified declaratively and displayed using UI renderers" (§V-B), and UI
//! events "are processed just like any other input through streams" (§VI,
//! Fig 9). A [`UiForm`] is the declarative spec; rendering is a plain-text
//! renderer here, and interactions become [`Message`]s on the form's event
//! stream — exactly the flow the Agentic Employer case study exercises.

use serde::{Deserialize, Serialize};
use serde_json::Value;

use blueprint_streams::Message;

/// The kind of a form field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UiFieldKind {
    /// Single-line text entry.
    Text,
    /// Numeric entry.
    Number,
    /// Single selection from options.
    Select,
    /// Multiple selection from options.
    MultiSelect,
    /// A clickable action button.
    Button,
}

/// One field in a declarative form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UiField {
    /// Field identifier (event payloads refer to it).
    pub id: String,
    /// Display label.
    pub label: String,
    /// Field kind.
    pub kind: UiFieldKind,
    /// Options for (multi)select fields.
    pub options: Vec<String>,
}

impl UiField {
    /// A text field.
    pub fn text(id: impl Into<String>, label: impl Into<String>) -> Self {
        UiField {
            id: id.into(),
            label: label.into(),
            kind: UiFieldKind::Text,
            options: Vec::new(),
        }
    }

    /// A select field with options.
    pub fn select<I, S>(id: impl Into<String>, label: impl Into<String>, options: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        UiField {
            id: id.into(),
            label: label.into(),
            kind: UiFieldKind::Select,
            options: options.into_iter().map(Into::into).collect(),
        }
    }

    /// A button.
    pub fn button(id: impl Into<String>, label: impl Into<String>) -> Self {
        UiField {
            id: id.into(),
            label: label.into(),
            kind: UiFieldKind::Button,
            options: Vec::new(),
        }
    }
}

/// A declaratively specified UI form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UiForm {
    /// Form identifier; its event stream is `<scope>:ui:<id>:events`.
    pub id: String,
    /// Form title shown to the user.
    pub title: String,
    /// Ordered fields.
    pub fields: Vec<UiField>,
}

impl UiForm {
    /// Creates an empty form.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        UiForm {
            id: id.into(),
            title: title.into(),
            fields: Vec::new(),
        }
    }

    /// Builder-style: adds a field.
    pub fn with_field(mut self, field: UiField) -> Self {
        self.fields.push(field);
        self
    }

    /// The event-stream segment (relative to a session scope) where this
    /// form's interaction events are published.
    pub fn event_segment(&self) -> String {
        format!("ui:{}:events", self.id)
    }

    /// Wraps the form spec in a data message tagged `ui-form` so a renderer
    /// agent can display it.
    pub fn into_message(self) -> Message {
        let value = serde_json::to_value(&self).expect("UiForm serializes");
        Message::data_json(value).with_tag("ui-form")
    }

    /// Parses a form out of a `ui-form` message.
    pub fn from_message(msg: &Message) -> Option<Self> {
        if !msg.has_tag(&blueprint_streams::Tag::new("ui-form")) {
            return None;
        }
        serde_json::from_value(msg.payload.clone()).ok()
    }

    /// Creates the event message emitted when the user interacts with a
    /// field (e.g. clicking a job id in the Agentic Employer UI, Fig 9).
    pub fn event(&self, field_id: &str, value: Value) -> Message {
        Message::data_json(serde_json::json!({
            "form": self.id,
            "field": field_id,
            "value": value,
        }))
        .with_tag("ui-event")
        .from_producer("user")
    }

    /// Renders the form as plain text (the terminal stand-in for the
    /// paper's web renderer).
    pub fn render_text(&self) -> String {
        let mut out = format!("┌── {} ──\n", self.title);
        for f in &self.fields {
            let line = match f.kind {
                UiFieldKind::Text => format!("│ {}: [__________]", f.label),
                UiFieldKind::Number => format!("│ {}: [#]", f.label),
                UiFieldKind::Select => format!("│ {}: ({})", f.label, f.options.join(" | ")),
                UiFieldKind::MultiSelect => {
                    format!("│ {}: [{}]", f.label, f.options.join(", "))
                }
                UiFieldKind::Button => format!("│ <{}>", f.label),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str("└──\n");
        out
    }
}

/// Extracts `(form, field, value)` from a `ui-event` message.
pub fn parse_ui_event(msg: &Message) -> Option<(String, String, Value)> {
    if !msg.has_tag(&blueprint_streams::Tag::new("ui-event")) {
        return None;
    }
    let obj = msg.payload.as_object()?;
    Some((
        obj.get("form")?.as_str()?.to_string(),
        obj.get("field")?.as_str()?.to_string(),
        obj.get("value")?.clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn form() -> UiForm {
        UiForm::new("profile", "Job Seeker Profile")
            .with_field(UiField::text("name", "Name"))
            .with_field(UiField::select(
                "title",
                "Desired title",
                ["data scientist", "ml engineer"],
            ))
            .with_field(UiField::button("submit", "Submit"))
    }

    #[test]
    fn form_message_round_trip() {
        let f = form();
        let msg = f.clone().into_message();
        let back = UiForm::from_message(&msg).unwrap();
        assert_eq!(back, f);
        // A non-form message parses as None.
        assert!(UiForm::from_message(&Message::data("hi")).is_none());
    }

    #[test]
    fn event_messages_parse() {
        let f = form();
        let ev = f.event("title", json!("data scientist"));
        let (form_id, field, value) = parse_ui_event(&ev).unwrap();
        assert_eq!(form_id, "profile");
        assert_eq!(field, "title");
        assert_eq!(value, json!("data scientist"));
        assert_eq!(ev.producer, "user");
    }

    #[test]
    fn non_event_messages_rejected() {
        assert!(parse_ui_event(&Message::data("x")).is_none());
        let fake = Message::data_json(json!({"form": "f"})).with_tag("ui-event");
        assert!(parse_ui_event(&fake).is_none()); // missing field/value
    }

    #[test]
    fn event_segment_is_scoped_under_form() {
        assert_eq!(form().event_segment(), "ui:profile:events");
    }

    #[test]
    fn render_text_mentions_every_field() {
        let text = form().render_text();
        assert!(text.contains("Job Seeker Profile"));
        assert!(text.contains("Name"));
        assert!(text.contains("data scientist | ml engineer"));
        assert!(text.contains("<Submit>"));
    }

    #[test]
    fn field_constructors() {
        let t = UiField::text("a", "A");
        assert_eq!(t.kind, UiFieldKind::Text);
        let s = UiField::select("b", "B", ["x"]);
        assert_eq!(s.options, ["x"]);
        let b = UiField::button("c", "C");
        assert_eq!(b.kind, UiFieldKind::Button);
    }
}
