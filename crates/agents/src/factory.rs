//! The AgentFactory: per-container server spawning agent instances (Fig 2).
//!
//! Each container runs an `AgentFactory` that knows how to construct its
//! agents (spec + processor). Instances can be spawned per session scope,
//! scaled out (several instances of the same agent), stopped, and restarted
//! after failure. In the paper's production setting each factory would be a
//! container in a cluster; here containers are modelled in-process, which
//! preserves the scheduling and fault-tolerance semantics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use blueprint_observability::Observability;
use blueprint_resilience::{BreakerRegistry, FaultInjector, InjectedFault};
use blueprint_streams::StreamStore;

use crate::context::AgentContext;
use crate::error::AgentError;
use crate::host::{AgentHost, HostStats};
use crate::param::{Inputs, Outputs};
use crate::processor::Processor;
use crate::spec::AgentSpec;
use crate::Result;

/// Wraps a registered processor with fault injection: each invocation asks
/// the injector (keyed by agent name + call ordinal) whether to panic or run
/// slow before delegating. Panics are caught by the host's crash recovery,
/// so injected panics exercise the same path as real processor bugs.
struct FaultedProcessor {
    inner: Arc<dyn Processor>,
    injector: Arc<FaultInjector>,
    agent: String,
    calls: AtomicU64,
}

impl Processor for FaultedProcessor {
    fn process(&self, inputs: &Inputs, ctx: &AgentContext) -> Result<Outputs> {
        if !self.injector.processor_armed() {
            return self.inner.process(inputs, ctx);
        }
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        match self
            .injector
            .processor_fault(&format!("{}#{}", self.agent, n))
        {
            Some(InjectedFault::PanicProcessor) => {
                panic!("injected fault: processor panic in agent `{}`", self.agent)
            }
            Some(InjectedFault::SlowProcessor { micros }) => {
                // Real sleep (capped) so timeouts actually fire, plus the
                // simulated latency charge so QoS accounting sees the stall.
                std::thread::sleep(std::time::Duration::from_micros(micros.min(250_000)));
                ctx.charge_latency_micros(micros);
            }
            _ => {}
        }
        self.inner.process(inputs, ctx)
    }
}

/// Aggregated statistics for a factory ("container").
#[derive(Debug, Clone, Default)]
pub struct ContainerStats {
    /// Distinct agents registered.
    pub registered_agents: usize,
    /// Instances currently running.
    pub running_instances: usize,
    /// Instances restarted after failure.
    pub restarts: u64,
}

/// Handle onto one running instance.
pub struct InstanceHandle {
    /// Unique instance id within the factory.
    pub id: u64,
    /// Agent name.
    pub agent: String,
    /// Session scope the instance serves.
    pub scope: String,
    host: AgentHost,
}

impl InstanceHandle {
    /// Runtime statistics of this instance.
    pub fn stats(&self) -> HostStats {
        self.host.stats()
    }

    /// The underlying host (for inline execution in tests/operators).
    pub fn host(&self) -> &AgentHost {
        &self.host
    }
}

struct Registration {
    spec: AgentSpec,
    processor: Arc<dyn Processor>,
}

/// Spawns and supervises agent instances.
pub struct AgentFactory {
    store: StreamStore,
    registrations: Mutex<HashMap<String, Registration>>,
    instances: Mutex<HashMap<u64, InstanceHandle>>,
    next_instance: AtomicU64,
    restarts: AtomicU64,
    faults: Mutex<Option<Arc<FaultInjector>>>,
    breakers: Mutex<Option<Arc<BreakerRegistry>>>,
    observability: Mutex<Option<Observability>>,
}

impl AgentFactory {
    /// Creates a factory bound to a stream store.
    pub fn new(store: StreamStore) -> Self {
        AgentFactory {
            store,
            registrations: Mutex::new(HashMap::new()),
            instances: Mutex::new(HashMap::new()),
            next_instance: AtomicU64::new(1),
            restarts: AtomicU64::new(0),
            faults: Mutex::new(None),
            breakers: Mutex::new(None),
            observability: Mutex::new(None),
        }
    }

    /// Attaches observability: instances spawned (or restarted) *after* this
    /// call record invoke spans and report into the `blueprint.agents.*`
    /// instruments.
    pub fn set_observability(&self, obs: Observability) {
        *self.observability.lock() = Some(obs);
    }

    /// Attaches a fault injector: processors of instances spawned *after*
    /// this call are wrapped with panic/slowdown injection.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        *self.faults.lock() = Some(injector);
    }

    /// Attaches a circuit-breaker registry; restarted instances re-enter the
    /// breaker's half-open state instead of being trusted blindly.
    pub fn set_breakers(&self, breakers: Arc<BreakerRegistry>) {
        *self.breakers.lock() = Some(breakers);
    }

    /// The attached breaker registry, if any.
    pub fn breakers(&self) -> Option<Arc<BreakerRegistry>> {
        self.breakers.lock().clone()
    }

    /// The stream store this factory deploys against.
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// Registers an agent constructor (spec + processor). Re-registering a
    /// name replaces the previous constructor.
    pub fn register(&self, spec: AgentSpec, processor: Arc<dyn Processor>) -> Result<()> {
        spec.validate()?;
        self.registrations
            .lock()
            .insert(spec.name.clone(), Registration { spec, processor });
        Ok(())
    }

    /// Names of all registered agents, sorted.
    pub fn registered(&self) -> Vec<String> {
        let mut names: Vec<String> = self.registrations.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Spawns an instance of `agent` under `scope`, returning its id.
    pub fn spawn(&self, agent: &str, scope: &str) -> Result<u64> {
        let (spec, processor) = {
            let regs = self.registrations.lock();
            let reg = regs
                .get(agent)
                .ok_or_else(|| AgentError::UnknownAgent(agent.to_string()))?;
            (reg.spec.clone(), Arc::clone(&reg.processor))
        };
        let processor = match self.faults.lock().as_ref() {
            Some(injector) => Arc::new(FaultedProcessor {
                inner: processor,
                injector: Arc::clone(injector),
                agent: agent.to_string(),
                calls: AtomicU64::new(0),
            }) as Arc<dyn Processor>,
            None => processor,
        };
        let host = AgentHost::start(spec, processor, self.store.clone(), scope)?;
        if let Some(obs) = self.observability.lock().as_ref() {
            host.set_observability(obs);
        }
        let id = self.next_instance.fetch_add(1, Ordering::Relaxed);
        self.instances.lock().insert(
            id,
            InstanceHandle {
                id,
                agent: agent.to_string(),
                scope: scope.to_string(),
                host,
            },
        );
        Ok(id)
    }

    /// Spawns every registered agent under `scope`; returns instance ids in
    /// agent-name order.
    pub fn spawn_all(&self, scope: &str) -> Result<Vec<u64>> {
        self.registered()
            .iter()
            .map(|name| self.spawn(name, scope))
            .collect()
    }

    /// Stops and removes an instance. Unknown ids are ignored.
    pub fn stop(&self, instance_id: u64) {
        if let Some(mut handle) = self.instances.lock().remove(&instance_id) {
            handle.host.stop();
        }
    }

    /// Restarts an instance in place (stop + fresh spawn with the same agent
    /// and scope), modelling the paper's restart-on-failure. Returns the new
    /// instance id.
    pub fn restart(&self, instance_id: u64) -> Result<u64> {
        let (agent, scope) = {
            let instances = self.instances.lock();
            let handle = instances.get(&instance_id).ok_or(AgentError::Stopped)?;
            (handle.agent.clone(), handle.scope.clone())
        };
        self.stop(instance_id);
        let new_id = self.spawn(&agent, &scope)?;
        self.restarts.fetch_add(1, Ordering::Relaxed);
        // A replacement instance is probed, not trusted: if the agent's
        // circuit is open, the restart moves it to half-open so the next
        // call is a trial rather than a flood.
        if let Some(breakers) = self.breakers.lock().as_ref() {
            breakers.on_restart(&agent);
        }
        Ok(new_id)
    }

    /// Restarts every instance whose failure count exceeds its spec's
    /// `max_restarts`-governed threshold; returns the ids restarted.
    pub fn reap_failed(&self) -> Result<Vec<u64>> {
        let to_restart: Vec<u64> = {
            let instances = self.instances.lock();
            instances
                .values()
                .filter(|h| {
                    let failures = h.host.stats().failures;
                    failures > 0 && failures >= h.host.spec().deployment.max_restarts as u64
                })
                .map(|h| h.id)
                .collect()
        };
        let mut new_ids = Vec::with_capacity(to_restart.len());
        for id in to_restart {
            new_ids.push(self.restart(id)?);
        }
        Ok(new_ids)
    }

    /// Runs `f` against a live instance handle.
    pub fn with_instance<R>(
        &self,
        instance_id: u64,
        f: impl FnOnce(&InstanceHandle) -> R,
    ) -> Option<R> {
        let instances = self.instances.lock();
        instances.get(&instance_id).map(f)
    }

    /// Ids of running instances, sorted.
    pub fn running(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.instances.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Container-level statistics.
    pub fn stats(&self) -> ContainerStats {
        ContainerStats {
            registered_agents: self.registrations.lock().len(),
            running_instances: self.instances.lock().len(),
            restarts: self.restarts.load(Ordering::Relaxed),
        }
    }

    /// Stops every instance.
    pub fn stop_all(&self) {
        let ids = self.running();
        for id in ids {
            self.stop(id);
        }
    }
}

impl Drop for AgentFactory {
    fn drop(&mut self) {
        self.stop_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AgentContext;
    use crate::param::{DataType, Inputs, Outputs, ParamSpec};
    use crate::processor::FnProcessor;
    use crate::protocol::ExecuteAgent;
    use blueprint_streams::{Selector, StreamId, TagFilter};
    use serde_json::json;
    use std::time::Duration;

    fn echo_spec(name: &str) -> AgentSpec {
        AgentSpec::new(name, "echoes its input")
            .with_input(ParamSpec::required("text", "t", DataType::Text))
            .with_output(ParamSpec::required("echo", "e", DataType::Text))
    }

    fn echo_proc() -> Arc<dyn Processor> {
        Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
            Ok(Outputs::new().with("echo", json!(inputs.require_str("text")?)))
        }))
    }

    fn factory() -> AgentFactory {
        AgentFactory::new(StreamStore::new())
    }

    #[test]
    fn register_spawn_stop_lifecycle() {
        let f = factory();
        f.register(echo_spec("echo"), echo_proc()).unwrap();
        assert_eq!(f.registered(), ["echo"]);
        let id = f.spawn("echo", "session:1").unwrap();
        assert_eq!(f.running(), [id]);
        assert_eq!(f.stats().running_instances, 1);
        f.stop(id);
        assert!(f.running().is_empty());
    }

    #[test]
    fn spawn_unknown_agent_fails() {
        let f = factory();
        assert!(matches!(
            f.spawn("ghost", "s"),
            Err(AgentError::UnknownAgent(_))
        ));
    }

    #[test]
    fn register_invalid_spec_fails() {
        let f = factory();
        assert!(f.register(AgentSpec::new("", "bad"), echo_proc()).is_err());
    }

    #[test]
    fn spawn_all_launches_each_registered_agent() {
        let f = factory();
        f.register(echo_spec("a"), echo_proc()).unwrap();
        f.register(echo_spec("b"), echo_proc()).unwrap();
        let ids = f.spawn_all("session:1").unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(f.stats().running_instances, 2);
    }

    #[test]
    fn spawned_instance_serves_instructions() {
        let f = factory();
        f.register(echo_spec("echo"), echo_proc()).unwrap();
        f.spawn("echo", "session:1").unwrap();
        let store = f.store().clone();
        let sub = store
            .subscribe(
                Selector::Stream(StreamId::new("session:1:result")),
                TagFilter::all(),
            )
            .unwrap();
        let instr = ExecuteAgent {
            agent: "echo".into(),
            inputs: Inputs::new().with("text", json!("ping")),
            output_stream: "session:1:result".into(),
            task_id: "t".into(),
            node_id: "n".into(),
            span: None,
        };
        store
            .publish_to(
                "session:1:instructions",
                ["instructions"],
                instr.into_message(),
            )
            .unwrap();
        let out = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(out.payload, json!("ping"));
    }

    #[test]
    fn restart_replaces_instance() {
        let f = factory();
        f.register(echo_spec("echo"), echo_proc()).unwrap();
        let id = f.spawn("echo", "session:1").unwrap();
        let new_id = f.restart(id).unwrap();
        assert_ne!(id, new_id);
        assert_eq!(f.running(), [new_id]);
        assert_eq!(f.stats().restarts, 1);
    }

    #[test]
    fn restart_unknown_instance_fails() {
        let f = factory();
        assert!(f.restart(999).is_err());
    }

    #[test]
    fn reap_failed_restarts_broken_instances() {
        let f = factory();
        let mut spec = echo_spec("flaky");
        spec.deployment.max_restarts = 1;
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            |_: &Inputs, _: &AgentContext| -> crate::Result<Outputs> {
                Err(AgentError::ProcessorFailed("always".into()))
            },
        ));
        f.register(spec, proc).unwrap();
        let id = f.spawn("flaky", "session:1").unwrap();
        let store = f.store().clone();
        let report_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["agent-report"]))
            .unwrap();
        let instr = ExecuteAgent {
            agent: "flaky".into(),
            inputs: Inputs::new().with("text", json!("x")),
            output_stream: "session:1:out".into(),
            task_id: "t".into(),
            node_id: "n".into(),
            span: None,
        };
        store
            .publish_to(
                "session:1:instructions",
                ["instructions"],
                instr.into_message(),
            )
            .unwrap();
        report_sub.recv_timeout(Duration::from_secs(2)).unwrap();
        // Failure count is now >= max_restarts(1): the reaper replaces it.
        let mut restarted = Vec::new();
        for _ in 0..100 {
            restarted = f.reap_failed().unwrap();
            if !restarted.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(restarted.len(), 1);
        assert_ne!(restarted[0], id);
        // The fresh instance has a clean failure count.
        let fresh_failures = f
            .with_instance(restarted[0], |h| h.stats().failures)
            .unwrap();
        assert_eq!(fresh_failures, 0);
    }

    #[test]
    fn restart_moves_open_breaker_to_half_open() {
        use blueprint_resilience::{BreakerConfig, BreakerState};
        let f = factory();
        f.register(echo_spec("echo"), echo_proc()).unwrap();
        let breakers = Arc::new(BreakerRegistry::new(BreakerConfig {
            min_samples: 2,
            ..BreakerConfig::default()
        }));
        f.set_breakers(Arc::clone(&breakers));
        let id = f.spawn("echo", "session:1").unwrap();

        breakers.record("echo", false, 0);
        breakers.record("echo", false, 0);
        assert_eq!(breakers.state("echo"), BreakerState::Open);

        let new_id = f.restart(id).unwrap();
        assert_ne!(id, new_id);
        // Restarted agent re-enters half-open, not closed: the replacement
        // must earn its way back with a successful probe.
        assert_eq!(breakers.state("echo"), BreakerState::HalfOpen);
        assert!(breakers.allow("echo", 1));
        breakers.record("echo", true, 2);
        assert_eq!(breakers.state("echo"), BreakerState::Closed);
    }

    #[test]
    fn reap_failed_probes_restarted_agent_breaker() {
        use blueprint_resilience::{BreakerConfig, BreakerState};
        let f = factory();
        let mut spec = echo_spec("flaky");
        spec.deployment.max_restarts = 1;
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            |_: &Inputs, _: &AgentContext| -> crate::Result<Outputs> {
                Err(AgentError::ProcessorFailed("always".into()))
            },
        ));
        f.register(spec, proc).unwrap();
        let breakers = Arc::new(BreakerRegistry::new(BreakerConfig {
            min_samples: 2,
            ..BreakerConfig::default()
        }));
        f.set_breakers(Arc::clone(&breakers));
        f.spawn("flaky", "session:1").unwrap();

        // The coordinator tripped the breaker while the instance thrashed.
        breakers.record("flaky", false, 0);
        breakers.record("flaky", false, 0);
        assert_eq!(breakers.state("flaky"), BreakerState::Open);

        let store = f.store().clone();
        let report_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["agent-report"]))
            .unwrap();
        let instr = ExecuteAgent {
            agent: "flaky".into(),
            inputs: Inputs::new().with("text", json!("x")),
            output_stream: "session:1:out".into(),
            task_id: "t".into(),
            node_id: "n".into(),
            span: None,
        };
        store
            .publish_to(
                "session:1:instructions",
                ["instructions"],
                instr.into_message(),
            )
            .unwrap();
        report_sub.recv_timeout(Duration::from_secs(2)).unwrap();
        let mut restarted = Vec::new();
        for _ in 0..100 {
            restarted = f.reap_failed().unwrap();
            if !restarted.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(restarted.len(), 1);
        // Reaping goes through restart(), so the breaker is half-open too.
        assert_eq!(breakers.state("flaky"), BreakerState::HalfOpen);
    }

    #[test]
    fn fault_injector_panics_are_contained_and_counted() {
        use blueprint_resilience::{FaultPlan, FaultSite};
        let f = factory();
        f.register(echo_spec("echo"), echo_proc()).unwrap();
        // 100% panic rate: every fire crashes, the host must survive.
        let injector = Arc::new(FaultInjector::new(FaultPlan::none(1).with_panic_rate(1.0)));
        f.set_fault_injector(Arc::clone(&injector));
        let id = f.spawn("echo", "session:1").unwrap();

        let store = f.store().clone();
        let report_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["agent-report"]))
            .unwrap();
        let instr = ExecuteAgent {
            agent: "echo".into(),
            inputs: Inputs::new().with("text", json!("boom")),
            output_stream: "session:1:out".into(),
            task_id: "t".into(),
            node_id: "n".into(),
            span: None,
        };
        store
            .publish_to(
                "session:1:instructions",
                ["instructions"],
                instr.into_message(),
            )
            .unwrap();
        let report = report_sub.recv_timeout(Duration::from_secs(2)).unwrap();
        // The report marks the failure, the host stays up, and the injector
        // log names the fault that fired.
        let parsed = crate::protocol::AgentReport::from_message(&report).unwrap();
        assert!(!parsed.ok);
        assert_eq!(injector.count(FaultSite::Processor), 1);
        assert_eq!(f.with_instance(id, |h| h.stats().failures), Some(1));
    }

    #[test]
    fn stop_all_clears_everything() {
        let f = factory();
        f.register(echo_spec("a"), echo_proc()).unwrap();
        f.spawn("a", "s1").unwrap();
        f.spawn("a", "s2").unwrap();
        f.stop_all();
        assert!(f.running().is_empty());
    }
}
