//! Error type for the agents subsystem.

use std::fmt;

use blueprint_streams::StreamError;

/// Errors raised while defining, triggering, or executing agents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentError {
    /// A required input parameter was missing when the processor fired.
    MissingInput(String),
    /// An input value did not match the declared parameter type.
    TypeMismatch {
        /// Parameter name.
        param: String,
        /// Declared type name.
        expected: String,
        /// Brief description of the offending value.
        got: String,
    },
    /// The processor reported a task-level failure.
    ProcessorFailed(String),
    /// The processor panicked; the worker was restarted.
    ProcessorPanicked(String),
    /// The referenced agent is not known to the factory.
    UnknownAgent(String),
    /// Underlying stream operation failed.
    Stream(StreamError),
    /// Malformed specification (duplicate params, no outputs, ...).
    InvalidSpec(String),
    /// The instance or factory has already been shut down.
    Stopped,
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::MissingInput(p) => write!(f, "missing input parameter: {p}"),
            AgentError::TypeMismatch {
                param,
                expected,
                got,
            } => write!(f, "parameter {param}: expected {expected}, got {got}"),
            AgentError::ProcessorFailed(msg) => write!(f, "processor failed: {msg}"),
            AgentError::ProcessorPanicked(msg) => write!(f, "processor panicked: {msg}"),
            AgentError::UnknownAgent(name) => write!(f, "unknown agent: {name}"),
            AgentError::Stream(e) => write!(f, "stream error: {e}"),
            AgentError::InvalidSpec(msg) => write!(f, "invalid agent spec: {msg}"),
            AgentError::Stopped => write!(f, "agent runtime stopped"),
        }
    }
}

impl std::error::Error for AgentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AgentError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for AgentError {
    fn from(e: StreamError) -> Self {
        AgentError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert_eq!(
            AgentError::MissingInput("jobs".into()).to_string(),
            "missing input parameter: jobs"
        );
        let tm = AgentError::TypeMismatch {
            param: "criteria".into(),
            expected: "text".into(),
            got: "number".into(),
        };
        assert_eq!(
            tm.to_string(),
            "parameter criteria: expected text, got number"
        );
        assert!(AgentError::Stopped.to_string().contains("stopped"));
    }

    #[test]
    fn stream_error_converts_and_sources() {
        use std::error::Error;
        let e: AgentError = StreamError::Disconnected.into();
        assert!(matches!(e, AgentError::Stream(_)));
        assert!(e.source().is_some());
        assert!(AgentError::Stopped.source().is_none());
    }
}
