//! The `processor()` function: the imperative half of an agent.

use crate::context::AgentContext;
use crate::param::{Inputs, Outputs};
use crate::Result;

/// The computation an agent performs when triggered (§V-B, Fig 3).
///
/// Implementations must be `Send + Sync` because the host dispatches fires
/// onto a pool of worker threads. A processor receives the validated input
/// tuple assembled by the trigger net and returns named outputs; it may also
/// emit intermediate messages through the [`AgentContext`] (e.g. streaming
/// tokens) and must charge its simulated latency and cost there.
pub trait Processor: Send + Sync {
    /// Processes one input tuple into outputs.
    fn process(&self, inputs: &Inputs, ctx: &AgentContext) -> Result<Outputs>;
}

/// Adapts a plain closure into a [`Processor`].
pub struct FnProcessor<F>(F);

impl<F> FnProcessor<F>
where
    F: Fn(&Inputs, &AgentContext) -> Result<Outputs> + Send + Sync,
{
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        FnProcessor(f)
    }
}

impl<F> Processor for FnProcessor<F>
where
    F: Fn(&Inputs, &AgentContext) -> Result<Outputs> + Send + Sync,
{
    fn process(&self, inputs: &Inputs, ctx: &AgentContext) -> Result<Outputs> {
        (self.0)(inputs, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_streams::StreamStore;
    use serde_json::json;

    #[test]
    fn fn_processor_delegates() {
        let p = FnProcessor::new(|inputs: &Inputs, _ctx: &AgentContext| {
            let text = inputs.require_str("text")?;
            Ok(Outputs::new().with("upper", json!(text.to_uppercase())))
        });
        let ctx = AgentContext::new(StreamStore::new(), "s", "a");
        let out = p
            .process(&Inputs::new().with("text", json!("hi")), &ctx)
            .unwrap();
        assert_eq!(out.get("upper"), Some(&json!("HI")));
    }

    #[test]
    fn fn_processor_propagates_errors() {
        let p = FnProcessor::new(|inputs: &Inputs, _ctx: &AgentContext| {
            inputs.require_str("missing")?;
            Ok(Outputs::new())
        });
        let ctx = AgentContext::new(StreamStore::new(), "s", "a");
        assert!(p.process(&Inputs::new(), &ctx).is_err());
    }

    #[test]
    fn boxed_processors_are_object_safe() {
        let p: Box<dyn Processor> = Box::new(FnProcessor::new(|_: &Inputs, _: &AgentContext| {
            Ok(Outputs::new())
        }));
        let ctx = AgentContext::new(StreamStore::new(), "s", "a");
        assert!(p.process(&Inputs::new(), &ctx).is_ok());
    }
}
