//! The control-message protocol spoken over streams.
//!
//! Centralized orchestration (§V-H) works entirely through control messages:
//! the task coordinator publishes [`ExecuteAgent`] instructions, agent hosts
//! pick up the ones addressed to them, and publish an [`AgentReport`] with
//! actual QoS costs when done. Keeping the protocol on streams (rather than
//! direct calls) is what makes execution observable and replayable.

use serde::{Deserialize, Serialize};
use serde_json::Value;

use blueprint_streams::Message;

use crate::param::Inputs;

/// Well-known control operation names.
pub mod ops {
    /// Instruction to execute an agent with given inputs.
    pub const EXECUTE_AGENT: &str = "execute-agent";
    /// Report of a completed (or failed) agent execution.
    pub const AGENT_REPORT: &str = "agent-report";
    /// A task plan emitted by the task planner.
    pub const TASK_PLAN: &str = "task-plan";
    /// A data plan emitted by the data planner.
    pub const DATA_PLAN: &str = "data-plan";
    /// Agent announces joining a session.
    pub const AGENT_ENTER: &str = "agent-enter";
    /// Agent announces leaving a session.
    pub const AGENT_EXIT: &str = "agent-exit";
}

/// Instruction addressed to a specific agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecuteAgent {
    /// Target agent name.
    pub agent: String,
    /// Input values for the processor.
    pub inputs: Inputs,
    /// Stream the outputs should be published to.
    pub output_stream: String,
    /// Task (plan execution) this instruction belongs to.
    pub task_id: String,
    /// Plan node this instruction executes.
    pub node_id: String,
    /// Tracing span id of the coordinator-side node span, so the host can
    /// parent its `invoke:<agent>` span under the plan node that issued the
    /// instruction (None when tracing is disarmed).
    pub span: Option<u64>,
}

impl ExecuteAgent {
    /// Wraps the instruction in a control message tagged `execute-agent`
    /// and with the target agent name as an additional tag, so hosts can
    /// subscribe selectively.
    pub fn into_message(self) -> Message {
        let value = serde_json::to_value(&self).expect("ExecuteAgent serializes");
        Message::control(ops::EXECUTE_AGENT, value).with_tag(format!("agent:{}", self.agent))
    }

    /// Parses an instruction out of a control message; `None` when the
    /// message is not an `execute-agent` op.
    pub fn from_message(msg: &Message) -> Option<Self> {
        if msg.control_op() != Some(ops::EXECUTE_AGENT) {
            return None;
        }
        serde_json::from_value(msg.control_args()?.clone()).ok()
    }
}

/// Execution report published by an agent host after a processor run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentReport {
    /// Reporting agent.
    pub agent: String,
    /// Task this execution belonged to (empty for autonomous fires).
    pub task_id: String,
    /// Plan node (empty for autonomous fires).
    pub node_id: String,
    /// Whether the processor succeeded.
    pub ok: bool,
    /// Error description when `ok` is false.
    pub error: Option<String>,
    /// Actual monetary cost incurred (cost units).
    pub cost: f64,
    /// Actual latency in simulated microseconds.
    pub latency_micros: u64,
    /// Outputs produced (echoed for budget/quality audit), as JSON object.
    pub outputs: Value,
}

impl AgentReport {
    /// Wraps the report in a control message tagged `agent-report`.
    pub fn into_message(self) -> Message {
        let value = serde_json::to_value(&self).expect("AgentReport serializes");
        Message::control(ops::AGENT_REPORT, value).with_tag(format!("task:{}", self.task_id))
    }

    /// Parses a report out of a control message.
    pub fn from_message(msg: &Message) -> Option<Self> {
        if msg.control_op() != Some(ops::AGENT_REPORT) {
            return None;
        }
        serde_json::from_value(msg.control_args()?.clone()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_streams::Tag;
    use serde_json::json;

    #[test]
    fn execute_agent_round_trip() {
        let exec = ExecuteAgent {
            agent: "summarizer".into(),
            inputs: Inputs::new().with("text", json!("hello")),
            output_stream: "session:1:summary".into(),
            task_id: "t1".into(),
            node_id: "n1".into(),
            span: None,
        };
        let msg = exec.clone().into_message();
        assert!(msg.has_tag(&Tag::new("execute-agent")));
        assert!(msg.has_tag(&Tag::new("agent:summarizer")));
        let back = ExecuteAgent::from_message(&msg).unwrap();
        assert_eq!(back, exec);
    }

    #[test]
    fn execute_agent_ignores_other_ops() {
        let msg = Message::control("other-op", json!({}));
        assert!(ExecuteAgent::from_message(&msg).is_none());
        assert!(ExecuteAgent::from_message(&Message::data("x")).is_none());
    }

    #[test]
    fn report_round_trip() {
        let report = AgentReport {
            agent: "nl2q".into(),
            task_id: "t9".into(),
            node_id: "n2".into(),
            ok: false,
            error: Some("no matching table".into()),
            cost: 0.25,
            latency_micros: 1500,
            outputs: json!({}),
        };
        let msg = report.clone().into_message();
        assert!(msg.has_tag(&Tag::new("agent-report")));
        assert!(msg.has_tag(&Tag::new("task:t9")));
        let back = AgentReport::from_message(&msg).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn malformed_args_yield_none() {
        let msg = Message::control(ops::EXECUTE_AGENT, json!({"agent": 42}));
        assert!(ExecuteAgent::from_message(&msg).is_none());
    }
}
