//! Typed input/output parameters of agents.
//!
//! Agents declare their interface as named, typed parameters (§V-B): the
//! JOB MATCHER takes `job_seeker_data`, `jobs`, and optionally `criteria`,
//! and produces `matches`. The task planner connects outputs to inputs by
//! these declarations (Fig 6), and the task coordinator validates values
//! against them before invoking the processor.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::error::AgentError;
use crate::Result;

/// The coarse value types flowing between agents.
///
/// These are deliberately few: parameters carry JSON values, and `DataType`
/// exists so planners can check output→input compatibility and so the data
/// planner knows when a transformation (e.g. `extract`) must be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Free-form natural-language text.
    Text,
    /// A structured JSON object.
    Json,
    /// A numeric value.
    Number,
    /// A boolean flag.
    Boolean,
    /// A homogeneous list of values.
    List,
    /// A relational result set (rows of objects).
    Table,
    /// Anything; always compatible.
    Any,
}

impl DataType {
    /// Whether a value of `self` can be fed into a parameter of type `other`
    /// without transformation.
    pub fn compatible_with(self, other: DataType) -> bool {
        self == other || self == DataType::Any || other == DataType::Any
    }

    /// Checks a concrete JSON value against this type.
    pub fn check(self, value: &Value) -> bool {
        match self {
            DataType::Text => value.is_string(),
            DataType::Json => value.is_object(),
            DataType::Number => value.is_number(),
            DataType::Boolean => value.is_boolean(),
            DataType::List => value.is_array(),
            DataType::Table => {
                value.is_array()
                    && value
                        .as_array()
                        .is_some_and(|rows| rows.iter().all(Value::is_object))
            }
            DataType::Any => true,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Text => "text",
            DataType::Json => "json",
            DataType::Number => "number",
            DataType::Boolean => "boolean",
            DataType::List => "list",
            DataType::Table => "table",
            DataType::Any => "any",
        }
    }
}

/// Declaration of one input or output parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Parameter name (snake_case by convention, e.g. `job_seeker_data`).
    pub name: String,
    /// Natural-language description (used by planners to match parameters).
    pub description: String,
    /// Expected value type.
    pub data_type: DataType,
    /// Whether the parameter must be present for the agent to fire.
    pub required: bool,
    /// Default value used when an optional parameter is absent.
    pub default: Option<Value>,
}

impl ParamSpec {
    /// A required parameter.
    pub fn required(name: impl Into<String>, description: impl Into<String>, ty: DataType) -> Self {
        ParamSpec {
            name: name.into(),
            description: description.into(),
            data_type: ty,
            required: true,
            default: None,
        }
    }

    /// An optional parameter with no default.
    pub fn optional(name: impl Into<String>, description: impl Into<String>, ty: DataType) -> Self {
        ParamSpec {
            name: name.into(),
            description: description.into(),
            data_type: ty,
            required: false,
            default: None,
        }
    }

    /// Builder-style: sets a default value (implies optional).
    pub fn with_default(mut self, default: Value) -> Self {
        self.default = Some(default);
        self.required = false;
        self
    }
}

/// A bag of named values arriving at (or leaving) a processor.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Inputs(BTreeMap<String, Value>);

impl Inputs {
    /// Empty input bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, name: impl Into<String>, value: Value) -> Self {
        self.0.insert(name.into(), value);
        self
    }

    /// Inserts a value.
    pub fn insert(&mut self, name: impl Into<String>, value: Value) {
        self.0.insert(name.into(), value);
    }

    /// Looks up a value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.0.get(name)
    }

    /// Looks up a string value.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Required string value or `MissingInput`.
    pub fn require_str(&self, name: &str) -> Result<&str> {
        self.get_str(name)
            .ok_or_else(|| AgentError::MissingInput(name.to_string()))
    }

    /// Required value or `MissingInput`.
    pub fn require(&self, name: &str) -> Result<&Value> {
        self.get(name)
            .ok_or_else(|| AgentError::MissingInput(name.to_string()))
    }

    /// Number of values present.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no values are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.0.iter()
    }

    /// Validates and completes this bag against the given parameter specs:
    /// checks presence of required params, fills defaults, and type-checks.
    pub fn validate(mut self, specs: &[ParamSpec]) -> Result<Self> {
        for spec in specs {
            match self.0.get(&spec.name) {
                Some(value) => {
                    if !spec.data_type.check(value) {
                        return Err(AgentError::TypeMismatch {
                            param: spec.name.clone(),
                            expected: spec.data_type.name().to_string(),
                            got: type_name_of(value).to_string(),
                        });
                    }
                }
                None => {
                    if let Some(default) = &spec.default {
                        self.0.insert(spec.name.clone(), default.clone());
                    } else if spec.required {
                        return Err(AgentError::MissingInput(spec.name.clone()));
                    }
                }
            }
        }
        Ok(self)
    }

    /// Converts to a JSON object.
    pub fn to_json(&self) -> Value {
        Value::Object(self.0.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
    }

    /// Builds an input bag from a JSON object; non-objects yield an empty bag.
    pub fn from_json(value: &Value) -> Self {
        let mut map = BTreeMap::new();
        if let Some(obj) = value.as_object() {
            for (k, v) in obj {
                map.insert(k.clone(), v.clone());
            }
        }
        Inputs(map)
    }
}

impl FromIterator<(String, Value)> for Inputs {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Inputs(iter.into_iter().collect())
    }
}

/// Output values produced by a processor, plus the tags to attach when the
/// host publishes them to streams.
pub type Outputs = Inputs;

fn type_name_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Number(_) => "number",
        Value::String(_) => "text",
        Value::Array(_) => "list",
        Value::Object(_) => "json",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn type_check_matrix() {
        assert!(DataType::Text.check(&json!("hi")));
        assert!(!DataType::Text.check(&json!(3)));
        assert!(DataType::Json.check(&json!({"a": 1})));
        assert!(DataType::Number.check(&json!(2.5)));
        assert!(DataType::Boolean.check(&json!(true)));
        assert!(DataType::List.check(&json!([1, 2])));
        assert!(DataType::Table.check(&json!([{"a":1}, {"b":2}])));
        assert!(!DataType::Table.check(&json!([1, 2])));
        assert!(DataType::Any.check(&json!(null)));
    }

    #[test]
    fn compatibility_is_reflexive_and_any_absorbs() {
        for t in [
            DataType::Text,
            DataType::Json,
            DataType::Number,
            DataType::Boolean,
            DataType::List,
            DataType::Table,
        ] {
            assert!(t.compatible_with(t));
            assert!(t.compatible_with(DataType::Any));
            assert!(DataType::Any.compatible_with(t));
        }
        assert!(!DataType::Text.compatible_with(DataType::Table));
    }

    #[test]
    fn validate_fills_defaults() {
        let specs = [
            ParamSpec::required("q", "query", DataType::Text),
            ParamSpec::optional("limit", "max rows", DataType::Number).with_default(json!(10)),
        ];
        let out = Inputs::new()
            .with("q", json!("data scientist"))
            .validate(&specs)
            .unwrap();
        assert_eq!(out.get("limit"), Some(&json!(10)));
    }

    #[test]
    fn validate_rejects_missing_required() {
        let specs = [ParamSpec::required("q", "query", DataType::Text)];
        let err = Inputs::new().validate(&specs).unwrap_err();
        assert_eq!(err, AgentError::MissingInput("q".into()));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let specs = [ParamSpec::required("q", "query", DataType::Text)];
        let err = Inputs::new()
            .with("q", json!(5))
            .validate(&specs)
            .unwrap_err();
        assert!(matches!(err, AgentError::TypeMismatch { .. }));
    }

    #[test]
    fn optional_absent_param_is_fine() {
        let specs = [ParamSpec::optional(
            "criteria",
            "extra conditions",
            DataType::Text,
        )];
        let out = Inputs::new().validate(&specs).unwrap();
        assert!(out.get("criteria").is_none());
    }

    #[test]
    fn json_round_trip() {
        let inputs = Inputs::new().with("a", json!(1)).with("b", json!("x"));
        let j = inputs.to_json();
        let back = Inputs::from_json(&j);
        assert_eq!(back, inputs);
        assert_eq!(Inputs::from_json(&json!("not an object")).len(), 0);
    }

    #[test]
    fn require_helpers() {
        let inputs = Inputs::new().with("text", json!("hello"));
        assert_eq!(inputs.require_str("text").unwrap(), "hello");
        assert!(inputs.require_str("missing").is_err());
        assert!(inputs.require("missing").is_err());
    }

    #[test]
    fn with_default_makes_optional() {
        let p = ParamSpec::required("x", "", DataType::Number).with_default(json!(1));
        assert!(!p.required);
    }
}
