//! # blueprint-agents
//!
//! Agents are the blueprint's unit of *compute* (§V-B): any computational
//! entity that processes input data and produces output — an LLM head, a
//! task-specific CRF model, a search interface, or an arbitrary API. An agent
//! is structured as:
//!
//! * an [`AgentSpec`] — name, description, typed input/output parameters,
//!   stream bindings with inclusion/exclusion rules, a cost/latency/accuracy
//!   profile, and deployment configuration;
//! * a [`Processor`] — the `processor()` function invoked when the agent is
//!   triggered;
//! * a [`TriggerNet`] — a PetriNet-inspired join (§V-B, Fig 4) that gathers a
//!   token from each input place before the processor fires;
//! * an [`AgentHost`] — the runtime harness subscribing the agent to streams
//!   and dispatching fires onto a worker pool;
//! * an [`AgentFactory`] — the per-container server that spawns agent
//!   instances, scales them, and restarts them on failure (Fig 2).
//!
//! Activation is either **centralized** (an `execute-agent` control message
//! addressed to the agent, as emitted by the task coordinator) or
//! **decentralized** (the agent autonomously monitors stream/message tags).

pub mod context;
pub mod error;
pub mod factory;
pub mod host;
pub mod param;
pub mod processor;
pub mod profile;
pub mod protocol;
pub mod spec;
pub mod trigger;
pub mod ui;
pub mod worker;

pub use context::AgentContext;
pub use error::AgentError;
pub use factory::{AgentFactory, ContainerStats, InstanceHandle};
pub use host::AgentHost;
pub use param::{DataType, Inputs, Outputs, ParamSpec};
pub use processor::{FnProcessor, Processor};
pub use profile::{CostProfile, Deployment, DeploymentKind};
pub use protocol::{ops, AgentReport, ExecuteAgent};
pub use spec::{ActivationMode, AgentSpec, StreamBinding};
pub use trigger::{PairingPolicy, TriggerNet};
pub use ui::{UiField, UiFieldKind, UiForm};

/// Result alias for agent operations.
pub type Result<T> = std::result::Result<T, AgentError>;
