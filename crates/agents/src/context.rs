//! Execution context handed to a processor.
//!
//! The context gives a processor controlled access to its surroundings: the
//! stream store (to emit intermediate streams, e.g. token-by-token LLM
//! output), the session scope it runs under, the shared simulated clock (to
//! charge latency), and an accumulator for actual costs that the host folds
//! into the post-run [`AgentReport`](crate::protocol::AgentReport).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blueprint_observability::SimClock;
use blueprint_streams::{Message, StreamId, StreamStore};

use crate::Result;

/// Context for one processor invocation.
#[derive(Clone)]
pub struct AgentContext {
    store: StreamStore,
    scope: String,
    agent: String,
    /// Cost units accumulated during this invocation, scaled ×1e6 so the
    /// counter can be a lock-free integer.
    cost_micros: Arc<AtomicU64>,
    started_at_micros: u64,
}

impl AgentContext {
    /// Creates a context scoped under `scope` (typically `session:<id>`).
    pub fn new(store: StreamStore, scope: impl Into<String>, agent: impl Into<String>) -> Self {
        let started_at_micros = store.clock().now_micros();
        AgentContext {
            store,
            scope: scope.into(),
            agent: agent.into(),
            cost_micros: Arc::new(AtomicU64::new(0)),
            started_at_micros,
        }
    }

    /// The stream store.
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// The session scope prefix, e.g. `session:42`.
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// Name of the agent being executed.
    pub fn agent(&self) -> &str {
        &self.agent
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        self.store.clock()
    }

    /// Charges simulated latency: advances the shared clock.
    pub fn charge_latency_micros(&self, micros: u64) {
        self.clock().advance_micros(micros);
    }

    /// Charges monetary cost (cost units, may be fractional).
    pub fn charge_cost(&self, cost_units: f64) {
        if cost_units <= 0.0 {
            return;
        }
        let micros = (cost_units * 1e6).round() as u64;
        self.cost_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total cost charged so far during this invocation.
    pub fn cost_charged(&self) -> f64 {
        self.cost_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Simulated latency elapsed since the invocation started.
    pub fn latency_micros(&self) -> u64 {
        self.clock().elapsed_since(self.started_at_micros)
    }

    /// Derives a stream id under this context's scope.
    pub fn scoped_stream(&self, segment: &str) -> StreamId {
        StreamId::new(format!("{}:{}", self.scope, segment))
    }

    /// Publishes a message (stamped with this agent as producer) onto a
    /// scoped stream, creating the stream if needed.
    pub fn emit(&self, segment: &str, msg: Message) -> Result<()> {
        let id = self.store.ensure_stream(
            self.scoped_stream(segment),
            Vec::<blueprint_streams::Tag>::new(),
        )?;
        self.store
            .publish(&id, msg.from_producer(self.agent.clone()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AgentContext {
        AgentContext::new(StreamStore::new(), "session:1", "profiler")
    }

    #[test]
    fn accessors() {
        let c = ctx();
        assert_eq!(c.scope(), "session:1");
        assert_eq!(c.agent(), "profiler");
    }

    #[test]
    fn latency_charging_advances_shared_clock() {
        let c = ctx();
        c.charge_latency_micros(250);
        assert_eq!(c.latency_micros(), 250);
        assert_eq!(c.store().clock().now_micros(), 250);
    }

    #[test]
    fn cost_accumulates_fractionally() {
        let c = ctx();
        c.charge_cost(0.5);
        c.charge_cost(0.25);
        assert!((c.cost_charged() - 0.75).abs() < 1e-9);
        // Non-positive charges are ignored.
        c.charge_cost(-1.0);
        c.charge_cost(0.0);
        assert!((c.cost_charged() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn scoped_stream_builds_hierarchy() {
        let c = ctx();
        assert_eq!(c.scoped_stream("summary").as_str(), "session:1:summary");
    }

    #[test]
    fn emit_creates_stream_and_stamps_producer() {
        let c = ctx();
        c.emit("out", Message::data("result")).unwrap();
        let history = c.store().read(&StreamId::new("session:1:out"), 0).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].producer, "profiler");
    }

    #[test]
    fn latency_starts_from_context_creation() {
        let store = StreamStore::new();
        store.clock().advance_micros(1_000);
        let c = AgentContext::new(store.clone(), "s", "a");
        assert_eq!(c.latency_micros(), 0);
        store.clock().advance_micros(10);
        assert_eq!(c.latency_micros(), 10);
    }
}
