//! The agent host: runtime harness wiring a spec + processor to the streams.
//!
//! A host subscribes the agent to (a) `execute-agent` control messages
//! addressed to it (centralized activation) and (b) its declared stream
//! bindings (decentralized activation), feeds arriving messages through the
//! agent's [`TriggerNet`], and dispatches fires onto the agent's
//! [`WorkerPool`]. After each processor run the host publishes the outputs
//! and an [`AgentReport`] carrying the actual QoS costs — closing the loop
//! with the task coordinator's budget (§V-H).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Select, Sender};
use serde_json::Value;

use blueprint_observability::{Counter, Observability, SpanId, Tracer};
use blueprint_streams::{Message, StreamStore, Subscription, Tag};

use crate::context::AgentContext;
use crate::error::AgentError;
use crate::param::{Inputs, Outputs};
use crate::processor::Processor;
use crate::protocol::{AgentReport, ExecuteAgent};
use crate::spec::AgentSpec;
use crate::trigger::TriggerNet;
use crate::worker::WorkerPool;
use crate::Result;

/// Stream segment (under the scope) where agent reports are published.
pub const REPORTS_SEGMENT: &str = "reports";

/// Counters describing host activity.
#[derive(Debug, Clone, Default)]
pub struct HostStats {
    /// Fires caused by explicit instructions.
    pub instructed_fires: u64,
    /// Fires caused by autonomous tag monitoring.
    pub autonomous_fires: u64,
    /// Processor runs that returned an error or panicked.
    pub failures: u64,
}

/// Tracer plus instruments the host reports into, resolved once at wiring
/// time (see [`AgentHost::set_observability`]). Defaults to disarmed no-ops.
#[derive(Clone, Default)]
struct HostObservability {
    tracer: Tracer,
    invocations: Counter,
    obs_failures: Counter,
}

struct Shared {
    spec: AgentSpec,
    processor: Arc<dyn Processor>,
    store: StreamStore,
    scope: String,
    instructed: AtomicU64,
    autonomous: AtomicU64,
    failures: AtomicU64,
    obs: parking_lot::RwLock<HostObservability>,
}

impl Shared {
    /// Runs the processor once, publishing outputs and a report. When
    /// tracing is armed, the run is recorded as an `invoke:<agent>` span
    /// parented under the coordinator-side node span carried by the
    /// instruction (`span_parent`), and the span is closed *before* the
    /// report is published so it is fully recorded by the time the
    /// coordinator observes the completion.
    fn run(
        &self,
        inputs: Inputs,
        output_stream: &str,
        task_id: &str,
        node_id: &str,
        span_parent: Option<u64>,
    ) {
        let o = self.obs.read().clone();
        o.invocations.inc();
        let mut span = match span_parent {
            Some(pid) => {
                o.tracer
                    .child_span("agents", format!("invoke:{}", self.spec.name), SpanId(pid))
            }
            None => o
                .tracer
                .span("agents", format!("invoke:{}", self.spec.name)),
        };
        let ctx = AgentContext::new(
            self.store.clone(),
            self.scope.clone(),
            self.spec.name.clone(),
        );
        let validated = inputs.validate(&self.spec.inputs);
        let result: Result<Outputs> = match validated {
            Ok(inputs) => {
                let processor = Arc::clone(&self.processor);
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    processor.process(&inputs, &ctx)
                })) {
                    Ok(r) => r,
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "unknown panic".to_string());
                        Err(AgentError::ProcessorPanicked(msg))
                    }
                }
            }
            Err(e) => Err(e),
        };

        match &result {
            Ok(outputs) => {
                self.publish_outputs(outputs, output_stream);
            }
            Err(_) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                o.obs_failures.inc();
            }
        }

        span.attr("ok", if result.is_ok() { "true" } else { "false" });
        if !task_id.is_empty() {
            span.attr("task", task_id);
        }
        if !node_id.is_empty() {
            span.attr("node", node_id);
        }
        span.end();

        let report = AgentReport {
            agent: self.spec.name.clone(),
            task_id: task_id.to_string(),
            node_id: node_id.to_string(),
            ok: result.is_ok(),
            error: result.as_ref().err().map(|e| e.to_string()),
            cost: ctx.cost_charged(),
            latency_micros: ctx.latency_micros(),
            outputs: result.map(|o| o.to_json()).unwrap_or(Value::Null),
        };
        let reports_stream = format!("{}:{}", self.scope, REPORTS_SEGMENT);
        let _ = self.store.publish_to(
            reports_stream,
            ["reports"],
            report.into_message().from_producer(self.spec.name.clone()),
        );
    }

    /// Publishes one data message per output parameter onto `output_stream`,
    /// tagged with the parameter name and the agent's configured output tags.
    fn publish_outputs(&self, outputs: &Outputs, output_stream: &str) {
        let tags: Vec<Tag> = self.spec.output_tags.iter().map(Tag::new).collect();
        for (param, value) in outputs.iter() {
            let msg = Message::data_json(value.clone())
                .with_tag(param.as_str())
                .with_tags(tags.iter().cloned())
                .from_producer(self.spec.name.clone());
            let _ = self
                .store
                .publish_to(output_stream.to_string(), Vec::<Tag>::new(), msg);
        }
    }
}

/// A running agent instance.
pub struct AgentHost {
    shared: Arc<Shared>,
    pool: Arc<WorkerPool>,
    listener: Option<JoinHandle<()>>,
    stop_tx: Option<Sender<()>>,
    running: Arc<AtomicBool>,
}

impl AgentHost {
    /// Creates and starts a host for `spec` + `processor`, scoped under
    /// `scope` (e.g. `session:1`). The spec is validated first.
    pub fn start(
        spec: AgentSpec,
        processor: Arc<dyn Processor>,
        store: StreamStore,
        scope: impl Into<String>,
    ) -> Result<Self> {
        spec.validate()?;
        let scope = scope.into();
        let pool = Arc::new(WorkerPool::new(&spec.name, spec.deployment.workers));
        let shared = Arc::new(Shared {
            spec,
            processor,
            store,
            scope,
            instructed: AtomicU64::new(0),
            autonomous: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            obs: parking_lot::RwLock::new(HostObservability::default()),
        });

        // Build subscriptions before spawning the listener so no message
        // published after `start` returns can be missed.
        let mut instruction_sub: Option<Subscription> = None;
        if shared.spec.activation.accepts_instructions() {
            // Scope-selective: instructions live on `<scope>:instructions`,
            // so an instance only answers instructions addressed to its own
            // session — a same-named agent in another session must not fire.
            instruction_sub = Some(shared.store.subscribe(
                blueprint_streams::Selector::Scope(shared.scope.clone()),
                blueprint_streams::TagFilter::any_of([format!("agent:{}", shared.spec.name)]),
            )?);
        }
        let mut binding_subs: Vec<(String, Subscription)> = Vec::new();
        if shared.spec.activation.monitors_tags() {
            for b in &shared.spec.bindings {
                // Autonomous agents monitor streams *within the session*
                // (§V-E); an unrestricted selector is narrowed to this
                // instance's scope so parallel sessions stay isolated.
                let selector = match &b.selector {
                    blueprint_streams::Selector::AllStreams => {
                        blueprint_streams::Selector::Scope(shared.scope.clone())
                    }
                    other => other.clone(),
                };
                let sub = shared.store.subscribe(selector, b.filter.clone())?;
                binding_subs.push((b.param.clone(), sub));
            }
        }

        let (stop_tx, stop_rx) = bounded::<()>(1);
        let running = Arc::new(AtomicBool::new(true));

        let listener = {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            let running = Arc::clone(&running);
            std::thread::Builder::new()
                .name(format!("agent-{}-listener", shared.spec.name))
                .spawn(move || {
                    let mut net = TriggerNet::new(
                        binding_subs.iter().map(|(p, _)| p.clone()),
                        shared.spec.pairing,
                    );
                    loop {
                        let mut select = Select::new();
                        let stop_idx = select.recv(&stop_rx);
                        let instr_idx = instruction_sub.as_ref().map(|s| select.recv(s.receiver()));
                        let binding_base: Vec<usize> = binding_subs
                            .iter()
                            .map(|(_, s)| select.recv(s.receiver()))
                            .collect();

                        let op = select.select();
                        let idx = op.index();
                        if idx == stop_idx {
                            let _ = op.recv(&stop_rx);
                            break;
                        }
                        if Some(idx) == instr_idx {
                            let sub = instruction_sub.as_ref().expect("instruction sub exists");
                            let Ok(msg) = op.recv(sub.receiver()) else {
                                break;
                            };
                            shared.store.monitor().record_consume(
                                &shared.spec.name,
                                &blueprint_streams::StreamId::new("instructions"),
                                &msg,
                            );
                            if let Some(exec) = ExecuteAgent::from_message(&msg) {
                                if exec.agent == shared.spec.name {
                                    shared.instructed.fetch_add(1, Ordering::Relaxed);
                                    let shared2 = Arc::clone(&shared);
                                    pool.submit(move || {
                                        shared2.run(
                                            exec.inputs,
                                            &exec.output_stream,
                                            &exec.task_id,
                                            &exec.node_id,
                                            exec.span,
                                        );
                                    });
                                }
                            }
                            continue;
                        }
                        // A binding message.
                        if let Some(pos) = binding_base.iter().position(|&b| b == idx) {
                            let (param, sub) = &binding_subs[pos];
                            let Ok(msg) = op.recv(sub.receiver()) else {
                                break;
                            };
                            if msg.is_eos() {
                                continue;
                            }
                            shared.store.monitor().record_consume(
                                &shared.spec.name,
                                &blueprint_streams::StreamId::new(format!("binding:{param}")),
                                &msg,
                            );
                            if let Some(inputs) = net.offer(param, msg.payload.clone()) {
                                shared.autonomous.fetch_add(1, Ordering::Relaxed);
                                let shared2 = Arc::clone(&shared);
                                let out_stream =
                                    format!("{}:{}:out", shared.scope, shared.spec.name);
                                pool.submit(move || {
                                    shared2.run(inputs, &out_stream, "", "", None);
                                });
                            }
                        }
                    }
                    running.store(false, Ordering::SeqCst);
                })
                .map_err(|e| AgentError::ProcessorFailed(format!("spawn listener: {e}")))?
        };

        Ok(AgentHost {
            shared,
            pool,
            listener: Some(listener),
            stop_tx: Some(stop_tx),
            running,
        })
    }

    /// Attaches observability: subsequent processor runs record an
    /// `invoke:<agent>` span and report into the `blueprint.agents.*`
    /// instruments. Late-bound (like the factory's fault injector) so hosts
    /// started before the runtime assembles its observability still pick it
    /// up.
    pub fn set_observability(&self, obs: &Observability) {
        *self.shared.obs.write() = HostObservability {
            tracer: obs.tracer.clone(),
            invocations: obs.metrics.counter("blueprint.agents.invocations"),
            obs_failures: obs.metrics.counter("blueprint.agents.failures"),
        };
    }

    /// The agent's spec.
    pub fn spec(&self) -> &AgentSpec {
        &self.shared.spec
    }

    /// The scope this instance runs under.
    pub fn scope(&self) -> &str {
        &self.shared.scope
    }

    /// True while the listener is alive.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }

    /// Snapshot of the worker pool's counters.
    pub fn worker_stats(&self) -> crate::worker::WorkerStats {
        self.pool.stats()
    }

    /// Snapshot of fire/failure counters.
    pub fn stats(&self) -> HostStats {
        HostStats {
            instructed_fires: self.shared.instructed.load(Ordering::Relaxed),
            autonomous_fires: self.shared.autonomous.load(Ordering::Relaxed),
            failures: self.shared.failures.load(Ordering::Relaxed),
        }
    }

    /// Executes the processor synchronously on the calling thread, bypassing
    /// streams — used by tests and by operators embedding an agent directly.
    pub fn execute_now(&self, inputs: Inputs) -> Result<Outputs> {
        let ctx = AgentContext::new(
            self.shared.store.clone(),
            self.shared.scope.clone(),
            self.shared.spec.name.clone(),
        );
        let inputs = inputs.validate(&self.shared.spec.inputs)?;
        self.shared.processor.process(&inputs, &ctx)
    }

    /// Stops the listener and joins it. Worker jobs already queued still run.
    pub fn stop(&mut self) {
        if let Some(tx) = self.stop_tx.take() {
            let _ = tx.send(());
        }
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AgentHost {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{DataType, ParamSpec};
    use crate::processor::FnProcessor;
    use crate::spec::StreamBinding;
    use blueprint_streams::{Selector, StreamId, TagFilter};
    use serde_json::json;
    use std::time::Duration;

    fn upper_processor() -> Arc<dyn Processor> {
        Arc::new(FnProcessor::new(|inputs: &Inputs, ctx: &AgentContext| {
            let text = inputs.require_str("text")?;
            ctx.charge_cost(0.1);
            ctx.charge_latency_micros(100);
            Ok(Outputs::new().with("upper", json!(text.to_uppercase())))
        }))
    }

    fn upper_spec() -> AgentSpec {
        AgentSpec::new("upper", "uppercases text")
            .with_input(ParamSpec::required("text", "input text", DataType::Text))
            .with_output(ParamSpec::required("upper", "uppercased", DataType::Text))
    }

    #[test]
    fn instruction_drives_execution_and_report() {
        let store = StreamStore::new();
        let _host =
            AgentHost::start(upper_spec(), upper_processor(), store.clone(), "session:1").unwrap();
        let out_sub = store
            .subscribe(
                Selector::Stream(StreamId::new("session:1:result")),
                TagFilter::all(),
            )
            .unwrap();
        let report_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["agent-report"]))
            .unwrap();

        let instr = ExecuteAgent {
            agent: "upper".into(),
            inputs: Inputs::new().with("text", json!("hello")),
            output_stream: "session:1:result".into(),
            task_id: "t1".into(),
            node_id: "n1".into(),
            span: None,
        };
        store
            .publish_to(
                "session:1:instructions",
                ["instructions"],
                instr.into_message(),
            )
            .unwrap();

        let out = out_sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(out.payload, json!("HELLO"));
        assert!(out.has_tag(&Tag::new("upper")));
        assert_eq!(out.producer, "upper");

        let report_msg = report_sub.recv_timeout(Duration::from_secs(2)).unwrap();
        let report = AgentReport::from_message(&report_msg).unwrap();
        assert!(report.ok);
        assert_eq!(report.task_id, "t1");
        assert!((report.cost - 0.1).abs() < 1e-9);
        assert_eq!(report.latency_micros, 100);
    }

    #[test]
    fn instruction_for_other_agent_is_ignored() {
        let store = StreamStore::new();
        let host =
            AgentHost::start(upper_spec(), upper_processor(), store.clone(), "session:1").unwrap();
        let instr = ExecuteAgent {
            agent: "someone-else".into(),
            inputs: Inputs::new(),
            output_stream: "session:1:out".into(),
            task_id: "t".into(),
            node_id: "n".into(),
            span: None,
        };
        store
            .publish_to(
                "session:1:instructions",
                ["instructions"],
                instr.into_message(),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(host.stats().instructed_fires, 0);
    }

    #[test]
    fn tag_monitoring_fires_autonomously() {
        let store = StreamStore::new();
        let spec = upper_spec().with_binding(StreamBinding::tagged("text", ["nlq"]));
        let host = AgentHost::start(spec, upper_processor(), store.clone(), "session:9").unwrap();
        let out_sub = store
            .subscribe(
                Selector::Stream(StreamId::new("session:9:upper:out")),
                TagFilter::all(),
            )
            .unwrap();
        store
            .publish_to(
                "session:9:query",
                Vec::<Tag>::new(),
                Message::data("find jobs")
                    .with_tag("NLQ")
                    .from_producer("user"),
            )
            .unwrap();
        let out = out_sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(out.payload, json!("FIND JOBS"));
        // Wait for the counter (updated on the listener thread before submit).
        for _ in 0..100 {
            if host.stats().autonomous_fires == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(host.stats().autonomous_fires, 1);
    }

    #[test]
    fn failed_processor_reports_error() {
        let store = StreamStore::new();
        let spec = AgentSpec::new("strict", "requires a field").with_input(ParamSpec::required(
            "must",
            "required",
            DataType::Text,
        ));
        let proc: Arc<dyn Processor> =
            Arc::new(FnProcessor::new(|_: &Inputs, _: &AgentContext| {
                Ok(Outputs::new())
            }));
        let host = AgentHost::start(spec, proc, store.clone(), "session:1").unwrap();
        let report_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["agent-report"]))
            .unwrap();
        let instr = ExecuteAgent {
            agent: "strict".into(),
            inputs: Inputs::new(), // missing `must`
            output_stream: "session:1:out".into(),
            task_id: "t".into(),
            node_id: "n".into(),
            span: None,
        };
        store
            .publish_to(
                "session:1:instructions",
                ["instructions"],
                instr.into_message(),
            )
            .unwrap();
        let report =
            AgentReport::from_message(&report_sub.recv_timeout(Duration::from_secs(2)).unwrap())
                .unwrap();
        assert!(!report.ok);
        assert!(report.error.unwrap().contains("must"));
        for _ in 0..100 {
            if host.stats().failures == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(host.stats().failures, 1);
    }

    #[test]
    fn panicking_processor_reports_and_host_survives() {
        let store = StreamStore::new();
        let spec = AgentSpec::new("bomb", "always panics").with_input(ParamSpec::required(
            "text",
            "t",
            DataType::Text,
        ));
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            |_: &Inputs, _: &AgentContext| -> Result<Outputs> { panic!("kaboom") },
        ));
        let _host = AgentHost::start(spec, proc, store.clone(), "session:1").unwrap();
        let report_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["agent-report"]))
            .unwrap();
        for i in 0..2 {
            let instr = ExecuteAgent {
                agent: "bomb".into(),
                inputs: Inputs::new().with("text", json!("x")),
                output_stream: "session:1:out".into(),
                task_id: format!("t{i}"),
                node_id: "n".into(),
                span: None,
            };
            store
                .publish_to(
                    "session:1:instructions",
                    ["instructions"],
                    instr.into_message(),
                )
                .unwrap();
        }
        // Both executions produce failure reports: the agent restarted.
        for _ in 0..2 {
            let report = AgentReport::from_message(
                &report_sub.recv_timeout(Duration::from_secs(2)).unwrap(),
            )
            .unwrap();
            assert!(!report.ok);
            assert!(report.error.unwrap().contains("kaboom"));
        }
    }

    #[test]
    fn execute_now_runs_inline() {
        let store = StreamStore::new();
        let host = AgentHost::start(upper_spec(), upper_processor(), store, "s").unwrap();
        let out = host
            .execute_now(Inputs::new().with("text", json!("abc")))
            .unwrap();
        assert_eq!(out.get("upper"), Some(&json!("ABC")));
    }

    #[test]
    fn worker_pool_runs_instructions_concurrently() {
        // Two instructions must be in flight at once: each processor blocks
        // on a 2-party barrier, so completion proves concurrency (§V-B:
        // "each agent has a pool of workers").
        let store = StreamStore::new();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let barrier2 = Arc::clone(&barrier);
        let mut spec = AgentSpec::new("parallel", "meets at a barrier")
            .with_input(ParamSpec::required("text", "t", DataType::Text))
            .with_output(ParamSpec::required("out", "o", DataType::Text));
        spec.deployment.workers = 2;
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, _: &AgentContext| {
                barrier2.wait();
                Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
            },
        ));
        let _host = AgentHost::start(spec, proc, store.clone(), "session:1").unwrap();
        let report_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["agent-report"]))
            .unwrap();
        for i in 0..2 {
            let instr = ExecuteAgent {
                agent: "parallel".into(),
                inputs: Inputs::new().with("text", json!(format!("m{i}"))),
                output_stream: "session:1:out".into(),
                task_id: format!("t{i}"),
                node_id: "n".into(),
                span: None,
            };
            store
                .publish_to(
                    "session:1:instructions",
                    ["instructions"],
                    instr.into_message(),
                )
                .unwrap();
        }
        // Both reports arrive only if the two processors met at the barrier.
        for _ in 0..2 {
            let report = AgentReport::from_message(
                &report_sub.recv_timeout(Duration::from_secs(5)).unwrap(),
            )
            .unwrap();
            assert!(report.ok);
        }
    }

    #[test]
    fn stop_terminates_listener() {
        let store = StreamStore::new();
        let mut host = AgentHost::start(upper_spec(), upper_processor(), store, "s").unwrap();
        assert!(host.is_running());
        host.stop();
        for _ in 0..100 {
            if !host.is_running() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!host.is_running());
    }

    #[test]
    fn instructions_are_session_isolated() {
        // Two instances of the same agent in different scopes: only the
        // instance whose scope carries the instruction fires.
        let store = StreamStore::new();
        let host1 =
            AgentHost::start(upper_spec(), upper_processor(), store.clone(), "session:1").unwrap();
        let host2 =
            AgentHost::start(upper_spec(), upper_processor(), store.clone(), "session:2").unwrap();
        let instr = ExecuteAgent {
            agent: "upper".into(),
            inputs: Inputs::new().with("text", json!("hello")),
            output_stream: "session:1:result".into(),
            task_id: "t1".into(),
            node_id: "n1".into(),
            span: None,
        };
        store
            .publish_to(
                "session:1:instructions",
                ["instructions"],
                instr.into_message(),
            )
            .unwrap();
        for _ in 0..100 {
            if host1.stats().instructed_fires == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(host1.stats().instructed_fires, 1);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(host2.stats().instructed_fires, 0);
    }

    #[test]
    fn multi_input_join_via_streams() {
        // Two tagged inputs must both arrive before the agent fires (Fig 4).
        let store = StreamStore::new();
        let spec = AgentSpec::new("matcher", "joins profile and jobs")
            .with_input(ParamSpec::required("profile", "p", DataType::Json))
            .with_input(ParamSpec::required("jobs", "j", DataType::List))
            .with_output(ParamSpec::required("matches", "m", DataType::List))
            .with_binding(StreamBinding::tagged("profile", ["profile"]))
            .with_binding(StreamBinding::tagged("jobs", ["jobs"]));
        let proc: Arc<dyn Processor> =
            Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
                let n = inputs
                    .require("jobs")?
                    .as_array()
                    .map(Vec::len)
                    .unwrap_or(0);
                Ok(Outputs::new().with("matches", json!([format!("{n} jobs considered")])))
            }));
        let host = AgentHost::start(spec, proc, store.clone(), "session:3").unwrap();
        let out_sub = store
            .subscribe(
                Selector::Stream(StreamId::new("session:3:matcher:out")),
                TagFilter::all(),
            )
            .unwrap();
        store
            .publish_to(
                "session:3:p",
                Vec::<Tag>::new(),
                Message::data_json(json!({"name":"a"})).with_tag("profile"),
            )
            .unwrap();
        // Not fired yet: only one place filled.
        assert!(out_sub.recv_timeout(Duration::from_millis(80)).is_err());
        store
            .publish_to(
                "session:3:j",
                Vec::<Tag>::new(),
                Message::data_json(json!([1, 2, 3])).with_tag("jobs"),
            )
            .unwrap();
        let out = out_sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(out.payload, json!(["3 jobs considered"]));
        assert!(host.stats().autonomous_fires >= 1);
    }
}
