//! Worker pools: per-agent concurrency and fault isolation.
//!
//! When an agent is triggered it "can further spawn a worker, running on its
//! own thread, while the agent continues to listen to other potential
//! streams" (§V-B). Each [`WorkerPool`] owns a fixed set of threads fed from
//! a job queue; a panicking job is caught and counted — the worker survives
//! (restart-on-failure, Fig 2) and the panic is surfaced to the host as an
//! [`AgentError::ProcessorPanicked`](crate::error::AgentError).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

/// A job executed on the pool. The job itself reports its outcome through
/// whatever channel it closes over; the pool only tracks panics.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing pool activity.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Jobs that ran to completion (including ones whose closure reported a
    /// task-level error).
    pub completed: u64,
    /// Jobs that panicked and were contained.
    pub panics: u64,
}

/// Fixed-size pool of worker threads with panic containment.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    completed: Arc<AtomicU64>,
    panics: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns a pool with `size` threads (minimum 1), named for the agent.
    pub fn new(agent: &str, size: usize) -> Self {
        let size = size.max(1);
        let (tx, rx) = unbounded::<Job>();
        let completed = Arc::new(AtomicU64::new(0));
        let panics = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(size);
        for i in 0..size {
            let rx = rx.clone();
            let completed = Arc::clone(&completed);
            let panics = Arc::clone(&panics);
            let name = format!("agent-{agent}-worker-{i}");
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        match catch_unwind(AssertUnwindSafe(job)) {
                            Ok(()) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
                .expect("spawn worker thread");
            handles.push(handle);
        }
        WorkerPool {
            tx: Some(tx),
            handles,
            completed,
            panics,
        }
    }

    /// Enqueues a job. Returns `false` if the pool was shut down.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Snapshot of pool counters.
    pub fn stats(&self) -> WorkerStats {
        WorkerStats {
            completed: self.completed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Drains the queue and joins all workers.
    pub fn shutdown(&mut self) {
        self.tx = None; // closing the channel ends the worker loops
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_count() {
        let pool = WorkerPool::new("echo", 2);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            assert!(pool.submit(move || tx.send(i).unwrap()));
        }
        let mut got: Vec<i32> = (0..10)
            .map(|_| rx.recv_timeout(Duration::from_secs(2)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        // Counters are updated after the job returns; wait briefly.
        for _ in 0..100 {
            if pool.stats().completed == 10 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.stats().completed, 10);
        assert_eq!(pool.stats().panics, 0);
    }

    #[test]
    fn panicking_job_is_contained() {
        let pool = WorkerPool::new("flaky", 1);
        pool.submit(|| panic!("boom"));
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(42).unwrap());
        // The worker survived the panic and processed the next job.
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), 42);
        for _ in 0..100 {
            if pool.stats().panics == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.stats().panics, 1);
    }

    #[test]
    fn minimum_one_worker() {
        let pool = WorkerPool::new("tiny", 0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn shutdown_rejects_new_jobs() {
        let mut pool = WorkerPool::new("done", 1);
        pool.shutdown();
        assert!(!pool.submit(|| {}));
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = WorkerPool::new("drop", 4);
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let tx = tx.clone();
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(()).unwrap();
            });
        }
        drop(pool); // must join without deadlock
        assert_eq!(rx.try_iter().count(), 4);
    }
}
