//! PetriNet-inspired multi-stream triggering (§V-B, Fig 4).
//!
//! Each bound input parameter is a *place* holding tokens (messages that
//! matched the binding). A *transition* — invoking the processor — fires when
//! every place holds at least one token, consuming one token per place to
//! form the input tuple. The [`PairingPolicy`] controls how tokens are
//! matched across places.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::param::Inputs;

/// How tokens from multiple places are combined when the transition fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PairingPolicy {
    /// FIFO join: consume the oldest token from every place. Each token is
    /// used exactly once (classic PetriNet semantics).
    #[default]
    Zip,
    /// Consume the newest token from every place, discarding older queued
    /// tokens — appropriate when only the latest value matters (e.g. the
    /// latest user profile).
    Latest,
    /// Like `Zip` for the *driving* place (the first declared binding), but
    /// other places retain their token as sticky context: once filled, every
    /// subsequent arrival on the driving place fires with the retained
    /// values.
    Sticky,
}

/// Runtime state of the agent's trigger net.
#[derive(Debug, Clone)]
pub struct TriggerNet {
    policy: PairingPolicy,
    /// Place order matters for `Sticky` (first place drives).
    order: Vec<String>,
    places: BTreeMap<String, VecDeque<Value>>,
    fires: u64,
}

impl TriggerNet {
    /// Creates a net with one place per parameter name, in declaration order.
    pub fn new<I, S>(params: I, policy: PairingPolicy) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let order: Vec<String> = params.into_iter().map(Into::into).collect();
        let places = order.iter().map(|p| (p.clone(), VecDeque::new())).collect();
        TriggerNet {
            policy,
            order,
            places,
            fires: 0,
        }
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.order.len()
    }

    /// Number of times the transition has fired.
    pub fn fires(&self) -> u64 {
        self.fires
    }

    /// Tokens currently queued at a place (0 for unknown places).
    pub fn queued(&self, param: &str) -> usize {
        self.places.get(param).map(VecDeque::len).unwrap_or(0)
    }

    /// Offers a token to a place. Returns the fired input tuple when the
    /// transition becomes enabled, otherwise `None`. Tokens offered to
    /// unknown places are ignored.
    pub fn offer(&mut self, param: &str, token: Value) -> Option<Inputs> {
        match self.places.get_mut(param) {
            Some(queue) => queue.push_back(token),
            None => return None,
        }
        self.try_fire()
    }

    /// Attempts to fire: succeeds when every place holds at least one token.
    pub fn try_fire(&mut self) -> Option<Inputs> {
        if self.order.is_empty() || !self.enabled() {
            return None;
        }
        let mut inputs = Inputs::new();
        match self.policy {
            PairingPolicy::Zip => {
                for name in &self.order {
                    let queue = self.places.get_mut(name).expect("place exists");
                    inputs.insert(name.clone(), queue.pop_front().expect("non-empty"));
                }
            }
            PairingPolicy::Latest => {
                for name in &self.order {
                    let queue = self.places.get_mut(name).expect("place exists");
                    let newest = queue.pop_back().expect("non-empty");
                    queue.clear();
                    inputs.insert(name.clone(), newest);
                }
            }
            PairingPolicy::Sticky => {
                for (i, name) in self.order.iter().enumerate() {
                    let queue = self.places.get_mut(name).expect("place exists");
                    if i == 0 {
                        inputs.insert(name.clone(), queue.pop_front().expect("non-empty"));
                    } else {
                        // Retain as sticky context: peek the newest, keep it.
                        let kept = queue.back().expect("non-empty").clone();
                        if queue.len() > 1 {
                            // Old context values are superseded.
                            let newest = queue.pop_back().expect("non-empty");
                            queue.clear();
                            queue.push_back(newest);
                        }
                        inputs.insert(name.clone(), kept);
                    }
                }
            }
        }
        self.fires += 1;
        Some(inputs)
    }

    /// True when every place holds at least one token.
    pub fn enabled(&self) -> bool {
        !self.order.is_empty() && self.places.values().all(|q| !q.is_empty())
    }

    /// Discards all queued tokens.
    pub fn clear(&mut self) {
        for q in self.places.values_mut() {
            q.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn single_place_fires_immediately() {
        let mut net = TriggerNet::new(["text"], PairingPolicy::Zip);
        let fired = net.offer("text", json!("hello")).unwrap();
        assert_eq!(fired.get("text"), Some(&json!("hello")));
        assert_eq!(net.fires(), 1);
    }

    #[test]
    fn join_waits_for_all_places() {
        let mut net = TriggerNet::new(["profile", "jobs"], PairingPolicy::Zip);
        assert!(net.offer("profile", json!({"name": "ada"})).is_none());
        assert!(!net.enabled());
        let fired = net.offer("jobs", json!([{"title": "ds"}])).unwrap();
        assert_eq!(fired.len(), 2);
        assert_eq!(net.queued("profile"), 0);
        assert_eq!(net.queued("jobs"), 0);
    }

    #[test]
    fn zip_pairs_fifo() {
        let mut net = TriggerNet::new(["a", "b"], PairingPolicy::Zip);
        net.offer("a", json!(1));
        net.offer("a", json!(2));
        let first = net.offer("b", json!("x")).unwrap();
        assert_eq!(first.get("a"), Some(&json!(1)));
        let second = net.offer("b", json!("y")).unwrap();
        assert_eq!(second.get("a"), Some(&json!(2)));
        assert_eq!(second.get("b"), Some(&json!("y")));
    }

    #[test]
    fn latest_discards_stale_tokens() {
        let mut net = TriggerNet::new(["a", "b"], PairingPolicy::Latest);
        net.offer("a", json!(1));
        net.offer("a", json!(2));
        net.offer("a", json!(3));
        let fired = net.offer("b", json!("x")).unwrap();
        assert_eq!(fired.get("a"), Some(&json!(3)));
        assert_eq!(net.queued("a"), 0);
    }

    #[test]
    fn sticky_context_is_reused() {
        let mut net = TriggerNet::new(["query", "profile"], PairingPolicy::Sticky);
        net.offer("query", json!("q1"));
        let f1 = net.offer("profile", json!({"v": 1})).unwrap();
        assert_eq!(f1.get("query"), Some(&json!("q1")));
        // Profile is retained: next query fires without a new profile token.
        let f2 = net.offer("query", json!("q2")).unwrap();
        assert_eq!(f2.get("profile"), Some(&json!({"v": 1})));
        assert_eq!(f2.get("query"), Some(&json!("q2")));
        assert_eq!(net.fires(), 2);
    }

    #[test]
    fn sticky_context_updates_to_newest() {
        let mut net = TriggerNet::new(["query", "profile"], PairingPolicy::Sticky);
        net.offer("profile", json!({"v": 1}));
        net.offer("profile", json!({"v": 2}));
        let f = net.offer("query", json!("q")).unwrap();
        assert_eq!(f.get("profile"), Some(&json!({"v": 2})));
        assert_eq!(net.queued("profile"), 1);
    }

    #[test]
    fn unknown_place_is_ignored() {
        let mut net = TriggerNet::new(["a"], PairingPolicy::Zip);
        assert!(net.offer("zzz", json!(1)).is_none());
        assert_eq!(net.queued("zzz"), 0);
    }

    #[test]
    fn empty_net_never_fires() {
        let mut net = TriggerNet::new(Vec::<String>::new(), PairingPolicy::Zip);
        assert!(!net.enabled());
        assert!(net.try_fire().is_none());
    }

    #[test]
    fn clear_discards_tokens() {
        let mut net = TriggerNet::new(["a", "b"], PairingPolicy::Zip);
        net.offer("a", json!(1));
        net.clear();
        assert!(net.offer("b", json!(2)).is_none());
    }
}
