//! Property-based tests for PetriNet triggering invariants (Fig 4).

use blueprint_agents::{PairingPolicy, TriggerNet};
use proptest::prelude::*;
use serde_json::json;

/// A random interleaving of token arrivals on two places.
fn arrivals() -> impl Strategy<Value = Vec<(bool, u32)>> {
    prop::collection::vec((any::<bool>(), 0u32..1000), 0..80)
}

proptest! {
    /// Zip: the number of fires equals min(tokens_a, tokens_b) regardless of
    /// the interleaving.
    #[test]
    fn zip_fire_count_is_min(seq in arrivals()) {
        let mut net = TriggerNet::new(["a", "b"], PairingPolicy::Zip);
        let (mut count_a, mut count_b) = (0u64, 0u64);
        for (is_a, v) in &seq {
            let place = if *is_a { count_a += 1; "a" } else { count_b += 1; "b" };
            net.offer(place, json!(v));
        }
        prop_assert_eq!(net.fires(), count_a.min(count_b));
        // Leftover tokens are exactly the surplus.
        prop_assert_eq!(net.queued("a") as u64, count_a - net.fires());
        prop_assert_eq!(net.queued("b") as u64, count_b - net.fires());
    }

    /// Zip preserves FIFO pairing: the k-th fire carries the k-th token of
    /// each place.
    #[test]
    fn zip_pairs_in_fifo_order(values_a in prop::collection::vec(0u32..1000, 1..20)) {
        let mut net = TriggerNet::new(["a", "b"], PairingPolicy::Zip);
        for v in &values_a {
            net.offer("a", json!(v));
        }
        for (k, expected) in values_a.iter().enumerate() {
            let fired = net.offer("b", json!(k)).expect("fires");
            prop_assert_eq!(fired.get("a"), Some(&json!(expected)));
            prop_assert_eq!(fired.get("b"), Some(&json!(k)));
        }
    }

    /// Latest: each fire carries the newest token of every place, and the
    /// places are drained afterwards.
    #[test]
    fn latest_takes_newest_and_drains(backlog in prop::collection::vec(0u32..1000, 1..20)) {
        let mut net = TriggerNet::new(["a", "b"], PairingPolicy::Latest);
        for v in &backlog {
            net.offer("a", json!(v));
        }
        let fired = net.offer("b", json!("go")).expect("fires");
        prop_assert_eq!(fired.get("a"), Some(&json!(backlog.last().unwrap())));
        prop_assert_eq!(net.queued("a"), 0);
        prop_assert_eq!(net.queued("b"), 0);
    }

    /// Sticky: once context is set, every driver token fires exactly once
    /// with the retained context value.
    #[test]
    fn sticky_fires_once_per_driver(drivers in prop::collection::vec(0u32..1000, 1..20)) {
        let mut net = TriggerNet::new(["driver", "ctx"], PairingPolicy::Sticky);
        net.offer("ctx", json!("context-value"));
        // Context alone never fires.
        prop_assert_eq!(net.fires(), 0);
        for (i, d) in drivers.iter().enumerate() {
            let fired = net.offer("driver", json!(d)).expect("fires per driver token");
            prop_assert_eq!(fired.get("ctx"), Some(&json!("context-value")));
            prop_assert_eq!(net.fires(), (i + 1) as u64);
        }
    }

    /// A net never fires while any place is empty, for every policy.
    #[test]
    fn no_policy_fires_with_empty_place(
        policy_idx in 0usize..3,
        tokens in prop::collection::vec(0u32..100, 0..30),
    ) {
        let policy = [PairingPolicy::Zip, PairingPolicy::Latest, PairingPolicy::Sticky][policy_idx];
        let mut net = TriggerNet::new(["a", "b", "never-filled"], policy);
        for (i, v) in tokens.iter().enumerate() {
            let place = if i % 2 == 0 { "a" } else { "b" };
            prop_assert!(net.offer(place, json!(v)).is_none());
        }
        prop_assert_eq!(net.fires(), 0);
        prop_assert!(!net.enabled());
    }
}
