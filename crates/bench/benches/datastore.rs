//! B7 — the relational substrate: scan vs index probe, joins, and
//! aggregation at increasing table sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use blueprint_core::datastore::{Datum, RelationalDb};

fn seeded_db(rows: usize, with_index: bool) -> RelationalDb {
    let db = RelationalDb::new();
    db.execute("CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary FLOAT, company_id INT)")
        .unwrap();
    db.execute("CREATE TABLE companies (id INT, name TEXT, size INT)")
        .unwrap();
    const CITIES: [&str; 8] = [
        "san francisco",
        "oakland",
        "san jose",
        "berkeley",
        "new york",
        "seattle",
        "austin",
        "boston",
    ];
    const TITLES: [&str; 4] = ["data scientist", "ml engineer", "data analyst", "recruiter"];
    for i in 0..rows {
        db.insert_row(
            "jobs",
            vec![
                Datum::Int(i as i64),
                Datum::Text(TITLES[i % TITLES.len()].into()),
                Datum::Text(CITIES[i % CITIES.len()].into()),
                Datum::Float(100_000.0 + (i % 90) as f64 * 1_000.0),
                Datum::Int((i % 50) as i64),
            ],
        )
        .unwrap();
    }
    for i in 0..50 {
        db.insert_row(
            "companies",
            vec![
                Datum::Int(i),
                Datum::Text(format!("company-{i}")),
                Datum::Int(i * 100),
            ],
        )
        .unwrap();
    }
    if with_index {
        db.create_index("jobs", "city").unwrap();
    }
    db
}

fn bench_scan_vs_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("datastore/point_lookup");
    group.sample_size(20);
    for rows in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("scan", rows), &rows, |b, &rows| {
            let db = seeded_db(rows, false);
            b.iter(|| {
                db.execute("SELECT COUNT(*) FROM jobs WHERE city = 'oakland'")
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("index", rows), &rows, |b, &rows| {
            let db = seeded_db(rows, true);
            b.iter(|| {
                db.execute("SELECT COUNT(*) FROM jobs WHERE city = 'oakland'")
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("datastore/join");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("hash_join", rows), &rows, |b, &rows| {
            let db = seeded_db(rows, false);
            b.iter(|| {
                db.execute(
                    "SELECT COUNT(*) FROM jobs j JOIN companies c ON j.company_id = c.id \
                     WHERE c.size > 1000",
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("datastore/aggregate");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("group_by", rows), &rows, |b, &rows| {
            let db = seeded_db(rows, false);
            b.iter(|| {
                db.execute(
                    "SELECT city, COUNT(*) AS n, AVG(salary) AS s FROM jobs \
                     GROUP BY city ORDER BY n DESC",
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_vs_index, bench_join, bench_aggregate);
criterion_main!(benches);
