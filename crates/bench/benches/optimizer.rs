//! B5 — optimizer (§V-G): Pareto frontier extraction, constrained
//! selection, and plan-level tier assignment (exhaustive vs greedy), plus
//! the A2 ablation (optimized vs naive source selection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use blueprint_core::optimizer::{
    optimize_choices, pareto_frontier, select, Candidate, CostProfile, Objective, QosConstraints,
};

fn tiers() -> Vec<CostProfile> {
    vec![
        CostProfile::new(10.0, 300_000, 0.98),
        CostProfile::new(1.0, 80_000, 0.90),
        CostProfile::new(0.1, 20_000, 0.75),
    ]
}

fn candidates(n: usize) -> Vec<Candidate<usize>> {
    // A deterministic spread of profiles across the trade-off space.
    (0..n)
        .map(|i| {
            let cost = 0.1 + (i % 17) as f64 * 0.37;
            let latency = 10_000 + (i % 13) as u64 * 17_000;
            let accuracy = 0.6 + (i % 11) as f64 * 0.035;
            Candidate::new(i, CostProfile::new(cost, latency, accuracy))
        })
        .collect()
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer/pareto");
    group.sample_size(20);
    for n in [10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::new("candidates", n), &n, |b, &n| {
            let cands = candidates(n);
            b.iter(|| pareto_frontier(&cands).len());
        });
    }
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer/select");
    group.sample_size(20);
    let cands = candidates(1_000);
    let constraints = QosConstraints::none()
        .with_max_cost(3.0)
        .with_min_accuracy(0.8);
    group.bench_function("constrained_1000", |b| {
        b.iter(|| select(&cands, Objective::balanced(), &constraints));
    });
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer/assignment");
    group.sample_size(10);
    // Exhaustive region: 3^7 = 2187 ≤ 4096.
    group.bench_function("exhaustive_7_nodes", |b| {
        let nodes: Vec<Vec<CostProfile>> = (0..7).map(|_| tiers()).collect();
        let constraints = QosConstraints::none().with_min_accuracy(0.4);
        b.iter(|| optimize_choices(&nodes, Objective::MinCost, &constraints).unwrap());
    });
    // Greedy region: 3^20.
    group.bench_function("greedy_20_nodes", |b| {
        let nodes: Vec<Vec<CostProfile>> = (0..20).map(|_| tiers()).collect();
        let constraints = QosConstraints::none().with_min_accuracy(0.05);
        b.iter(|| optimize_choices(&nodes, Objective::MinCost, &constraints).unwrap());
    });
    group.finish();
}

/// A2 ablation — optimized vs naive source selection quality (reported as a
/// bench so the numbers land in bench output; the assertion is the point).
fn bench_ablation_optimizer_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer/ablation_a2");
    group.sample_size(10);
    let nodes: Vec<Vec<CostProfile>> = (0..5).map(|_| tiers()).collect();
    let constraints = QosConstraints::none().with_min_accuracy(0.5);

    // Naive: always the most accurate tier.
    let naive_cost: f64 = nodes.iter().map(|opts| opts[0].cost_per_call).sum();
    // Optimized under the same floor.
    let choice = optimize_choices(&nodes, Objective::MinCost, &constraints).unwrap();
    let optimized_cost: f64 = choice
        .iter()
        .enumerate()
        .map(|(n, &i)| nodes[n][i].cost_per_call)
        .sum();
    assert!(
        optimized_cost < naive_cost,
        "optimizer must beat always-premium: {optimized_cost} vs {naive_cost}"
    );
    group.bench_function("optimize_5_nodes_floor_0.5", |b| {
        b.iter(|| optimize_choices(&nodes, Objective::MinCost, &constraints).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pareto,
    bench_select,
    bench_assignment,
    bench_ablation_optimizer_quality
);
criterion_main!(benches);
