//! B1 — streams throughput (§V-A): publish rate and fan-out cost on the
//! orchestration substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use blueprint_core::streams::{Message, Selector, StreamStore, Tag, TagFilter};

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("streams/publish");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));

    group.bench_function("no_subscribers", |b| {
        let store = StreamStore::new();
        store.monitor().set_enabled(false);
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        b.iter(|| {
            store
                .publish(&id, Message::data("a short payload message"))
                .unwrap()
        });
    });

    for subs in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("fanout", subs), &subs, |b, &subs| {
            let store = StreamStore::new();
            store.monitor().set_enabled(false);
            let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
            let subscriptions: Vec<_> = (0..subs)
                .map(|_| {
                    store
                        .subscribe(Selector::Stream(id.clone()), TagFilter::all())
                        .unwrap()
                })
                .collect();
            b.iter(|| {
                store
                    .publish(&id, Message::data("a short payload message"))
                    .unwrap();
                for s in &subscriptions {
                    s.drain();
                }
            });
        });
    }
    group.finish();
}

fn bench_tag_filtering(c: &mut Criterion) {
    let mut group = c.benchmark_group("streams/tag_filter");
    group.sample_size(20);
    // 64 subscribers, each on a distinct tag; only one matches per publish.
    group.bench_function("selective_64_subscribers", |b| {
        let store = StreamStore::new();
        store.monitor().set_enabled(false);
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let subscriptions: Vec<_> = (0..64)
            .map(|i| {
                store
                    .subscribe(
                        Selector::Stream(id.clone()),
                        TagFilter::any_of([format!("tag-{i}")]),
                    )
                    .unwrap()
            })
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let tag = format!("tag-{}", i % 64);
            i += 1;
            store
                .publish(&id, Message::data("payload").with_tag(tag.as_str()))
                .unwrap();
            for s in &subscriptions {
                s.drain();
            }
        });
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("streams/replay");
    group.sample_size(20);
    for n in [100u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("read_full", n), &n, |b, &n| {
            let store = StreamStore::new();
            store.monitor().set_enabled(false);
            let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
            for i in 0..n {
                store.publish(&id, Message::data(format!("m{i}"))).unwrap();
            }
            b.iter(|| store.read(&id, 0).unwrap().len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_publish, bench_tag_filtering, bench_replay);
criterion_main!(benches);
