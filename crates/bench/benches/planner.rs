//! B4 — planning latency (§V-F, §V-G): task planning vs registry size and
//! data-plan construction for the running example.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use blueprint_bench::{bench_blueprint, RUNNING_EXAMPLE};
use blueprint_core::agents::{AgentSpec, CostProfile, DataType, ParamSpec};
use blueprint_core::llmsim::{ModelProfile, SimLlm};
use blueprint_core::planner::TaskPlanner;
use blueprint_core::registry::AgentRegistry;

/// The Fig 6 agent suite plus `extra` distractor agents.
fn registry_with(extra: usize) -> Arc<AgentRegistry> {
    let r = AgentRegistry::new();
    for (name, desc) in [
        (
            "profiler",
            "collect job seeker profile information from the user",
        ),
        (
            "job-matcher",
            "match the job seeker profile with available job listings",
        ),
        ("presenter", "present the matched results to the end user"),
    ] {
        r.register(
            AgentSpec::new(name, desc)
                .with_input(ParamSpec::required("input", "the input", DataType::Text))
                .with_output(ParamSpec::required("output", "the output", DataType::Json))
                .with_profile(CostProfile::new(1.0, 10_000, 0.9)),
        )
        .unwrap();
    }
    for i in 0..extra {
        r.register(
            AgentSpec::new(
                format!("distractor-{i}"),
                format!("unrelated service number {i} handling billing and invoices"),
            )
            .with_input(ParamSpec::required("input", "x", DataType::Any)),
        )
        .unwrap();
    }
    Arc::new(r)
}

fn bench_task_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/task_plan");
    group.sample_size(20);
    for extra in [0usize, 100, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("registry_size", extra + 3),
            &extra,
            |b, &extra| {
                let planner = TaskPlanner::new(
                    registry_with(extra),
                    Arc::new(SimLlm::new(ModelProfile::large())),
                );
                b.iter(|| planner.plan(RUNNING_EXAMPLE).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_data_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/data_plan");
    group.sample_size(10);
    let bp = bench_blueprint();
    group.bench_function("fig7_decomposition", |b| {
        b.iter(|| bp.data_planner().plan_job_query(RUNNING_EXAMPLE).unwrap());
    });
    group.bench_function("fig7_execution", |b| {
        let plan = bp.data_planner().plan_job_query(RUNNING_EXAMPLE).unwrap();
        b.iter(|| bp.data_planner().execute(&plan).unwrap());
    });
    let dataset = bp.dataset().unwrap();
    group.bench_function("direct_nl2q", |b| {
        b.iter(|| {
            bp.data_planner()
                .plan_nl2q_direct(RUNNING_EXAMPLE, &dataset.db, "hr-db")
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_task_planning, bench_data_planning);
criterion_main!(benches);
