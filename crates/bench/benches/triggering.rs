//! B2 — triggering overhead (§V-B, Fig 4): PetriNet join cost vs a single
//! place, across pairing policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde_json::json;

use blueprint_core::agents::{PairingPolicy, TriggerNet};

fn bench_offer(c: &mut Criterion) {
    let mut group = c.benchmark_group("triggering/offer");
    group.sample_size(20);

    for places in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("zip", places), &places, |b, &places| {
            let names: Vec<String> = (0..places).map(|i| format!("p{i}")).collect();
            let mut net = TriggerNet::new(names.clone(), PairingPolicy::Zip);
            b.iter(|| {
                // One full firing cycle: a token to every place.
                for name in &names {
                    let _ = net.offer(name, json!(1));
                }
            });
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("triggering/policies");
    group.sample_size(20);
    for (label, policy) in [
        ("zip", PairingPolicy::Zip),
        ("latest", PairingPolicy::Latest),
        ("sticky", PairingPolicy::Sticky),
    ] {
        group.bench_function(label, |b| {
            let mut net = TriggerNet::new(["driver", "context"], policy);
            net.offer("context", json!({"ctx": true}));
            b.iter(|| {
                net.offer("context", json!({"ctx": true}));
                net.offer("driver", json!("go"))
            });
        });
    }
    group.finish();
}

fn bench_backlog(c: &mut Criterion) {
    // Firing cost with a deep backlog queued at one place.
    let mut group = c.benchmark_group("triggering/backlog");
    group.sample_size(20);
    for backlog in [0usize, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("queued", backlog),
            &backlog,
            |b, &backlog| {
                b.iter_with_setup(
                    || {
                        let mut net = TriggerNet::new(["a", "b"], PairingPolicy::Zip);
                        for i in 0..backlog {
                            net.offer("a", json!(i));
                        }
                        net.offer("a", json!("head"));
                        net
                    },
                    |mut net| net.offer("b", json!("fire")).is_some(),
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_offer, bench_policies, bench_backlog);
criterion_main!(benches);
