//! B9 — resilience bookkeeping overhead: the same fault-free task chain
//! with and without the full resilience stack armed (zero-rate fault
//! injector, retry policy, circuit breakers, degradation ladder). The
//! delta between `plain` and `resilient` is the hot-path cost of the
//! bookkeeping; it should stay well under 5%.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

use blueprint_core::agents::{
    AgentContext, AgentFactory, AgentSpec, CostProfile, DataType, FnProcessor, Inputs, Outputs,
    ParamSpec, Processor,
};
use blueprint_core::coordinator::TaskCoordinator;
use blueprint_core::optimizer::QosConstraints;
use blueprint_core::planner::{InputBinding, PlanNode, TaskPlan};
use blueprint_core::registry::AgentRegistry;
use blueprint_core::resilience::{
    BreakerConfig, BreakerRegistry, DegradationLadder, FaultInjector, FaultPlan, RetryPolicy,
};
use blueprint_core::streams::StreamStore;

const CHAIN_LEN: usize = 3;

fn setup(resilient: bool) -> (Arc<AgentFactory>, TaskCoordinator) {
    let store = StreamStore::new();
    store.monitor().set_enabled(false);
    let factory = Arc::new(AgentFactory::new(store.clone()));
    let registry = Arc::new(AgentRegistry::new());
    if resilient {
        // Zero-rate plan: every fault check runs, none ever fires.
        let injector = Arc::new(FaultInjector::new(FaultPlan::none(0)));
        store.set_fault_injector(Arc::clone(&injector));
        factory.set_fault_injector(injector);
        let breakers = Arc::new(BreakerRegistry::new(BreakerConfig::default()));
        registry.set_breakers(Arc::clone(&breakers));
        factory.set_breakers(breakers);
    }
    for i in 0..CHAIN_LEN {
        let spec = AgentSpec::new(format!("step-{i}"), "pass the text along")
            .with_input(ParamSpec::required("text", "t", DataType::Text))
            .with_output(ParamSpec::required("out", "o", DataType::Text))
            .with_profile(CostProfile::new(0.01, 10, 1.0));
        let proc: Arc<dyn Processor> =
            Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
                Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
            }));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn(&format!("step-{i}"), "session:1").unwrap();
    }
    let mut coordinator = TaskCoordinator::new(store, "session:1", Arc::clone(&registry))
        .with_report_timeout(Duration::from_secs(10));
    if resilient {
        let breakers = Arc::new(BreakerRegistry::new(BreakerConfig::default()));
        coordinator = coordinator
            .with_retry_policy(RetryPolicy::standard(7))
            .with_breakers(breakers)
            .with_degradation(DegradationLadder::new().with_fallback("step-0", "step-1", 0.05));
    }
    (factory, coordinator)
}

fn chain_plan(task_id: &str) -> TaskPlan {
    let mut plan = TaskPlan::new(task_id, "benchmark payload");
    for i in 0..CHAIN_LEN {
        let mut inputs = BTreeMap::new();
        if i == 0 {
            inputs.insert("text".to_string(), InputBinding::FromUser);
        } else {
            inputs.insert(
                "text".to_string(),
                InputBinding::FromNode {
                    node: format!("n{i}"),
                    output: "out".to_string(),
                },
            );
        }
        plan.push(PlanNode {
            id: format!("n{}", i + 1),
            agent: format!("step-{i}"),
            task: "pass along".into(),
            inputs,
            profile: CostProfile::new(0.01, 10, 1.0),
        });
    }
    plan
}

fn bench_resilience_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilience/fault-free");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for (label, resilient) in [("plain", false), ("resilient", true)] {
        group.bench_function(label, |b| {
            let (_factory, coordinator) = setup(resilient);
            let mut task = 0u64;
            b.iter(|| {
                task += 1;
                let plan = chain_plan(&format!("t{task}"));
                let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
                assert!(report.outcome.succeeded());
                assert!(report.degradations.is_empty());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_resilience_overhead);
criterion_main!(benches);
