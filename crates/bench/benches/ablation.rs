//! A1 + A3 ablations:
//!
//! * A1 — centralized (coordinator-driven) vs decentralized (tag-chained)
//!   execution of an equivalent two-step workflow;
//! * A3 — direct NL2Q vs the Fig 7 decomposed data plan (recall is asserted,
//!   latency is measured).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

use blueprint_bench::{bench_blueprint, RUNNING_EXAMPLE};
use blueprint_core::agents::{
    ActivationMode, AgentContext, AgentFactory, AgentSpec, CostProfile, DataType, FnProcessor,
    Inputs, Outputs, ParamSpec, Processor, StreamBinding,
};
use blueprint_core::coordinator::TaskCoordinator;
use blueprint_core::optimizer::QosConstraints;
use blueprint_core::planner::{InputBinding, PlanNode, TaskPlan};
use blueprint_core::registry::AgentRegistry;
use blueprint_core::streams::{Message, Selector, StreamStore, TagFilter};

fn passthrough(tag_in: &str, tag_out: Option<&str>, name: &str) -> (AgentSpec, Arc<dyn Processor>) {
    let mut spec = AgentSpec::new(name, "pass text along")
        .with_input(ParamSpec::required("text", "t", DataType::Text))
        .with_output(ParamSpec::required("out", "o", DataType::Text))
        .with_profile(CostProfile::new(0.01, 10, 1.0));
    spec = spec
        .with_binding(StreamBinding::tagged("text", [tag_in]))
        .with_activation(ActivationMode::Hybrid);
    if let Some(t) = tag_out {
        spec = spec.with_output_tag(t);
    }
    let proc: Arc<dyn Processor> =
        Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
            Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
        }));
    (spec, proc)
}

/// A1 — the same two-step pipeline, both control styles.
fn bench_control_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/a1_control_style");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    // Decentralized: stage-a (tag in:a, out:b) → stage-b (tag in:b, out:done).
    group.bench_function("decentralized_tags", |b| {
        let store = StreamStore::new();
        store.monitor().set_enabled(false);
        let factory = AgentFactory::new(store.clone());
        for (spec, proc) in [
            passthrough("stage-a", Some("stage-b"), "a"),
            passthrough("stage-b", Some("done"), "b"),
        ] {
            factory.register(spec, proc).unwrap();
        }
        factory.spawn("a", "session:1").unwrap();
        factory.spawn("b", "session:1").unwrap();
        let done = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["done"]))
            .unwrap();
        b.iter(|| {
            store
                .publish_to(
                    "session:1:in",
                    ["in"],
                    Message::data("payload").with_tag("stage-a"),
                )
                .unwrap();
            done.recv_timeout(Duration::from_secs(10)).unwrap()
        });
    });

    // Centralized: the coordinator drives the same two agents.
    group.bench_function("centralized_coordinator", |b| {
        let store = StreamStore::new();
        store.monitor().set_enabled(false);
        let factory = AgentFactory::new(store.clone());
        let registry = Arc::new(AgentRegistry::new());
        for (spec, proc) in [
            passthrough("unused-a", None, "a"),
            passthrough("unused-b", None, "b"),
        ] {
            registry.register(spec.clone()).unwrap();
            factory.register(spec, proc).unwrap();
        }
        factory.spawn("a", "session:1").unwrap();
        factory.spawn("b", "session:1").unwrap();
        let coordinator = TaskCoordinator::new(store, "session:1", registry)
            .with_report_timeout(Duration::from_secs(10));
        let mut task = 0u64;
        b.iter(|| {
            task += 1;
            let mut plan = TaskPlan::new(format!("t{task}"), "payload");
            let mut i1 = std::collections::BTreeMap::new();
            i1.insert("text".to_string(), InputBinding::FromUser);
            plan.push(PlanNode {
                id: "n1".into(),
                agent: "a".into(),
                task: "stage a".into(),
                inputs: i1,
                profile: CostProfile::new(0.01, 10, 1.0),
            });
            let mut i2 = std::collections::BTreeMap::new();
            i2.insert(
                "text".to_string(),
                InputBinding::FromNode {
                    node: "n1".into(),
                    output: "out".into(),
                },
            );
            plan.push(PlanNode {
                id: "n2".into(),
                agent: "b".into(),
                task: "stage b".into(),
                inputs: i2,
                profile: CostProfile::new(0.01, 10, 1.0),
            });
            let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
            assert!(report.outcome.succeeded());
        });
    });
    group.finish();
}

/// A3 — decomposed vs direct data plans. Recall is asserted once; the bench
/// measures planning+execution latency of both.
fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/a3_decomposition");
    group.sample_size(10);
    let bp = bench_blueprint();
    let dataset = bp.dataset().unwrap();

    // Recall assertion: decomposition strictly dominates on region queries.
    let decomposed = bp
        .data_planner()
        .execute(&bp.data_planner().plan_job_query(RUNNING_EXAMPLE).unwrap())
        .unwrap();
    let direct = bp
        .data_planner()
        .execute(
            &bp.data_planner()
                .plan_nl2q_direct(RUNNING_EXAMPLE, &dataset.db, "hr-db")
                .unwrap(),
        )
        .unwrap();
    let d_rows = decomposed.value.as_array().map(Vec::len).unwrap_or(0);
    let n_rows = direct.value.as_array().map(Vec::len).unwrap_or(0);
    assert!(
        d_rows > n_rows,
        "decomposed {d_rows} must beat direct {n_rows}"
    );

    group.bench_function("decomposed_plan_and_execute", |b| {
        b.iter(|| {
            let plan = bp.data_planner().plan_job_query(RUNNING_EXAMPLE).unwrap();
            bp.data_planner().execute(&plan).unwrap()
        });
    });
    group.bench_function("direct_nl2q_plan_and_execute", |b| {
        b.iter(|| {
            let plan = bp
                .data_planner()
                .plan_nl2q_direct(RUNNING_EXAMPLE, &dataset.db, "hr-db")
                .unwrap();
            bp.data_planner().execute(&plan).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_control_styles, bench_decomposition);
criterion_main!(benches);
