//! B3 — registry search (§V-C): keyword+vector search latency vs registry
//! size, and usage-boosted re-ranking cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use blueprint_core::agents::{AgentSpec, DataType, ParamSpec};
use blueprint_core::registry::AgentRegistry;

const VERBS: [&str; 8] = [
    "match",
    "rank",
    "summarize",
    "classify",
    "extract",
    "translate",
    "present",
    "verify",
];
const OBJECTS: [&str; 8] = [
    "job postings",
    "candidate profiles",
    "query results",
    "user intents",
    "skills from resumes",
    "natural language questions",
    "search results",
    "generated content",
];

fn seeded_registry(n: usize) -> AgentRegistry {
    let registry = AgentRegistry::new();
    for i in 0..n {
        let verb = VERBS[i % VERBS.len()];
        let object = OBJECTS[(i / VERBS.len()) % OBJECTS.len()];
        let spec = AgentSpec::new(
            format!("agent-{i}"),
            format!("{verb} {object} for enterprise workflow number {i}"),
        )
        .with_input(ParamSpec::required("input", "the input", DataType::Any))
        .with_output(ParamSpec::required("output", "the output", DataType::Any));
        registry.register(spec).unwrap();
    }
    registry
}

fn bench_search_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry/search");
    group.sample_size(20);
    for n in [10usize, 100, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("agents", n), &n, |b, &n| {
            let registry = seeded_registry(n);
            b.iter(|| registry.search("match candidate profiles against job postings", 5));
        });
    }
    group.finish();
}

fn bench_usage_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry/record_usage");
    group.sample_size(20);
    group.bench_function("with_embedding_refresh", |b| {
        let registry = seeded_registry(100);
        b.iter(|| registry.record_usage("agent-0", "match job postings please"));
    });
    group.finish();
}

fn bench_registration(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry/register");
    group.sample_size(20);
    group.bench_function("single_agent", |b| {
        let mut i = 0usize;
        let registry = AgentRegistry::new();
        b.iter(|| {
            i += 1;
            registry
                .register(
                    AgentSpec::new(format!("new-{i}"), "a freshly mapped enterprise api")
                        .with_input(ParamSpec::required("input", "x", DataType::Any)),
                )
                .unwrap();
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_search_scaling,
    bench_usage_recording,
    bench_registration
);
criterion_main!(benches);
