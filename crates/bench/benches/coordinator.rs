//! B6 — coordination overhead (§V-H): end-to-end task execution through
//! instruction messages, reports, and budget tracking.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde_json::json;

use blueprint_core::agents::{
    AgentContext, AgentFactory, AgentSpec, CostProfile, DataType, FnProcessor, Inputs, Outputs,
    ParamSpec, Processor,
};
use blueprint_core::coordinator::{SchedulerMode, TaskCoordinator};
use blueprint_core::optimizer::QosConstraints;
use blueprint_core::planner::{InputBinding, PlanNode, TaskPlan};
use blueprint_core::registry::AgentRegistry;
use blueprint_core::streams::StreamStore;

fn setup(chain_len: usize) -> (Arc<AgentFactory>, TaskCoordinator) {
    let store = StreamStore::new();
    store.monitor().set_enabled(false);
    let factory = Arc::new(AgentFactory::new(store.clone()));
    let registry = Arc::new(AgentRegistry::new());
    for i in 0..chain_len {
        let spec = AgentSpec::new(format!("step-{i}"), "pass the text along")
            .with_input(ParamSpec::required("text", "t", DataType::Text))
            .with_output(ParamSpec::required("out", "o", DataType::Text))
            .with_profile(CostProfile::new(0.01, 10, 1.0));
        let proc: Arc<dyn Processor> =
            Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
                Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
            }));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn(&format!("step-{i}"), "session:1").unwrap();
    }
    let coordinator = TaskCoordinator::new(store, "session:1", registry)
        .with_report_timeout(Duration::from_secs(10));
    (factory, coordinator)
}

fn chain_plan(task_id: &str, chain_len: usize) -> TaskPlan {
    let mut plan = TaskPlan::new(task_id, "benchmark payload");
    for i in 0..chain_len {
        let mut inputs = BTreeMap::new();
        if i == 0 {
            inputs.insert("text".to_string(), InputBinding::FromUser);
        } else {
            inputs.insert(
                "text".to_string(),
                InputBinding::FromNode {
                    node: format!("n{i}"),
                    output: "out".to_string(),
                },
            );
        }
        plan.push(PlanNode {
            id: format!("n{}", i + 1),
            agent: format!("step-{i}"),
            task: "pass along".into(),
            inputs,
            profile: CostProfile::new(0.01, 10, 1.0),
        });
    }
    plan
}

fn bench_chain_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("coordinator/chain");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for len in [1usize, 3, 8] {
        group.bench_with_input(BenchmarkId::new("agents", len), &len, |b, &len| {
            let (_factory, coordinator) = setup(len);
            let mut task = 0u64;
            b.iter(|| {
                task += 1;
                let plan = chain_plan(&format!("t{task}"), len);
                let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
                assert!(report.outcome.succeeded());
            });
        });
    }
    group.finish();
}

/// One coordinator over `branches` independent agents, each of which sleeps
/// for `work` before answering — a stand-in for real model latency. Every
/// branch gets its own agent so worker-pool sizing never serializes the plan.
fn fanout_setup(
    branches: usize,
    work: Duration,
    mode: SchedulerMode,
) -> (Arc<AgentFactory>, TaskCoordinator) {
    let store = StreamStore::new();
    store.monitor().set_enabled(false);
    let factory = Arc::new(AgentFactory::new(store.clone()));
    let registry = Arc::new(AgentRegistry::new());
    for i in 0..branches {
        let spec = AgentSpec::new(format!("branch-{i}"), "sleep then answer")
            .with_input(ParamSpec::required("text", "t", DataType::Text))
            .with_output(ParamSpec::required("out", "o", DataType::Text))
            .with_profile(CostProfile::new(0.01, 10, 1.0));
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, _: &AgentContext| {
                std::thread::sleep(work);
                Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
            },
        ));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn(&format!("branch-{i}"), "session:1").unwrap();
    }
    let coordinator = TaskCoordinator::new(store, "session:1", registry)
        .with_report_timeout(Duration::from_secs(10))
        .with_scheduler(mode);
    (factory, coordinator)
}

fn fanout_plan(task_id: &str, branches: usize) -> TaskPlan {
    let mut plan = TaskPlan::new(task_id, "benchmark payload");
    for i in 0..branches {
        let mut inputs = BTreeMap::new();
        inputs.insert("text".to_string(), InputBinding::FromUser);
        plan.push(PlanNode {
            id: format!("n{}", i + 1),
            agent: format!("branch-{i}"),
            task: "sleep then answer".into(),
            inputs,
            profile: CostProfile::new(0.01, 10, 1.0),
        });
    }
    plan
}

fn bench_fanout_schedulers(c: &mut Criterion) {
    // The acceptance benchmark: an 8-way fan-out of 2 ms agents must run at
    // least 2x faster under the ready-set scheduler than one at a time.
    let mut group = c.benchmark_group("coordinator/fanout8");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for (label, mode) in [
        ("sequential", SchedulerMode::Sequential),
        ("parallel", SchedulerMode::Parallel { max_in_flight: 0 }),
    ] {
        group.bench_function(label, |b| {
            let (_factory, coordinator) = fanout_setup(8, Duration::from_millis(2), mode);
            let mut task = 0u64;
            b.iter(|| {
                task += 1;
                let plan = fanout_plan(&format!("f{task}"), 8);
                let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
                assert!(report.outcome.succeeded());
            });
        });
    }
    group.finish();
}

fn bench_budget_tracking_overhead(c: &mut Criterion) {
    // The same single-agent task with and without constraints: the delta is
    // the cost of budget checks.
    let mut group = c.benchmark_group("coordinator/budget");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for (label, constraints) in [
        ("unconstrained", QosConstraints::none()),
        (
            "constrained",
            QosConstraints::none()
                .with_max_cost(1e9)
                .with_max_latency_micros(u64::MAX / 2)
                .with_min_accuracy(0.0),
        ),
    ] {
        group.bench_function(label, |b| {
            let (_factory, coordinator) = setup(1);
            let mut task = 0u64;
            b.iter(|| {
                task += 1;
                let plan = chain_plan(&format!("b{task}"), 1);
                coordinator.execute(&plan, constraints).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chain_execution,
    bench_fanout_schedulers,
    bench_budget_tracking_overhead
);
criterion_main!(benches);
