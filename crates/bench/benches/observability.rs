//! B10 — observability overhead: the same coordinator chain with the
//! instrumentation layer disarmed (default no-op handles) and fully armed
//! (sim-clock spans + metrics).
//!
//! The acceptance claim is that the disarmed path costs <5% over the
//! pre-instrumentation baseline: every hot-path touchpoint is one `Option`
//! check or one relaxed atomic, so `observability/chain3/disarmed` should be
//! statistically indistinguishable from `coordinator/chain` at the same
//! length.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

use blueprint_core::agents::{
    AgentContext, AgentFactory, AgentSpec, CostProfile, DataType, FnProcessor, Inputs, Outputs,
    ParamSpec, Processor,
};
use blueprint_core::coordinator::TaskCoordinator;
use blueprint_core::observability::Observability;
use blueprint_core::optimizer::QosConstraints;
use blueprint_core::planner::{InputBinding, PlanNode, TaskPlan};
use blueprint_core::registry::AgentRegistry;
use blueprint_core::streams::StreamStore;

const CHAIN: usize = 3;

fn setup(armed: bool) -> (Arc<AgentFactory>, TaskCoordinator, Observability) {
    let store = StreamStore::new();
    store.monitor().set_enabled(false);
    let factory = Arc::new(AgentFactory::new(store.clone()));
    let registry = Arc::new(AgentRegistry::new());
    let obs = if armed {
        Observability::armed(store.clock().clone())
    } else {
        Observability::disarmed()
    };
    if armed {
        store.set_metrics(&obs.metrics);
        factory.set_observability(obs.clone());
    }
    for i in 0..CHAIN {
        let spec = AgentSpec::new(format!("step-{i}"), "pass the text along")
            .with_input(ParamSpec::required("text", "t", DataType::Text))
            .with_output(ParamSpec::required("out", "o", DataType::Text))
            .with_profile(CostProfile::new(0.01, 10, 1.0));
        let proc: Arc<dyn Processor> =
            Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
                Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
            }));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn(&format!("step-{i}"), "session:1").unwrap();
    }
    let mut coordinator = TaskCoordinator::new(store, "session:1", registry)
        .with_report_timeout(Duration::from_secs(10));
    if armed {
        coordinator = coordinator.with_observability(obs.clone());
    }
    (factory, coordinator, obs)
}

fn chain_plan(task_id: &str) -> TaskPlan {
    let mut plan = TaskPlan::new(task_id, "benchmark payload");
    for i in 0..CHAIN {
        let mut inputs = BTreeMap::new();
        if i == 0 {
            inputs.insert("text".to_string(), InputBinding::FromUser);
        } else {
            inputs.insert(
                "text".to_string(),
                InputBinding::FromNode {
                    node: format!("n{i}"),
                    output: "out".to_string(),
                },
            );
        }
        plan.push(PlanNode {
            id: format!("n{}", i + 1),
            agent: format!("step-{i}"),
            task: "pass along".into(),
            inputs,
            profile: CostProfile::new(0.01, 10, 1.0),
        });
    }
    plan
}

fn bench_disarmed_vs_armed(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability/chain3");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("disarmed", |b| {
        let (_factory, coordinator, _obs) = setup(false);
        let mut task = 0u64;
        b.iter(|| {
            task += 1;
            let plan = chain_plan(&format!("t{task}"));
            let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
            assert!(report.outcome.succeeded());
        });
    });

    group.bench_function("armed", |b| {
        let (_factory, coordinator, obs) = setup(true);
        let mut task = 0u64;
        b.iter(|| {
            task += 1;
            let plan = chain_plan(&format!("t{task}"));
            let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
            assert!(report.outcome.succeeded());
            // Drain the span buffer so the armed run measures recording, not
            // an ever-growing backlog.
            obs.tracer.clear();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_disarmed_vs_armed);
criterion_main!(benches);
