//! B11 — multi-session serving: a wave of concurrent sessions through the
//! session router + shared agent pool, dispatch parallelism 1 (sequential
//! baseline) vs 8. Complements `--bin loadgen`, which sweeps 1–256 sessions
//! and records `BENCH_serving.json`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;

use blueprint_core::agents::{
    AgentContext, AgentSpec, CostProfile, DataType, Deployment, FnProcessor, Inputs, Outputs,
    ParamSpec, Processor,
};
use blueprint_core::planner::{InputBinding, PlanNode, TaskPlan};
use blueprint_core::Blueprint;

const SESSIONS: usize = 16;
const TASKS_PER_SESSION: usize = 2;
const STAGES: [&str; 2] = ["translate", "execute"];
const THINK: Duration = Duration::from_millis(2);

/// Serving-enabled blueprint with a 2-stage chain of sleeping agents.
fn serving_blueprint(max_in_flight: usize) -> Blueprint {
    let bp = Blueprint::builder()
        .with_serving(SESSIONS, max_in_flight)
        .build()
        .unwrap();
    bp.store().monitor().set_enabled(false);
    for name in STAGES {
        let spec = AgentSpec::new(name, "sleep then answer")
            .with_input(ParamSpec::required("text", "t", DataType::Text))
            .with_output(ParamSpec::required("out", "o", DataType::Text))
            .with_profile(CostProfile::new(0.01, 2_000, 1.0))
            .with_deployment(Deployment {
                workers: 16,
                ..Deployment::default()
            });
        let proc: Arc<dyn Processor> =
            Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
                std::thread::sleep(THINK);
                Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
            }));
        bp.factory().register(spec.clone(), proc).unwrap();
        bp.agent_registry().register(spec).unwrap();
    }
    bp
}

fn chain_plan(task_id: String) -> TaskPlan {
    let mut plan = TaskPlan::new(task_id, "benchmark payload");
    for (i, agent) in STAGES.iter().enumerate() {
        let mut inputs = BTreeMap::new();
        let binding = if i == 0 {
            InputBinding::FromUser
        } else {
            InputBinding::FromNode {
                node: format!("n{i}"),
                output: "out".into(),
            }
        };
        inputs.insert("text".to_string(), binding);
        plan.push(PlanNode {
            id: format!("n{}", i + 1),
            agent: (*agent).into(),
            task: "sleep then answer".into(),
            inputs,
            profile: CostProfile::new(0.01, 2_000, 1.0),
        });
    }
    plan
}

fn bench_session_wave(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving/wave16");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    for (label, in_flight) in [("sequential", 1usize), ("in-flight-8", 8)] {
        group.bench_function(label, |b| {
            let bp = serving_blueprint(in_flight);
            let serving = bp.serving().unwrap();
            let mut wave = 0u64;
            b.iter(|| {
                wave += 1;
                let ids: Vec<u64> = (0..SESSIONS)
                    .map(|_| serving.open_session().unwrap())
                    .collect();
                for turn in 0..TASKS_PER_SESSION {
                    for (s, &id) in ids.iter().enumerate() {
                        serving
                            .submit_plan(id, chain_plan(format!("w{wave}s{s}t{turn}")))
                            .unwrap();
                    }
                }
                serving.await_idle();
                for &id in &ids {
                    let report = serving.finish(id).unwrap();
                    assert_eq!(report.completions.len(), TASKS_PER_SESSION);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session_wave);
criterion_main!(benches);
