//! Fig 10 — the flow initiated from conversation, step by step:
//!
//! 1. user text enters a stream;
//! 2. Intent Classifier (IC) emits the identified intent;
//! 3. Agentic Employer (AE) tags the query `NLQ`; NL2Q produces SQL;
//! 4. the SQL agent (QE) executes the query;
//! 5. the Query Summarizer (QS) explains the results.
//!
//! Steps 3–5 chain automatically through stream tags (decentralized
//! execution — no coordinator involved).
//!
//! Run with: `cargo run -p blueprint-bench --bin fig10_conv_flow`

use std::time::Duration;

use blueprint_bench::{bench_blueprint, figure, write_artifact};
use blueprint_core::streams::{Selector, TagFilter};
use serde_json::json;

fn main() {
    figure("Fig 10", "Flow initiated from conversation");
    let bp = bench_blueprint();
    let session = bp.start_session().expect("session");
    bp.store().monitor().clear();

    let summaries = bp
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
        .expect("subscribe");

    let utterance = "How many applicants per city?";
    println!("\nStep 1: user types \"{utterance}\"");
    session.say(utterance).expect("say");

    let summary = summaries
        .recv_timeout(Duration::from_secs(10))
        .expect("summary");
    println!(
        "Final: QS produced → {}\n",
        summary.payload.as_str().unwrap_or("?")
    );

    println!("sequence (from the flow monitor):");
    let trace = bp.store().monitor().render_sequence();
    for line in trace.lines() {
        if [
            "user",
            "intent-classifier",
            "agentic-employer",
            "nl2q",
            "sql-executor",
            "query-summarizer",
        ]
        .iter()
        .any(|p| line.contains(p))
        {
            println!("{line}");
        }
    }

    // Assert the paper's ordering: U → IC → AE → NL2Q → QE → QS.
    let participants = bp.store().monitor().participants();
    let pos = |name: &str| participants.iter().position(|p| p == name);
    let order = [
        pos("user").expect("user"),
        pos("intent-classifier").expect("IC"),
        pos("agentic-employer").expect("AE"),
        pos("nl2q").expect("NL2Q"),
        pos("sql-executor").expect("QE"),
        pos("query-summarizer").expect("QS"),
    ];
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "tag chain order holds"
    );
    println!("\n✓ participant order U → IC → AE → NL2Q → QE → QS reproduced");
    println!("✓ no coordinator participated: fully decentralized via tags");

    write_artifact(
        "fig10_conv_flow",
        &json!({
            "figure": "fig10",
            "utterance": utterance,
            "summary": summary.payload.as_str().unwrap_or("?"),
            "participants": participants,
            "ordering": "user → intent-classifier → agentic-employer → nl2q → sql-executor → query-summarizer",
            "sequence": bp.store().monitor().render_sequence(),
        }),
    );
}
