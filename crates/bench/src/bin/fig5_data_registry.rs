//! Fig 5 — the data registry: multi-granularity, multi-modal enterprise
//! assets with discovery over learned representations.
//!
//! Run with: `cargo run -p blueprint-bench --bin fig5_data_registry`

use blueprint_bench::{bench_blueprint, figure, write_artifact};
use serde_json::json;

fn main() {
    figure(
        "Fig 5",
        "Data registry: hierarchy, modalities, and discovery",
    );
    let bp = bench_blueprint();
    let registry = bp.data_registry();

    println!("\nasset hierarchy:");
    fn tree(registry: &blueprint_core::registry::DataRegistry, root: &str, indent: usize) {
        let asset = registry.get(root).expect("asset exists");
        println!(
            "{}{} [{:?}/{:?}] {}",
            "  ".repeat(indent),
            asset.name,
            asset.level,
            asset.modality,
            if asset.indices.is_empty() {
                String::new()
            } else {
                format!("indices: {}", asset.indices.join(", "))
            }
        );
        for child in registry.children(root) {
            tree(registry, &child.name, indent + 1);
        }
    }
    for root in registry
        .list()
        .iter()
        .filter(|n| registry.get(n).map(|a| a.parent.is_none()).unwrap_or(false))
    {
        tree(registry, root, 1);
    }

    println!("\ndiscovery queries:");
    let mut discoveries = Vec::new();
    for (query, modality) in [
        ("job postings with title and city", None),
        ("resumes and skills of job seekers", None),
        (
            "relationships between job titles",
            Some(blueprint_core::registry::DataModality::Graph),
        ),
        (
            "cities in a region from world knowledge",
            Some(blueprint_core::registry::DataModality::Parametric),
        ),
    ] {
        let hits = registry.discover(query, modality, 3);
        let top: Vec<String> = hits
            .iter()
            .map(|h| format!("{} ({:.2})", h.name, h.score))
            .collect();
        println!("  \"{query}\" → {}", top.join(", "));
        discoveries.push(json!({ "query": query, "hits": top }));
    }

    println!("\nschema of the top asset for the jobs query:");
    let top = &registry.discover("job postings with title and city", None, 1)[0];
    let asset = registry.get(&top.name).expect("asset exists");
    for f in &asset.schema {
        println!("  {}: {} — {}", f.name, f.type_name, f.description);
    }
    println!("  connection: {}", asset.connection);
    println!("  rows: {}", asset.stats.rows);

    write_artifact(
        "fig5_data_registry",
        &json!({
            "figure": "fig5",
            "assets": registry.list(),
            "discoveries": discoveries,
            "top_jobs_asset": { "name": asset.name, "rows": asset.stats.rows },
        }),
    );
}
