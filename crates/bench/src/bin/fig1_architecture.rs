//! Fig 1 — the blueprint architecture: every component booted, wired, and
//! enumerated, with the registries as the enterprise touch points.
//!
//! Run with: `cargo run -p blueprint-bench --bin fig1_architecture`

use blueprint_bench::{bench_blueprint, figure, write_artifact};
use serde_json::json;

fn main() {
    figure(
        "Fig 1",
        "Blueprint architecture: components and touch points",
    );
    let bp = bench_blueprint();

    println!("\nstreams database (orchestration substrate, §V-A)");
    let stats = bp.store().stats();
    println!(
        "  streams={} messages={}",
        stats.streams_created, stats.messages_published
    );

    println!("\nagent registry (touch point: models & APIs, §V-C)");
    for name in bp.agent_registry().list() {
        let spec = bp.agent_registry().get_spec(&name).expect("registered");
        println!(
            "  {:<18} [{:?}] in={} out={} cost/call={:.2}",
            name,
            spec.deployment.kind,
            spec.inputs.len(),
            spec.outputs.len(),
            spec.profile.cost_per_call
        );
    }

    println!("\ndata registry (touch point: enterprise data, §V-D)");
    for name in bp.data_registry().list() {
        let asset = bp.data_registry().get(&name).expect("registered");
        println!(
            "  {:<16} level={:?} modality={:?} rows={}",
            name, asset.level, asset.modality, asset.stats.rows
        );
    }

    println!("\nplanners and optimizer (§V-F, §V-G)");
    println!("  task planner over {} agents", bp.agent_registry().len());
    println!(
        "  data planner over sources: {}",
        bp.data_planner().source_names().join(", ")
    );

    println!("\nsession + coordinator (§V-E, §V-H)");
    let session = bp.start_session().expect("session starts");
    println!("  session scope: {}", session.session().scope());
    println!(
        "  participants : {}",
        session.session().participants().join(", ")
    );
    println!(
        "  containers   : {} instances running",
        bp.factory().stats().running_instances
    );

    write_artifact(
        "fig1_architecture",
        &json!({
            "figure": "fig1",
            "agents": bp.agent_registry().list(),
            "data_assets": bp.data_registry().list(),
            "data_sources": bp.data_planner().source_names(),
            "session_scope": session.session().scope(),
            "participants": session.session().participants(),
            "running_instances": bp.factory().stats().running_instances,
        }),
    );
}
