//! Fig 9 — the flow initiated from the UI, step by step:
//!
//! 1. user (U) clicks a job id → event object on the form's event stream;
//! 2. Agentic Employer (AE) emits the job id and a plan to invoke the
//!    Summarizer (S);
//! 3. Task Coordinator (TC) unrolls the plan into an `execute-agent`
//!    control message;
//! 4. Summarizer executes and produces the summary.
//!
//! Run with: `cargo run -p blueprint-bench --bin fig9_ui_flow`

use std::time::Duration;

use blueprint_bench::{bench_blueprint, figure, write_artifact};
use blueprint_core::agents::UiForm;
use blueprint_core::streams::{Selector, TagFilter};
use serde_json::json;

fn main() {
    figure("Fig 9", "Flow initiated from UI");
    let bp = bench_blueprint();
    let session = bp.start_session().expect("session");
    bp.store().monitor().clear(); // trace only this flow

    let summaries = bp
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
        .expect("subscribe");

    let form = UiForm::new("applicants", "Applicants by job");
    println!("\nStep 1: U clicks job id 3 → ui-event message");
    session.click(&form, "job", json!(3)).expect("click");

    let summary = summaries
        .recv_timeout(Duration::from_secs(10))
        .expect("summary");
    println!(
        "Final: S produced → {}\n",
        summary.payload.as_str().unwrap_or("?")
    );

    println!("sequence (from the flow monitor):");
    let trace = bp.store().monitor().render_sequence();
    // Keep the lines involving the Fig 9 participants.
    for line in trace.lines() {
        if ["user", "agentic-employer", "task-coordinator", "summarizer"]
            .iter()
            .any(|p| line.contains(p))
        {
            println!("{line}");
        }
    }

    // Assert the paper's ordering: U → AE → TC → S.
    let participants = bp.store().monitor().participants();
    let pos = |name: &str| participants.iter().position(|p| p == name);
    let (u, ae, tc, s) = (
        pos("user").expect("user in trace"),
        pos("agentic-employer").expect("AE in trace"),
        pos("task-coordinator").expect("TC in trace"),
        pos("summarizer").expect("S in trace"),
    );
    assert!(u < ae && ae < tc && tc < s, "U→AE→TC→S ordering holds");
    println!("\n✓ participant order U → AE → TC → S reproduced");

    write_artifact(
        "fig9_ui_flow",
        &json!({
            "figure": "fig9",
            "summary": summary.payload.as_str().unwrap_or("?"),
            "participants": participants,
            "ordering": "user → agentic-employer → task-coordinator → summarizer",
            "sequence": bp.store().monitor().render_sequence(),
        }),
    );
}
