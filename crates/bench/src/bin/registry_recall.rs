//! A3 — registry search recall: hybrid (vector+keyword) search vs
//! keyword-only on paraphrased task descriptions, plus the effect of
//! usage-log boosting.
//!
//! Run with: `cargo run -p blueprint-bench --bin registry_recall`

use blueprint_bench::{bench_blueprint, figure};
use blueprint_core::registry::{embed_text, keyword_score};

/// Paraphrased queries with their intended agent.
const PROBES: [(&str, &str); 8] = [
    ("pair candidates with suitable openings", "job-matcher"),
    ("match the seeker profile to job listings", "job-matcher"),
    ("turn a question into SQL", "nl2q"),
    (
        "translate natural language question to a database query",
        "nl2q",
    ),
    ("explain what the query returned", "query-summarizer"),
    (
        "gather the user's background details via a form",
        "profiler",
    ),
    ("run this SQL against the warehouse", "sql-executor"),
    ("show the results to the user", "presenter"),
];

fn main() {
    figure("A3", "Registry search recall: hybrid vs keyword-only");
    let bp = bench_blueprint();
    let registry = bp.agent_registry();

    let mut hybrid_hits = 0usize;
    let mut keyword_hits = 0usize;

    println!(
        "\n{:<56} {:<18} {:<18}",
        "paraphrased query", "hybrid top-1", "keyword top-1"
    );
    println!("{}", "-".repeat(94));
    for (query, expected) in PROBES {
        // Hybrid: the registry's production search.
        let hybrid_top = registry
            .search(query, 1)
            .first()
            .map(|h| h.name.clone())
            .unwrap_or_default();

        // Keyword-only baseline.
        let mut best: Option<(f32, String)> = None;
        for name in registry.list() {
            let spec = registry.get_spec(&name).expect("registered");
            let score = keyword_score(query, &name, &spec.description);
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                best = Some((score, name));
            }
        }
        let keyword_top = best.map(|(_, n)| n).unwrap_or_default();

        if hybrid_top == expected {
            hybrid_hits += 1;
        }
        if keyword_top == expected {
            keyword_hits += 1;
        }
        println!(
            "{:<56} {:<18} {:<18}",
            query,
            format!(
                "{hybrid_top}{}",
                if hybrid_top == expected { " ✓" } else { "" }
            ),
            format!(
                "{keyword_top}{}",
                if keyword_top == expected { " ✓" } else { "" }
            ),
        );
    }
    println!(
        "\nrecall@1: hybrid {}/{}  keyword-only {}/{}",
        hybrid_hits,
        PROBES.len(),
        keyword_hits,
        PROBES.len()
    );

    figure("A3b", "Usage-log boosting closes paraphrase gaps");
    let probe = "pair candidates with suitable openings";
    let before = registry.search(probe, 1)[0].name.clone();
    for _ in 0..6 {
        registry.record_usage("job-matcher", probe).expect("boost");
    }
    let after = registry.search(probe, 1)[0].name.clone();
    println!("\nprobe: \"{probe}\"");
    println!("  before boosting: {before}");
    println!("  after 6 usages routed to job-matcher: {after}");

    // Embedding sanity: the paraphrase is closer to the matcher than to an
    // unrelated agent even before boosting.
    let q = embed_text(probe);
    let matcher =
        embed_text("match the job seeker profile against available job listings and rank them");
    let sqlexec = embed_text("execute a SQL query against the HR database");
    println!(
        "  cosine(query, job-matcher desc) = {:.3} vs cosine(query, sql-executor desc) = {:.3}",
        q.cosine(&matcher),
        q.cosine(&sqlexec)
    );
}
