//! Fig 3 — agent anatomy: triggered by data/control messages from incoming
//! streams, the processor runs and produces outputs to output streams.
//!
//! Run with: `cargo run -p blueprint-bench --bin fig3_agent_anatomy`

use std::sync::Arc;
use std::time::Duration;

use blueprint_bench::{figure, write_artifact};
use blueprint_core::agents::{
    AgentContext, AgentHost, AgentSpec, DataType, FnProcessor, Inputs, Outputs, ParamSpec,
    Processor, StreamBinding,
};
use blueprint_core::streams::{Message, Selector, StreamStore, TagFilter};
use serde_json::json;

fn main() {
    figure(
        "Fig 3",
        "Agents: incoming streams → processor() → output streams",
    );
    let store = StreamStore::new();

    // An agent with one bound input parameter and one output parameter.
    let spec = AgentSpec::new("skill-extractor", "extract skills from resume text")
        .with_input(ParamSpec::required("resume", "resume text", DataType::Text))
        .with_output(ParamSpec::required(
            "skills",
            "extracted skills",
            DataType::List,
        ))
        .with_binding(StreamBinding::tagged("resume", ["resume"]))
        .with_output_tag("skills");
    println!("\nagent spec:");
    println!("  name       : {}", spec.name);
    println!(
        "  inputs     : {:?}",
        spec.inputs.iter().map(|p| &p.name).collect::<Vec<_>>()
    );
    println!(
        "  outputs    : {:?}",
        spec.outputs.iter().map(|p| &p.name).collect::<Vec<_>>()
    );
    println!("  trigger    : messages tagged [resume] on any stream");

    let proc: Arc<dyn Processor> =
        Arc::new(FnProcessor::new(|inputs: &Inputs, ctx: &AgentContext| {
            let text = inputs.require_str("resume")?;
            ctx.charge_cost(0.01);
            ctx.charge_latency_micros(500);
            let skills: Vec<&str> = ["python", "sql", "rust"]
                .into_iter()
                .filter(|s| text.to_lowercase().contains(*s))
                .collect();
            Ok(Outputs::new().with("skills", json!(skills)))
        }));
    let _host = AgentHost::start(spec, proc, store.clone(), "session:1").expect("host starts");

    let out_sub = store
        .subscribe(Selector::AllStreams, TagFilter::any_of(["skills"]))
        .expect("subscribe");

    println!("\npublishing data message onto session:1:resumes (tagged resume)…");
    store
        .publish_to(
            "session:1:resumes",
            ["resumes"],
            Message::data("Senior engineer. Python and SQL daily; learning Rust.")
                .with_tag("resume")
                .from_producer("user"),
        )
        .expect("publish");

    let out = out_sub
        .recv_timeout(Duration::from_secs(5))
        .expect("agent fired");
    println!("agent fired: skills = {}", out.payload);
    println!("output stream: session:1:skill-extractor:out");

    println!("\nrecorded flow:");
    print!("{}", store.monitor().render_sequence());

    write_artifact(
        "fig3_agent_anatomy",
        &json!({
            "figure": "fig3",
            "agent": "skill-extractor",
            "trigger": "messages tagged [resume] on any stream",
            "skills": out.payload,
            "flow": store.monitor().render_sequence(),
        }),
    );
}
