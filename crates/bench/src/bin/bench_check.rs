//! Bench-regression gate: compares freshly generated bench reports against
//! the committed baselines and fails (exit 1) when the watched medians
//! regress by more than the tolerance.
//!
//! Two reports are gated:
//!
//! * the coordinator report (`BENCH_coordinator.json`): `parallel` and
//!   `memoized` medians of both sections;
//! * the serving report (`BENCH_serving.json`, `--serving <candidate>`):
//!   the serving arm's p50/p99 task latencies at the 64-session sweep point.
//!
//! Usage: `bench_check <candidate.json> [baseline.json]
//!                     [--serving <candidate.json> [--serving-baseline <baseline.json>]]`
//! (or `make bench-check`, which regenerates both candidates first).
//!
//! Absolute microseconds are not comparable across machines, so each
//! section's candidate numbers are first normalized by the ratio of the
//! sequential medians (candidate vs baseline): the sequential arm has no
//! scheduler, cache, or router concurrency in play, making it a pure
//! machine-speed probe (for the serving report the sequential p50 is a
//! deterministic simulated-ledger value, so its ratio doubles as a sanity
//! check that the workload itself did not change shape). The gate then
//! checks the *normalized* medians, i.e. "did the speedup the feature buys
//! shrink", not "is this runner slower".
//!
//! Sub-millisecond medians (the memoized fan-out replays in ~250µs) jitter
//! by far more than 25% run to run on a shared machine, so the relative
//! tolerance alone would flap. A median only fails when it is BOTH beyond
//! the relative tolerance AND more than an absolute slack worse — real
//! regressions here (a scheduler serializing, a cache stopping to hit, a
//! router convoying sessions) cost milliseconds, well past both gates.
//!
//! `BENCH_CHECK_TOLERANCE` overrides the allowed relative regression
//! (default 0.25 = 25%); `BENCH_CHECK_SLACK_US` overrides the absolute
//! slack in microseconds (default 500).

use std::process::ExitCode;

use serde_json::Value;

const DEFAULT_TOLERANCE: f64 = 0.25;
const DEFAULT_SLACK_US: f64 = 500.0;

/// The coordinator medians the gate watches, as (section, key) paths.
const WATCHED: [(&str, &str); 4] = [
    ("fanout", "parallel_us"),
    ("fanout", "memoized_repeat_us"),
    ("running_example", "parallel_us"),
    ("running_example", "memoized_repeat_us"),
];

/// The serving sweep point the gate watches.
const SERVING_SESSIONS: u64 = 64;

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn median(doc: &Value, section: &str, key: &str) -> u64 {
    doc[section][key]
        .as_u64()
        .unwrap_or_else(|| panic!("missing {section}.{key} in bench report"))
}

/// One watched median: candidate vs baseline after machine-speed
/// normalization. Returns true when the median regressed past both gates.
fn check(label: &str, base: f64, cand: f64, scale: f64, tolerance: f64, slack_us: f64) -> bool {
    let normalized = cand / scale.max(f64::MIN_POSITIVE);
    let regression = normalized / base.max(1.0) - 1.0;
    let failed = regression > tolerance && normalized - base > slack_us;
    let verdict = if failed { "FAIL" } else { "ok" };
    println!(
        "  {label:<20} {base:>8.0}µs -> {cand:>8.0}µs (normalized {normalized:>8.0}µs, \
         {regression:+.1}%) {verdict}",
        regression = regression * 100.0
    );
    failed
}

/// Gates the coordinator report's parallel/memoized medians.
fn check_coordinator(baseline: &Value, candidate: &Value, tolerance: f64, slack_us: f64) -> bool {
    let mut failed = false;
    for section in ["fanout", "running_example"] {
        let base_seq = median(baseline, section, "sequential_us");
        let cand_seq = median(candidate, section, "sequential_us");
        // Machine-speed normalizer: how much slower/faster this runner walks
        // the same plan sequentially.
        let scale = cand_seq as f64 / base_seq.max(1) as f64;
        println!("{section}: sequential {base_seq}µs -> {cand_seq}µs (scale {scale:.2}x)");
        for (s, key) in WATCHED.iter().filter(|(s, _)| *s == section) {
            let base = median(baseline, s, key) as f64;
            let cand = median(candidate, s, key) as f64;
            failed |= check(key, base, cand, scale, tolerance, slack_us);
        }
    }
    failed
}

/// Finds the sweep point for `sessions` in a serving report.
fn sweep_point(doc: &Value, sessions: u64) -> &Value {
    doc["sweep"]
        .as_array()
        .unwrap_or_else(|| panic!("serving report has no sweep array"))
        .iter()
        .find(|p| p["sessions"].as_u64() == Some(sessions))
        .unwrap_or_else(|| panic!("serving report has no {sessions}-session sweep point"))
}

/// Gates the serving report's p50/p99 task latencies at the 64-session
/// point. The latencies come off the simulated ledger: under concurrency an
/// invocation absorbs siblings' clock charges, so the tail reflects router
/// contention — exactly the medians a convoying regression would move.
fn check_serving(baseline: &Value, candidate: &Value, tolerance: f64, slack_us: f64) -> bool {
    let base_point = sweep_point(baseline, SERVING_SESSIONS);
    let cand_point = sweep_point(candidate, SERVING_SESSIONS);
    let base_seq = median(base_point, "sequential", "p50_us");
    let cand_seq = median(cand_point, "sequential", "p50_us");
    let scale = cand_seq as f64 / base_seq.max(1) as f64;
    println!(
        "serving @{SERVING_SESSIONS} sessions: sequential p50 {base_seq}µs -> {cand_seq}µs \
         (scale {scale:.2}x)"
    );
    let mut failed = false;
    for key in ["p50_us", "p99_us"] {
        let base = median(base_point, "serving", key) as f64;
        let cand = median(cand_point, "serving", key) as f64;
        failed |= check(key, base, cand, scale, tolerance, slack_us);
    }
    failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let positional: Vec<&String> = {
        // Skip flag names and their values to recover the positional args.
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if args[i].starts_with("--") {
                i += 2;
            } else {
                out.push(&args[i]);
                i += 1;
            }
        }
        out
    };
    let candidate_path = positional
        .first()
        .map(|s| s.to_string())
        .expect("usage: bench_check <candidate.json> [baseline.json] [--serving <candidate.json>]");
    let baseline_path = positional.get(1).map(|s| s.to_string()).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coordinator.json").to_string()
    });
    let serving_candidate_path = flag("--serving");
    let serving_baseline_path = flag("--serving-baseline").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").to_string()
    });
    let tolerance = std::env::var("BENCH_CHECK_TOLERANCE")
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE);
    let slack_us = std::env::var("BENCH_CHECK_SLACK_US")
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(DEFAULT_SLACK_US);

    println!("baseline : {baseline_path}");
    println!("candidate: {candidate_path}");
    if let Some(p) = &serving_candidate_path {
        println!("serving baseline : {serving_baseline_path}");
        println!("serving candidate: {p}");
    }
    println!(
        "tolerance: {:.0}% normalized regression and at least {slack_us:.0}µs worse\n",
        tolerance * 100.0
    );

    let mut failed = check_coordinator(
        &load(&baseline_path),
        &load(&candidate_path),
        tolerance,
        slack_us,
    );
    if let Some(serving_path) = serving_candidate_path {
        failed |= check_serving(
            &load(&serving_baseline_path),
            &load(&serving_path),
            tolerance,
            slack_us,
        );
    }

    if failed {
        eprintln!("\nbench-check: normalized medians regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("\nbench-check: within tolerance");
        ExitCode::SUCCESS
    }
}
