//! Bench-regression gate: compares a freshly generated coordinator bench
//! report against the committed `BENCH_coordinator.json` baseline and fails
//! (exit 1) when the `parallel` or `memoized` medians regress by more than
//! the tolerance.
//!
//! Usage: `bench_check <candidate.json> [baseline.json]`
//! (or `make bench-check`, which regenerates the candidate first).
//!
//! Absolute microseconds are not comparable across machines, so each
//! section's candidate numbers are first normalized by the ratio of the
//! sequential medians (candidate vs baseline): the sequential walk has no
//! scheduler or cache in play, making it a pure machine-speed probe. The
//! gate then checks the *normalized* parallel and memoized medians, i.e.
//! "did the speedup the feature buys shrink", not "is this runner slower".
//!
//! Sub-millisecond medians (the memoized fan-out replays in ~250µs) jitter
//! by far more than 25% run to run on a shared machine, so the relative
//! tolerance alone would flap. A median only fails when it is BOTH beyond
//! the relative tolerance AND more than an absolute slack worse — real
//! regressions here (a scheduler serializing, a cache stopping to hit) cost
//! milliseconds, well past both gates.
//!
//! `BENCH_CHECK_TOLERANCE` overrides the allowed relative regression
//! (default 0.25 = 25%); `BENCH_CHECK_SLACK_US` overrides the absolute
//! slack in microseconds (default 500).

use std::process::ExitCode;

use serde_json::Value;

const DEFAULT_TOLERANCE: f64 = 0.25;
const DEFAULT_SLACK_US: f64 = 500.0;

/// The medians the gate watches, as (section, key) paths.
const WATCHED: [(&str, &str); 4] = [
    ("fanout", "parallel_us"),
    ("fanout", "memoized_repeat_us"),
    ("running_example", "parallel_us"),
    ("running_example", "memoized_repeat_us"),
];

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn median(doc: &Value, section: &str, key: &str) -> u64 {
    doc[section][key]
        .as_u64()
        .unwrap_or_else(|| panic!("missing {section}.{key} in bench report"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let candidate_path = args
        .next()
        .expect("usage: bench_check <candidate.json> [baseline.json]");
    let baseline_path = args.next().unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coordinator.json").to_string()
    });
    let tolerance = std::env::var("BENCH_CHECK_TOLERANCE")
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE);
    let slack_us = std::env::var("BENCH_CHECK_SLACK_US")
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(DEFAULT_SLACK_US);

    let baseline = load(&baseline_path);
    let candidate = load(&candidate_path);
    println!("baseline : {baseline_path}");
    println!("candidate: {candidate_path}");
    println!(
        "tolerance: {:.0}% normalized regression and at least {slack_us:.0}µs worse\n",
        tolerance * 100.0
    );

    let mut failed = false;
    for section in ["fanout", "running_example"] {
        let base_seq = median(&baseline, section, "sequential_us");
        let cand_seq = median(&candidate, section, "sequential_us");
        // Machine-speed normalizer: how much slower/faster this runner walks
        // the same plan sequentially.
        let scale = cand_seq as f64 / base_seq.max(1) as f64;
        println!("{section}: sequential {base_seq}µs -> {cand_seq}µs (scale {scale:.2}x)");
        for (s, key) in WATCHED.iter().filter(|(s, _)| *s == section) {
            let base = median(&baseline, s, key) as f64;
            let cand = median(&candidate, s, key) as f64;
            let normalized = cand / scale.max(f64::MIN_POSITIVE);
            let regression = normalized / base.max(1.0) - 1.0;
            let verdict = if regression > tolerance && normalized - base > slack_us {
                failed = true;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "  {key:<20} {base:>8.0}µs -> {cand:>8.0}µs (normalized {normalized:>8.0}µs, \
                 {regression:+.1}%) {verdict}",
                regression = regression * 100.0
            );
        }
    }

    if failed {
        eprintln!("\nbench-check: normalized medians regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("\nbench-check: within tolerance");
        ExitCode::SUCCESS
    }
}
