//! Deterministic multi-session serving load generator: replays a seeded mix
//! of chat turns, NL2SQL queries, and extraction flows across 1–256
//! simulated sessions through the [`ServingRuntime`], and compares task
//! throughput against a sequential baseline (the same pool and router with a
//! single dispatch worker). Results land in `BENCH_serving.json` at the repo
//! root so future PRs can diff the numbers.
//!
//! Run with: `cargo run --release -p blueprint-bench --bin loadgen`
//! (or `make serving-bench`). Flags (all optional):
//!
//! ```text
//! loadgen [--sessions 1,8,64] [--tasks 3] [--in-flight 8] [--seed 42]
//! ```
//!
//! Every flow is a chain plan over synthetic agents whose processors sleep a
//! fixed think-time (simulated model latency, as in `bench_json`'s fan-out),
//! so the serving speedup measures *overlapped waiting* — exactly what a
//! multi-session server buys — rather than CPU parallelism.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};

use blueprint_core::agents::{
    AgentContext, AgentSpec, CostProfile, DataType, Deployment, FnProcessor, Inputs, Outputs,
    ParamSpec, Processor,
};
use blueprint_core::planner::{InputBinding, PlanNode, TaskPlan};
use blueprint_core::{Blueprint, ServingRuntime};

const RUNS: usize = 7;

/// One stage of a flow: agent name + think-time the processor sleeps.
struct Stage {
    agent: &'static str,
    think_ms: u64,
}

/// The mixed workload: every task is one of these flows.
#[derive(Clone, Copy, Debug)]
enum Flow {
    /// Single conversational turn.
    Chat,
    /// Translate NL to SQL, then execute it.
    Nl2Sql,
    /// Extract spans, normalize entities, render a report.
    Extraction,
}

impl Flow {
    fn pick(rng: &mut StdRng) -> Flow {
        match rng.gen_range(0..3usize) {
            0 => Flow::Chat,
            1 => Flow::Nl2Sql,
            _ => Flow::Extraction,
        }
    }

    fn stages(self) -> &'static [Stage] {
        match self {
            Flow::Chat => &[Stage {
                agent: "chat-responder",
                think_ms: 3,
            }],
            Flow::Nl2Sql => &[
                Stage {
                    agent: "nl2sql-translator",
                    think_ms: 2,
                },
                Stage {
                    agent: "sql-executor",
                    think_ms: 2,
                },
            ],
            Flow::Extraction => &[
                Stage {
                    agent: "span-extractor",
                    think_ms: 1,
                },
                Stage {
                    agent: "entity-normalizer",
                    think_ms: 2,
                },
                Stage {
                    agent: "report-renderer",
                    think_ms: 1,
                },
            ],
        }
    }

    fn utterance(self, session: usize, turn: usize) -> String {
        match self {
            Flow::Chat => format!("s{session}t{turn}: how is my application going?"),
            Flow::Nl2Sql => format!("s{session}t{turn}: how many applicants per city?"),
            Flow::Extraction => {
                format!("s{session}t{turn}: looking for a data scientist position")
            }
        }
    }
}

const ALL_AGENTS: [Flow; 3] = [Flow::Chat, Flow::Nl2Sql, Flow::Extraction];

/// A bare blueprint carrying only the synthetic flow agents, serving-enabled.
fn loadgen_blueprint(max_sessions: usize, max_in_flight: usize, workers: usize) -> Blueprint {
    let bp = Blueprint::builder()
        .with_serving(max_sessions, max_in_flight)
        .with_metrics()
        .build()
        .expect("blueprint assembles");
    bp.store().monitor().set_enabled(false);
    for flow in ALL_AGENTS {
        for stage in flow.stages() {
            if bp.agent_registry().contains(stage.agent) {
                continue;
            }
            let spec = AgentSpec::new(stage.agent, "seeded load-generator stage")
                .with_input(ParamSpec::required("text", "t", DataType::Text))
                .with_output(ParamSpec::required("out", "o", DataType::Text))
                .with_profile(CostProfile::new(0.01, stage.think_ms * 1000, 1.0))
                .with_deployment(Deployment {
                    workers,
                    ..Deployment::default()
                });
            let think = Duration::from_millis(stage.think_ms);
            let name = stage.agent;
            let proc: std::sync::Arc<dyn Processor> = std::sync::Arc::new(FnProcessor::new(
                move |inputs: &Inputs, ctx: &AgentContext| {
                    std::thread::sleep(think);
                    ctx.charge_cost(0.01);
                    ctx.charge_latency_micros(think.as_micros() as u64);
                    Ok(Outputs::new().with(
                        "out",
                        json!(format!("{name}: {}", inputs.require_str("text")?)),
                    ))
                },
            ));
            bp.factory().register(spec.clone(), proc).unwrap();
            bp.agent_registry().register(spec).unwrap();
        }
    }
    bp
}

/// Builds the chain plan for one task of the workload.
fn flow_plan(flow: Flow, session: usize, turn: usize, run: usize) -> TaskPlan {
    let mut plan = TaskPlan::new(
        format!("r{run}s{session}t{turn}"),
        flow.utterance(session, turn),
    );
    let mut upstream: Option<String> = None;
    for (i, stage) in flow.stages().iter().enumerate() {
        let node_id = format!("n{}", i + 1);
        let mut inputs = BTreeMap::new();
        let binding = match &upstream {
            None => InputBinding::FromUser,
            Some(prev) => InputBinding::FromNode {
                node: prev.clone(),
                output: "out".into(),
            },
        };
        inputs.insert("text".to_string(), binding);
        plan.push(PlanNode {
            id: node_id.clone(),
            agent: stage.agent.into(),
            task: "seeded load-generator stage".into(),
            inputs,
            profile: CostProfile::new(0.01, stage.think_ms * 1000, 1.0),
        });
        upstream = Some(node_id);
    }
    plan
}

/// The full deterministic schedule for one sweep point: `flows[s][t]` is
/// session `s`'s `t`-th task. Derived only from the seed and the shape, so
/// the sequential and serving arms replay byte-identical workloads.
fn schedule(seed: u64, sessions: usize, tasks: usize) -> Vec<Vec<Flow>> {
    (0..sessions)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E37));
            (0..tasks).map(|_| Flow::pick(&mut rng)).collect()
        })
        .collect()
}

struct ArmStats {
    wall_us: u64,
    throughput_tps: f64,
    p50_us: u64,
    p99_us: u64,
    dispatches: u64,
    latency_records: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replays the schedule through a serving runtime with `max_in_flight`
/// dispatch workers and returns the median-run stats. `max_in_flight = 1` is
/// the sequential baseline: identical pool, identical router, no overlap.
fn run_arm(seed: u64, sessions: usize, tasks: usize, max_in_flight: usize) -> ArmStats {
    let flows = schedule(seed, sessions, tasks);
    let total_tasks = sessions * tasks;
    let mut walls: Vec<u64> = Vec::with_capacity(RUNS);
    let mut latencies: Vec<u64> = Vec::new();
    let mut dispatches = 0u64;
    let mut latency_records = 0u64;
    for run in 0..RUNS {
        // Agent-side capacity is held constant across arms (worker threads
        // sized to the *largest* arm) so only router concurrency varies.
        let bp = loadgen_blueprint(sessions, max_in_flight, 16);
        let serving: ServingRuntime = bp.serving().expect("serving configured");
        let ids: Vec<u64> = (0..sessions)
            .map(|_| serving.open_session().expect("admitted"))
            .collect();
        let start = Instant::now();
        // Interleaved submission: turn 0 of every session, then turn 1, ...
        // matching many concurrent conversations advancing together. The
        // turn-major index pair is the point, so a range loop reads best.
        #[allow(clippy::needless_range_loop)]
        for turn in 0..tasks {
            for (s, &id) in ids.iter().enumerate() {
                serving
                    .submit_plan(id, flow_plan(flows[s][turn], s, turn, run))
                    .expect("submitted");
            }
        }
        serving.await_idle();
        walls.push(start.elapsed().as_micros() as u64);
        let mut run_latencies = Vec::with_capacity(total_tasks);
        for &id in &ids {
            let report = serving.finish(id).expect("finished");
            assert_eq!(report.completions.len(), tasks);
            for c in &report.completions {
                assert!(
                    matches!(
                        c.disposition,
                        blueprint_core::session::Disposition::Completed
                    ),
                    "task {} of session {} did not complete: {:?}",
                    c.label,
                    id,
                    c.output
                );
                run_latencies.push(c.latency_micros);
            }
        }
        // Per-task latency is read off the simulated ledger: each invocation
        // measures shared-clock progress, so under concurrency it also
        // absorbs siblings' charges — i.e. it behaves like sojourn time and
        // the serving arm's tail reflects contention. Keep the first run's.
        if run == 0 {
            latencies = run_latencies;
            let snap = bp.metrics();
            dispatches = snap.counter("blueprint.session.dispatches");
            latency_records = snap.histograms["blueprint.session.task_latency_micros"].count;
            assert_eq!(dispatches, total_tasks as u64, "every task dispatched once");
        }
    }
    walls.sort_unstable();
    latencies.sort_unstable();
    let wall_us = walls[walls.len() / 2];
    ArmStats {
        wall_us,
        throughput_tps: (total_tasks as f64 / (wall_us.max(1) as f64 / 1e6) * 10.0).round() / 10.0,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        dispatches,
        latency_records,
    }
}

fn arm_json(a: &ArmStats) -> Value {
    json!({
        "wall_us": a.wall_us,
        "throughput_tps": a.throughput_tps,
        "p50_us": a.p50_us,
        "p99_us": a.p99_us,
        "metrics": {
            "dispatches": a.dispatches,
            "latency_records": a.latency_records,
        },
    })
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sweep: Vec<usize> = flag(&args, "--sessions")
        .unwrap_or_else(|| "1,8,64".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--sessions takes e.g. 1,8,64"))
        .collect();
    let tasks: usize = flag(&args, "--tasks").map_or(3, |v| v.parse().expect("--tasks N"));
    let in_flight: usize =
        flag(&args, "--in-flight").map_or(8, |v| v.parse().expect("--in-flight N"));
    let seed: u64 = flag(&args, "--seed").map_or(42, |v| v.parse().expect("--seed N"));
    assert!(
        sweep.iter().all(|&s| (1..=256).contains(&s)),
        "sessions must be within 1..=256"
    );

    let mut points = Vec::new();
    let mut achieved_at_64 = None;
    for &sessions in &sweep {
        eprintln!("loadgen: {sessions} session(s) x {tasks} task(s), sequential baseline ...");
        let sequential = run_arm(seed, sessions, tasks, 1);
        eprintln!(
            "loadgen: {sessions} session(s) x {tasks} task(s), serving (in-flight {in_flight}) ..."
        );
        let serving = run_arm(seed, sessions, tasks, in_flight);
        let speedup =
            (serving.throughput_tps / sequential.throughput_tps.max(f64::EPSILON) * 100.0).round()
                / 100.0;
        if sessions == 64 {
            achieved_at_64 = Some(speedup);
        }
        eprintln!(
            "loadgen: {sessions} session(s): {} -> {} tasks/s ({speedup}x)",
            sequential.throughput_tps, serving.throughput_tps
        );
        points.push(json!({
            "sessions": sessions,
            "total_tasks": sessions * tasks,
            "sequential": arm_json(&sequential),
            "serving": arm_json(&serving),
            "speedup_x": speedup,
        }));
    }

    let doc = json!({
        "benchmark": "multi-session serving runtime (sharded streams + session router)",
        "units": "wall-clock microseconds (median of runs); latencies from the simulated ledger",
        "runs_per_sample": RUNS,
        "seed": seed,
        "tasks_per_session": tasks,
        "max_in_flight": in_flight,
        "workload": {
            "flows": {
                "chat": "1-stage chain, 3 ms think-time",
                "nl2sql": "2-stage chain (translate -> execute), 2+2 ms",
                "extraction": "3-stage chain (extract -> normalize -> render), 1+2+1 ms",
            },
            "mix": "uniform per task, seeded per session (deterministic)",
            "baseline": "identical pool + router with max_in_flight = 1",
        },
        "sweep": points,
        "acceptance": {
            "sessions": 64,
            "required_speedup_x": 4.0,
            "achieved_speedup_x": achieved_at_64,
            "pass": achieved_at_64.map(|s| s >= 4.0),
        },
    });

    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").to_string()
    });
    let rendered = format!("{}\n", serde_json::to_string_pretty(&doc).unwrap());
    std::fs::write(&path, &rendered).expect("write serving bench report");
    println!("{rendered}");
    eprintln!("wrote {path}");
    if let Some(s) = achieved_at_64 {
        assert!(s >= 4.0, "serving speedup at 64 sessions below 4x: {s}");
    }
}
