//! Fig 4 — PetriNet-inspired triggering: each input stream is a place
//! holding tokens; the transition (processor invocation) fires when every
//! place holds at least one token.
//!
//! Run with: `cargo run -p blueprint-bench --bin fig4_petrinet`

use blueprint_bench::{figure, write_artifact};
use blueprint_core::agents::{PairingPolicy, TriggerNet};
use serde_json::json;

fn show(net: &TriggerNet, label: &str) {
    println!(
        "  [{label}] places: profile={} jobs={} | enabled={} fires={}",
        net.queued("profile"),
        net.queued("jobs"),
        net.enabled(),
        net.fires()
    );
}

fn main() {
    figure(
        "Fig 4",
        "Multi-stream triggering via PetriNet places and tokens",
    );

    println!("\nZip policy (FIFO join — classic PetriNet semantics):");
    let mut net = TriggerNet::new(["profile", "jobs"], PairingPolicy::Zip);
    show(&net, "start");
    println!("  token → profile place (p1)");
    assert!(net.offer("profile", json!({"p": 1})).is_none());
    show(&net, "p1 queued, transition not enabled");
    println!("  token → profile place (p2)");
    assert!(net.offer("profile", json!({"p": 2})).is_none());
    println!("  token → jobs place (j1) … transition fires with (p1, j1)");
    let fired = net.offer("jobs", json!(["j1"])).expect("fires");
    println!("  fired tuple: {}", fired.to_json());
    show(&net, "after fire: p2 still queued");
    println!("  token → jobs place (j2) … fires with (p2, j2)");
    let fired2 = net.offer("jobs", json!(["j2"])).expect("fires");
    println!("  fired tuple: {}", fired2.to_json());
    let zip_fires = vec![fired.to_json(), fired2.to_json()];

    println!("\nLatest policy (only the newest token matters):");
    let mut net = TriggerNet::new(["profile", "jobs"], PairingPolicy::Latest);
    net.offer("profile", json!({"p": 1}));
    net.offer("profile", json!({"p": 2}));
    net.offer("profile", json!({"p": 3}));
    let fired = net.offer("jobs", json!(["j"])).expect("fires");
    println!(
        "  three profile tokens queued; fired with {}",
        fired.to_json()
    );
    let latest_fire = fired.to_json();

    println!("\nSticky policy (first place drives; others are retained context):");
    let mut net = TriggerNet::new(["query", "profile"], PairingPolicy::Sticky);
    net.offer("query", json!("q1"));
    let f1 = net.offer("profile", json!({"user": "ada"})).expect("fires");
    println!("  fire 1: {}", f1.to_json());
    let f2 = net
        .offer("query", json!("q2"))
        .expect("fires without a new profile token");
    println!("  fire 2: {} (profile context reused)", f2.to_json());

    write_artifact(
        "fig4_petrinet",
        &json!({
            "figure": "fig4",
            "zip_fires": zip_fires,
            "latest_fire": latest_fire,
            "sticky_fires": [f1.to_json(), f2.to_json()],
        }),
    );
}
