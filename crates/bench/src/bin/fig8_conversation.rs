//! Fig 8 — a conversation in the Agentic Employer: interleaved UI
//! interactions and text turns, with rendered outputs.
//!
//! Run with: `cargo run -p blueprint-bench --bin fig8_conversation`

use std::time::Duration;

use blueprint_bench::{bench_blueprint, figure, write_artifact};
use blueprint_core::agents::UiForm;
use blueprint_core::streams::{Selector, TagFilter};
use serde_json::json;

fn main() {
    figure("Fig 8", "A conversation in Agentic Employer");
    let bp = bench_blueprint();
    let session = bp.start_session().expect("session");

    let summaries = bp
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
        .expect("subscribe");

    let form = UiForm::new("applicants", "Applicants by job").with_field(
        blueprint_core::agents::UiField::select("job", "Job", ["1", "2", "3"]),
    );
    println!("\n[ui form rendered]");
    print!("{}", form.render_text());

    // Turn 1: UI selection.
    println!("employer clicks job 1 …");
    session.click(&form, "job", json!(1)).expect("click");
    let s1 = summaries
        .recv_timeout(Duration::from_secs(10))
        .expect("summary");
    println!("system: {}", s1.payload.as_str().unwrap_or("?"));
    let mut turns = vec![json!({
        "employer": "[clicks job 1]",
        "system": s1.payload.as_str().unwrap_or("?"),
    })];

    // Turn 2: open-ended question.
    for turn in [
        "How many applicants per city?",
        "how many applicants have python skills",
        "what is the average salary of jobs in san francisco",
    ] {
        println!("\nemployer: \"{turn}\"");
        session.say(turn).expect("say");
        let s = summaries
            .recv_timeout(Duration::from_secs(10))
            .expect("summary");
        println!("system: {}", s.payload.as_str().unwrap_or("?"));
        turns.push(json!({
            "employer": turn,
            "system": s.payload.as_str().unwrap_or("?"),
        }));
    }

    let stats = bp.store().stats();
    println!(
        "\nconversation stats: {} streams, {} messages, {} deliveries",
        stats.streams_created, stats.messages_published, stats.deliveries
    );

    write_artifact(
        "fig8_conversation",
        &json!({
            "figure": "fig8",
            "turns": turns,
            "streams": stats.streams_created,
            "messages": stats.messages_published,
            "deliveries": stats.deliveries,
        }),
    );
}
