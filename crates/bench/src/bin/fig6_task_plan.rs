//! Fig 6 — the task plan for the running example: PROFILER → JOB MATCHER →
//! PRESENTER with input and output parameters connected.
//!
//! Run with: `cargo run -p blueprint-bench --bin fig6_task_plan`

use blueprint_bench::{bench_blueprint, figure, write_artifact, RUNNING_EXAMPLE};
use blueprint_core::planner::PlanIr;
use serde_json::json;

fn main() {
    figure(
        "Fig 6",
        "A task plan: connecting agent input/output parameters",
    );
    let bp = bench_blueprint();
    let planner = bp.task_planner();

    let (intent, subtasks) = planner.decompose(RUNNING_EXAMPLE);
    println!("\nutterance : \"{RUNNING_EXAMPLE}\"");
    println!("intent    : {intent:?}");
    println!("sub-tasks :");
    for (i, s) in subtasks.iter().enumerate() {
        println!("  {}. {s}", i + 1);
    }

    let plan = planner.plan(RUNNING_EXAMPLE).expect("plans");
    println!("\n{}", plan.render_text());

    let profile = plan.projected_profile();
    println!("projected QoS (fed to the budget):");
    println!("  cost     : {:.2} units", profile.cost_per_call);
    println!("  latency  : {} ms", profile.latency_micros / 1_000);
    println!("  accuracy : {:.3}", profile.accuracy);

    println!("edges (derived from FromNode bindings):");
    for e in plan.edges() {
        println!("  {} → {}", e.from, e.to);
    }
    println!(
        "topological order: {:?}",
        plan.topo_order().expect("acyclic")
    );

    // The same plan lowered into the unified IR, with every FromData binding
    // spliced into the owning task node (§V-F ∘ §V-G in one DAG).
    let ir = PlanIr::lower_spliced(&plan, bp.data_planner()).expect("lowers");
    println!("\nlowered unified IR (data plans spliced in):");
    print!("{}", ir.render_text());

    write_artifact(
        "fig6_task_plan",
        &json!({
            "figure": "fig6",
            "utterance": RUNNING_EXAMPLE,
            "intent": format!("{intent:?}"),
            "subtasks": subtasks,
            "plan": plan.render_text(),
            "projected": {
                "cost_units": profile.cost_per_call,
                "latency_micros": profile.latency_micros,
                "accuracy": profile.accuracy,
            },
            "edges": plan.edges().iter().map(|e| json!([e.from, e.to])).collect::<Vec<_>>(),
            "topo_order": plan.topo_order().expect("acyclic"),
            "ir": ir.render_text(),
            "ir_nodes": ir.nodes.len(),
        }),
    );
}
