//! Fig 6 — the task plan for the running example: PROFILER → JOB MATCHER →
//! PRESENTER with input and output parameters connected.
//!
//! Run with: `cargo run -p blueprint-bench --bin fig6_task_plan`

use blueprint_bench::{bench_blueprint, figure, RUNNING_EXAMPLE};

fn main() {
    figure(
        "Fig 6",
        "A task plan: connecting agent input/output parameters",
    );
    let bp = bench_blueprint();
    let planner = bp.task_planner();

    let (intent, subtasks) = planner.decompose(RUNNING_EXAMPLE);
    println!("\nutterance : \"{RUNNING_EXAMPLE}\"");
    println!("intent    : {intent:?}");
    println!("sub-tasks :");
    for (i, s) in subtasks.iter().enumerate() {
        println!("  {}. {s}", i + 1);
    }

    let plan = planner.plan(RUNNING_EXAMPLE).expect("plans");
    println!("\n{}", plan.render_text());

    let profile = plan.projected_profile();
    println!("projected QoS (fed to the budget):");
    println!("  cost     : {:.2} units", profile.cost_per_call);
    println!("  latency  : {} ms", profile.latency_micros / 1_000);
    println!("  accuracy : {:.3}", profile.accuracy);

    println!("edges (derived from FromNode bindings):");
    for e in plan.edges() {
        println!("  {} → {}", e.from, e.to);
    }
    println!(
        "topological order: {:?}",
        plan.topo_order().expect("acyclic")
    );
}
