//! B5/B8 — the QoS sweep: which model tier the optimizer selects per
//! objective and constraint, and the end-to-end cost/latency/accuracy of
//! the running example under three QoS presets.
//!
//! Run with: `cargo run -p blueprint-bench --bin qos_sweep`

use blueprint_bench::{bench_hr, figure, write_artifact, RUNNING_EXAMPLE};
use blueprint_core::coordinator::Outcome;
use blueprint_core::llmsim::ModelProfile;
use blueprint_core::optimizer::{Objective, QosConstraints};
use blueprint_core::Blueprint;
use serde_json::json;

fn blueprint_with(objective: Objective, constraints: QosConstraints) -> Blueprint {
    Blueprint::builder()
        .with_hr_domain(bench_hr())
        .with_model(ModelProfile::large())
        .with_extra_model(ModelProfile::small())
        .with_extra_model(ModelProfile::tiny())
        .with_objective(objective)
        .with_constraints(constraints)
        .build()
        .expect("blueprint assembles")
}

fn chosen_tier(bp: &Blueprint) -> String {
    let plan = bp
        .data_planner()
        .plan_job_query(RUNNING_EXAMPLE)
        .expect("plans");
    plan.nodes
        .iter()
        .find_map(|n| match &n.op {
            blueprint_core::planner::DataOp::Knowledge { source } => Some(source.clone()),
            _ => None,
        })
        .unwrap_or_else(|| "-".into())
}

fn main() {
    figure(
        "B5",
        "Optimizer tier selection across objectives and constraints",
    );
    println!("\n{:<34} {:<12}", "objective / constraint", "chosen tier");
    println!("{}", "-".repeat(48));
    let mut selections = Vec::new();
    for (label, objective, constraints) in [
        (
            "min-cost, unconstrained",
            Objective::MinCost,
            QosConstraints::none(),
        ),
        (
            "min-cost, accuracy ≥ 0.85",
            Objective::MinCost,
            QosConstraints::none().with_min_accuracy(0.85),
        ),
        (
            "min-cost, accuracy ≥ 0.95",
            Objective::MinCost,
            QosConstraints::none().with_min_accuracy(0.95),
        ),
        (
            "min-latency, unconstrained",
            Objective::MinLatency,
            QosConstraints::none(),
        ),
        (
            "max-accuracy, unconstrained",
            Objective::MaxAccuracy,
            QosConstraints::none(),
        ),
        (
            "max-accuracy, latency ≤ 200ms",
            Objective::MaxAccuracy,
            QosConstraints::none().with_max_latency_micros(200_000),
        ),
        ("balanced", Objective::balanced(), QosConstraints::none()),
    ] {
        let bp = blueprint_with(objective, constraints);
        let tier = chosen_tier(&bp);
        println!("{:<34} {:<12}", label, tier);
        selections.push(json!({ "setting": label, "chosen_tier": tier }));
    }

    figure("B8", "End-to-end running example under three QoS presets");
    println!(
        "\n{:<14} {:>10} {:>12} {:>10}  outcome",
        "preset", "cost", "latency(ms)", "jobs"
    );
    println!("{}", "-".repeat(64));
    let mut presets = Vec::new();
    for (label, objective) in [
        ("cost-min", Objective::MinCost),
        ("latency-min", Objective::MinLatency),
        ("accuracy-max", Objective::MaxAccuracy),
    ] {
        let bp = blueprint_with(objective, QosConstraints::none());
        let session = bp.start_session().expect("session");
        let report = session.handle(RUNNING_EXAMPLE).expect("handles");
        let jobs = match &report.outcome {
            Outcome::Completed { output } => output
                .get("rendered")
                .and_then(|v| v.as_str())
                .and_then(|s| s.split(" item").next())
                .unwrap_or("?")
                .to_string(),
            _ => "-".into(),
        };
        println!(
            "{:<14} {:>10.3} {:>12} {:>10}  {}",
            label,
            report.budget.spent_cost,
            report.budget.spent_latency_micros / 1_000,
            jobs,
            if report.outcome.succeeded() {
                "completed"
            } else {
                "failed"
            },
        );
        presets.push(json!({
            "preset": label,
            "cost_units": report.budget.spent_cost,
            "latency_micros": report.budget.spent_latency_micros,
            "jobs": jobs,
            "succeeded": report.outcome.succeeded(),
        }));
    }
    println!("\nReading: cost-min routes knowledge to the cheap tier (lower cost,");
    println!("fewer recovered cities → possibly fewer matches); accuracy-max pays");
    println!("the premium tier for full recall.");

    write_artifact(
        "qos_sweep",
        &json!({
            "figure": "qos_sweep",
            "tier_selection": selections,
            "end_to_end": presets,
        }),
    );
}
