//! Machine-readable coordinator perf trajectory: sequential vs parallel vs
//! memoized timings for a synthetic 8-way fan-out and the paper's Fig 6/7
//! running-example plan, written to `BENCH_coordinator.json` at the repo
//! root so future PRs can diff the numbers.
//!
//! Run with: `cargo run --release -p blueprint-bench --bin bench_json`
//! (or `make bench-json`).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::{json, Value};

use blueprint_bench::{bench_hr, RUNNING_EXAMPLE};
use blueprint_core::agents::{
    AgentContext, AgentFactory, AgentSpec, CostProfile, DataType, FnProcessor, Inputs, Outputs,
    ParamSpec, Processor,
};
use blueprint_core::coordinator::{MemoCache, SchedulerMode, TaskCoordinator};
use blueprint_core::optimizer::QosConstraints;
use blueprint_core::planner::{InputBinding, PlanNode, TaskPlan};
use blueprint_core::registry::AgentRegistry;
use blueprint_core::streams::StreamStore;
use blueprint_core::Blueprint;

const RUNS: usize = 7;
const FANOUT: usize = 8;
const WORK_MS: u64 = 2;

/// Median wall-clock of `RUNS` invocations, in microseconds.
fn median_micros(mut sample: impl FnMut() -> Duration) -> u64 {
    let mut times: Vec<u64> = (0..RUNS).map(|_| sample().as_micros() as u64).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn fanout_coordinator(mode: SchedulerMode, memo: bool) -> (Arc<AgentFactory>, TaskCoordinator) {
    let store = StreamStore::new();
    store.monitor().set_enabled(false);
    let factory = Arc::new(AgentFactory::new(store.clone()));
    let registry = Arc::new(AgentRegistry::new());
    for i in 0..FANOUT {
        let spec = AgentSpec::new(format!("branch-{i}"), "sleep then answer")
            .with_input(ParamSpec::required("text", "t", DataType::Text))
            .with_output(ParamSpec::required("out", "o", DataType::Text))
            .with_profile(CostProfile::new(0.01, 10, 1.0));
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, _: &AgentContext| {
                std::thread::sleep(Duration::from_millis(WORK_MS));
                Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
            },
        ));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn(&format!("branch-{i}"), "session:1").unwrap();
    }
    let mut coordinator = TaskCoordinator::new(store, "session:1", registry)
        .with_report_timeout(Duration::from_secs(10))
        .with_scheduler(mode);
    if memo {
        coordinator = coordinator.with_memoization(Arc::new(MemoCache::new(64)));
    }
    (factory, coordinator)
}

fn fanout_plan(task_id: &str) -> TaskPlan {
    let mut plan = TaskPlan::new(task_id, "benchmark payload");
    for i in 0..FANOUT {
        let mut inputs = BTreeMap::new();
        inputs.insert("text".to_string(), InputBinding::FromUser);
        plan.push(PlanNode {
            id: format!("n{}", i + 1),
            agent: format!("branch-{i}"),
            task: "sleep then answer".into(),
            inputs,
            profile: CostProfile::new(0.01, 10, 1.0),
        });
    }
    plan
}

/// Times the 8-way fan-out under one scheduler mode.
fn time_fanout(mode: SchedulerMode, memo: bool) -> u64 {
    let (_factory, coordinator) = fanout_coordinator(mode, memo);
    if memo {
        // Warm the cache so the timed runs measure pure replay.
        let report = coordinator
            .execute(&fanout_plan("warm"), QosConstraints::none())
            .unwrap();
        assert!(report.outcome.succeeded());
    }
    let mut task = 0u64;
    median_micros(|| {
        task += 1;
        let plan = fanout_plan(&format!("f{task}"));
        let start = Instant::now();
        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        let elapsed = start.elapsed();
        assert!(report.outcome.succeeded());
        elapsed
    })
}

fn scheduled_blueprint(mode: SchedulerMode, memo: bool) -> Blueprint {
    let mut builder = Blueprint::builder()
        .with_hr_domain(bench_hr())
        .with_scheduler(mode);
    if memo {
        builder = builder.with_memoization(256);
    }
    builder.build().expect("blueprint assembles")
}

/// Times the Fig 6 task plan (which internally resolves its Fig 7 data plan)
/// end to end through a session, planner included.
fn time_running_example(mode: SchedulerMode, memo: bool) -> (u64, Value) {
    let bp = scheduled_blueprint(mode, memo);
    if memo {
        let session = bp.start_session().unwrap();
        let report = session.handle(RUNNING_EXAMPLE).unwrap();
        assert!(report.outcome.succeeded());
    }
    let mut cache = json!(null);
    let micros = median_micros(|| {
        let session = bp.start_session().unwrap();
        let start = Instant::now();
        let report = session.handle(RUNNING_EXAMPLE).unwrap();
        let elapsed = start.elapsed();
        assert!(report.outcome.succeeded());
        cache = json!({
            "hits": report.cache.hits,
            "cost_saved": report.cache.cost_saved,
            "latency_saved_micros": report.cache.latency_saved_micros,
        });
        elapsed
    });
    (micros, cache)
}

fn speedup(baseline: u64, candidate: u64) -> f64 {
    (baseline as f64 / candidate.max(1) as f64 * 100.0).round() / 100.0
}

fn main() {
    let parallel = SchedulerMode::Parallel { max_in_flight: 0 };

    eprintln!("timing fanout-{FANOUT} ({WORK_MS} ms agents) ...");
    let fan_seq = time_fanout(SchedulerMode::Sequential, false);
    let fan_par = time_fanout(parallel, false);
    let fan_memo = time_fanout(parallel, true);

    eprintln!("timing running-example plan (Fig 6 task plan / Fig 7 data plan) ...");
    let (hr_seq, _) = time_running_example(SchedulerMode::Sequential, false);
    let (hr_par, _) = time_running_example(parallel, false);
    let (hr_memo, hr_cache) = time_running_example(parallel, true);

    let doc = json!({
        "benchmark": "coordinator scheduler + memoization",
        "units": "wall-clock microseconds, median of runs",
        "runs_per_sample": RUNS,
        "fanout": {
            "description": format!(
                "{FANOUT} independent branches, one {WORK_MS} ms agent each, no data deps"
            ),
            "sequential_us": fan_seq,
            "parallel_us": fan_par,
            "memoized_repeat_us": fan_memo,
            "parallel_speedup_x": speedup(fan_seq, fan_par),
            "memoized_speedup_x": speedup(fan_seq, fan_memo),
        },
        "running_example": {
            "description": "Fig 6 task plan over the HR domain (resolves its Fig 7 \
                            data plan), full session handle() including planning",
            "utterance": RUNNING_EXAMPLE,
            "sequential_us": hr_seq,
            "parallel_us": hr_par,
            "memoized_repeat_us": hr_memo,
            "parallel_speedup_x": speedup(hr_seq, hr_par),
            "memoized_speedup_x": speedup(hr_seq, hr_memo),
            "memoized_repeat_cache": hr_cache,
        },
    });

    // `BENCH_OUT` redirects the report (CI writes a candidate file next to
    // the committed baseline instead of overwriting it).
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coordinator.json").to_string()
    });
    let rendered = format!("{}\n", serde_json::to_string_pretty(&doc).unwrap());
    std::fs::write(&path, &rendered).expect("write coordinator bench report");
    println!("{rendered}");
    eprintln!("wrote {path}");
}
