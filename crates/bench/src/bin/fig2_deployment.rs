//! Fig 2 — deployment: agents in containers by compute class, scaled out,
//! and restarted on failure.
//!
//! Run with: `cargo run -p blueprint-bench --bin fig2_deployment`

use blueprint_bench::{bench_blueprint, figure, write_artifact};
use blueprint_core::agents::DeploymentKind;
use serde_json::json;

fn main() {
    figure(
        "Fig 2",
        "Deployment of components in an enterprise cluster setting",
    );
    let bp = bench_blueprint();

    // Group registered agents into their target "clusters".
    let mut clusters: std::collections::BTreeMap<String, Vec<String>> = Default::default();
    for name in bp.agent_registry().list() {
        let spec = bp.agent_registry().get_spec(&name).expect("registered");
        let cluster = match spec.deployment.kind {
            DeploymentKind::Cpu => "cpu-cluster",
            DeploymentKind::Gpu => "gpu-cluster",
            DeploymentKind::DataProximate => "data-cluster",
        };
        clusters
            .entry(cluster.to_string())
            .or_default()
            .push(format!("{} (workers={})", name, spec.deployment.workers));
    }
    for (cluster, agents) in &clusters {
        println!("\n{cluster}:");
        for a in agents {
            println!("  container: AgentFactory[{a}]");
        }
    }

    // Scale out: multiple instances of the matcher across sessions.
    println!("\nscale-out: spawning job-matcher into 3 session scopes");
    let mut ids = Vec::new();
    for s in 1..=3 {
        let id = bp
            .factory()
            .spawn("job-matcher", &format!("session:{s}"))
            .expect("spawn");
        ids.push(id);
    }
    println!(
        "  running instances: {}",
        bp.factory().stats().running_instances
    );

    // Restart on failure.
    println!("\nrestart-on-failure: restarting instance {}", ids[0]);
    let new_id = bp.factory().restart(ids[0]).expect("restart");
    println!(
        "  instance {} → {} (restarts so far: {})",
        ids[0],
        new_id,
        bp.factory().stats().restarts
    );
    bp.factory().stop_all();
    println!(
        "  drained: {} running",
        bp.factory().stats().running_instances
    );

    write_artifact(
        "fig2_deployment",
        &json!({
            "figure": "fig2",
            "clusters": clusters,
            "restarts": bp.factory().stats().restarts,
            "restarted_instance": { "old": ids[0], "new": new_id },
        }),
    );
}
