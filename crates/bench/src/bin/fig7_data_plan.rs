//! Fig 7 — the data plan: JOBS relational table in conjunction with an LLM
//! (GPT) as a data source, with the injected Q2NL operator and taxonomy
//! expansion — versus the direct NL2Q baseline the paper says "may not
//! always work".
//!
//! Run with: `cargo run -p blueprint-bench --bin fig7_data_plan`

use blueprint_bench::{bench_blueprint, figure, write_artifact, RUNNING_EXAMPLE};
use blueprint_core::planner::PlanIr;
use serde_json::json;

fn main() {
    figure("Fig 7", "A data plan using JOBS ⋈ LLM(GPT) as data sources");
    let bp = bench_blueprint();
    let dp = bp.data_planner();

    println!("\nquery: \"{RUNNING_EXAMPLE}\"");

    println!("\n── decomposed plan (the paper's approach) ──");
    let plan = dp.plan_job_query(RUNNING_EXAMPLE).expect("plans");
    print!("{}", plan.render_text());
    let est = plan.projected_estimate();
    println!(
        "estimated: cost {:.3}, latency {} ms, accuracy {:.2}",
        est.cost_units,
        est.latency_micros / 1_000,
        est.accuracy
    );
    let result = dp.execute(&plan).expect("executes");
    println!("\nexecution trace:");
    for (node, op, rows) in &result.trace {
        println!("  {node} {op:<14} → {rows} row(s)");
    }
    let decomposed_rows = result.value.as_array().map(Vec::len).unwrap_or(0);
    println!("result: {decomposed_rows} matching jobs");

    println!("\n── direct NL2Q baseline (§V-G: \"may not always work\") ──");
    let dataset = bp.dataset().expect("hr domain");
    let direct = dp
        .plan_nl2q_direct(RUNNING_EXAMPLE, &dataset.db, "hr-db")
        .expect("plans");
    print!("{}", direct.render_text());
    let direct_result = dp.execute(&direct).expect("executes");
    let direct_rows = direct_result.value.as_array().map(Vec::len).unwrap_or(0);
    println!("result: {direct_rows} matching jobs");

    println!("\n── comparison ──");
    println!("  decomposed plan : {decomposed_rows} jobs (bay-area cities resolved via LLM, titles via taxonomy)");
    println!("  direct NL2Q     : {direct_rows} jobs (\"SF bay area\" matches no city literal)");
    assert!(decomposed_rows > direct_rows);
    println!(
        "  → decomposition recovers {} jobs the direct query misses",
        decomposed_rows - direct_rows
    );

    // The standalone data plan lowered into the unified IR: the same node
    // set the optimizer and coordinator consume once it is spliced into a
    // task plan.
    let ir = PlanIr::from_data_plan(&plan);
    println!("\nlowered unified IR (standalone data plan):");
    print!("{}", ir.render_text());

    write_artifact(
        "fig7_data_plan",
        &json!({
            "figure": "fig7",
            "query": RUNNING_EXAMPLE,
            "decomposed": {
                "plan": plan.render_text(),
                "estimated": {
                    "cost_units": est.cost_units,
                    "latency_micros": est.latency_micros,
                    "accuracy": est.accuracy,
                },
                "rows": decomposed_rows,
            },
            "direct_nl2q": {
                "plan": direct.render_text(),
                "rows": direct_rows,
            },
            "recovered_rows": decomposed_rows - direct_rows,
            "ir": ir.render_text(),
        }),
    );
}
