//! Shared fixtures for the figure-regeneration binaries and Criterion
//! benches. Every exhibit in the paper maps to one binary in `src/bin/`
//! (see DESIGN.md's per-experiment index) and, where quantitative behavior
//! is implied, to a bench in `benches/`.

use blueprint_core::hrdomain::HrConfig;
use blueprint_core::Blueprint;

/// The paper's running example (§II-A).
pub const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

/// Deterministic HR configuration shared by the exhibits.
pub fn bench_hr() -> HrConfig {
    HrConfig {
        seed: 7,
        jobs: 300,
        applicants: 200,
        companies: 25,
        applications: 600,
    }
}

/// A fully wired runtime over the bench HR domain.
pub fn bench_blueprint() -> Blueprint {
    Blueprint::builder()
        .with_hr_domain(bench_hr())
        .build()
        .expect("blueprint assembles")
}

/// Prints a figure banner.
pub fn figure(id: &str, caption: &str) {
    println!("\n┌{}┐", "─".repeat(70));
    println!("│ {id}: {caption}");
    println!("└{}┘", "─".repeat(70));
}
