//! Shared fixtures for the figure-regeneration binaries and Criterion
//! benches. Every exhibit in the paper maps to one binary in `src/bin/`
//! (see DESIGN.md's per-experiment index) and, where quantitative behavior
//! is implied, to a bench in `benches/`.

use blueprint_core::hrdomain::HrConfig;
use blueprint_core::Blueprint;

/// The paper's running example (§II-A).
pub const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

/// Deterministic HR configuration shared by the exhibits.
pub fn bench_hr() -> HrConfig {
    HrConfig {
        seed: 7,
        jobs: 300,
        applicants: 200,
        companies: 25,
        applications: 600,
    }
}

/// A fully wired runtime over the bench HR domain.
pub fn bench_blueprint() -> Blueprint {
    Blueprint::builder()
        .with_hr_domain(bench_hr())
        .build()
        .expect("blueprint assembles")
}

/// Prints a figure banner.
pub fn figure(id: &str, caption: &str) {
    println!("\n┌{}┐", "─".repeat(70));
    println!("│ {id}: {caption}");
    println!("└{}┘", "─".repeat(70));
}

/// Writes a machine-readable figure artifact to `target/figures/<name>.json`
/// at the repo root — stable filenames so DESIGN.md's figure index (and any
/// external tooling) can point at them. Override the directory with
/// `FIGURES_DIR`. Returns the path written.
pub fn write_artifact(name: &str, doc: &serde_json::Value) -> std::path::PathBuf {
    let dir: std::path::PathBuf = std::env::var_os("FIGURES_DIR")
        .map(Into::into)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/figures")
        });
    std::fs::create_dir_all(&dir).expect("create figures dir");
    let path = dir.join(format!("{name}.json"));
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(doc).expect("serialize artifact")
    );
    std::fs::write(&path, rendered).expect("write figure artifact");
    println!("\nartifact → {}", path.display());
    path
}
