//! NL→SQL head (the NL2Q agent of Fig 10).
//!
//! A template-based translator that emulates a fine-tuned NL2Q model over a
//! *known schema*: it scores candidate tables by token overlap, detects
//! aggregates ("how many", "average ..."), grouping ("per city"), numeric
//! comparisons ("over 150000"), equality filters from a data-aware value
//! dictionary (the sampled distinct values a real NL2Q system indexes), and
//! containment filters ("with python skills" → `LIKE '%python%'`).

use std::collections::HashMap;

/// Schema handed to the translator (table name + column names/types).
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// `(column name, "text" | "int" | "float" | "bool")` pairs.
    pub columns: Vec<(String, String)>,
}

fn tokens(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

fn singular(token: &str) -> String {
    token.strip_suffix('s').unwrap_or(token).to_string()
}

/// Translates a natural-language question into SQL over the given schema.
///
/// `values` is the data-aware dictionary: column name → known distinct text
/// values (lowercased) used to ground equality filters.
pub fn nl2sql(
    question: &str,
    tables: &[TableSchema],
    values: &HashMap<String, Vec<String>>,
) -> Option<String> {
    if tables.is_empty() {
        return None;
    }
    let q = question.to_lowercase();
    let qtokens = tokens(&q);

    // 1. Pick the table with the highest token overlap (name + columns).
    let mut best: (usize, &TableSchema) = (0, &tables[0]);
    for t in tables {
        let mut score = 0;
        let tname = singular(&t.name.to_lowercase());
        if qtokens.iter().any(|tok| singular(tok) == tname) {
            score += 3;
        }
        for (c, _) in &t.columns {
            if qtokens.iter().any(|tok| singular(tok) == singular(c)) {
                score += 1;
            }
        }
        if score > best.0 {
            best = (score, t);
        }
    }
    let table = best.1;

    // 2. Aggregate / projection.
    let mut select = String::new();
    let mut group_col: Option<String> = None;
    // "per <col>" / "by <col>" grouping.
    for (i, tok) in qtokens.iter().enumerate() {
        if (tok == "per" || tok == "by") && i + 1 < qtokens.len() {
            let cand = singular(&qtokens[i + 1]);
            if let Some((c, _)) = table.columns.iter().find(|(c, _)| singular(c) == cand) {
                group_col = Some(c.clone());
            }
        }
    }
    let wants_count = q.contains("how many") || qtokens.contains(&"count".to_string());
    let avg_col = qtokens.iter().enumerate().find_map(|(i, tok)| {
        if tok == "average" || tok == "avg" || tok == "mean" {
            qtokens[i + 1..].iter().find_map(|next| {
                let cand = singular(next);
                table
                    .columns
                    .iter()
                    .find(|(c, _)| singular(c) == cand)
                    .map(|(c, _)| c.clone())
            })
        } else {
            None
        }
    });

    if let Some(g) = &group_col {
        if let Some(a) = &avg_col {
            select = format!("SELECT {g}, AVG({a}) AS avg_{a} FROM {}", table.name);
        } else {
            select = format!("SELECT {g}, COUNT(*) AS n FROM {}", table.name);
        }
    } else if let Some(a) = &avg_col {
        select = format!("SELECT AVG({a}) AS avg_{a} FROM {}", table.name);
    } else if wants_count {
        select = format!("SELECT COUNT(*) AS n FROM {}", table.name);
    }
    if select.is_empty() {
        select = format!("SELECT * FROM {}", table.name);
    }

    // 3. Filters.
    let mut predicates: Vec<String> = Vec::new();
    // Equality from the value dictionary (longest value wins per column).
    for (col, _) in &table.columns {
        if let Some(vals) = values.get(col) {
            let mut hit: Option<&String> = None;
            for v in vals {
                if q.contains(v.as_str()) && hit.is_none_or(|h| v.len() > h.len()) {
                    hit = Some(v);
                }
            }
            if let Some(v) = hit {
                predicates.push(format!("{col} = '{}'", v.replace('\'', "''")));
            }
        }
    }
    // Numeric comparisons: "<col> over|above|at least|under|below N".
    for (col, ctype) in &table.columns {
        if ctype != "int" && ctype != "float" {
            continue;
        }
        if !qtokens.iter().any(|t| singular(t) == singular(col)) {
            continue;
        }
        for (i, tok) in qtokens.iter().enumerate() {
            let op = match tok.as_str() {
                "over" | "above" | "exceeding" => Some(">"),
                "under" | "below" => Some("<"),
                "least" => Some(">="),
                _ => None,
            };
            if let (Some(op), Some(num)) = (op, qtokens.get(i + 1)) {
                if num.chars().all(|c| c.is_ascii_digit()) {
                    predicates.push(format!("{col} {op} {num}"));
                }
            }
        }
    }
    // Containment: "with <word> skills" / "have <word> skills" → LIKE.
    for (col, ctype) in &table.columns {
        if ctype != "text" {
            continue;
        }
        for (i, tok) in qtokens.iter().enumerate() {
            if singular(tok) == singular(col) && i >= 1 {
                let prev = &qtokens[i - 1];
                let known_value_hit = values
                    .get(col)
                    .is_some_and(|vals| vals.iter().any(|v| q.contains(v.as_str())));
                if !known_value_hit
                    && i >= 2
                    && matches!(
                        qtokens[i - 2].as_str(),
                        "with" | "have" | "has" | "know" | "knows"
                    )
                {
                    predicates.push(format!("{col} LIKE '%{prev}%'"));
                }
            }
        }
    }

    let mut sql = select;
    if !predicates.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&predicates.join(" AND "));
    }
    if let Some(g) = &group_col {
        sql.push_str(&format!(" GROUP BY {g}"));
        if avg_col.is_none() {
            sql.push_str(" ORDER BY n DESC");
        }
    }
    // "top N".
    if let Some(i) = qtokens.iter().position(|t| t == "top") {
        if let Some(n) = qtokens.get(i + 1).and_then(|t| t.parse::<u64>().ok()) {
            sql.push_str(&format!(" LIMIT {n}"));
        }
    }
    Some(sql)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Vec<TableSchema> {
        vec![
            TableSchema {
                name: "applicants".into(),
                columns: vec![
                    ("id".into(), "int".into()),
                    ("name".into(), "text".into()),
                    ("city".into(), "text".into()),
                    ("skills".into(), "text".into()),
                    ("experience".into(), "int".into()),
                ],
            },
            TableSchema {
                name: "jobs".into(),
                columns: vec![
                    ("id".into(), "int".into()),
                    ("title".into(), "text".into()),
                    ("city".into(), "text".into()),
                    ("salary".into(), "float".into()),
                ],
            },
        ]
    }

    fn values() -> HashMap<String, Vec<String>> {
        let mut v = HashMap::new();
        v.insert(
            "city".to_string(),
            vec!["san francisco".into(), "oakland".into(), "san jose".into()],
        );
        v.insert(
            "title".to_string(),
            vec!["data scientist".into(), "ml engineer".into()],
        );
        v
    }

    #[test]
    fn count_per_group() {
        let sql = nl2sql("How many applicants per city?", &schema(), &values()).unwrap();
        assert_eq!(
            sql,
            "SELECT city, COUNT(*) AS n FROM applicants GROUP BY city ORDER BY n DESC"
        );
    }

    #[test]
    fn count_with_like_filter() {
        let sql = nl2sql(
            "how many applicants have python skills",
            &schema(),
            &values(),
        )
        .unwrap();
        assert_eq!(
            sql,
            "SELECT COUNT(*) AS n FROM applicants WHERE skills LIKE '%python%'"
        );
    }

    #[test]
    fn average_with_equality_filter() {
        let sql = nl2sql(
            "what is the average salary of jobs in san francisco",
            &schema(),
            &values(),
        )
        .unwrap();
        assert_eq!(
            sql,
            "SELECT AVG(salary) AS avg_salary FROM jobs WHERE city = 'san francisco'"
        );
    }

    #[test]
    fn numeric_comparison() {
        let sql = nl2sql(
            "show applicants with experience over 5",
            &schema(),
            &values(),
        )
        .unwrap();
        assert!(sql.starts_with("SELECT * FROM applicants"));
        assert!(sql.contains("experience > 5"));
    }

    #[test]
    fn title_equality_from_values() {
        let sql = nl2sql("jobs for data scientist", &schema(), &values()).unwrap();
        assert_eq!(sql, "SELECT * FROM jobs WHERE title = 'data scientist'");
    }

    #[test]
    fn longest_value_wins() {
        // "san francisco" contains tokens overlapping "san jose"; the longer
        // literal match must win.
        let sql = nl2sql("jobs in san francisco", &schema(), &values()).unwrap();
        assert!(sql.contains("city = 'san francisco'"));
        assert!(!sql.contains("san jose"));
    }

    #[test]
    fn top_n_limit() {
        let sql = nl2sql(
            "top 3 cities by city count of applicants",
            &schema(),
            &values(),
        )
        .unwrap();
        assert!(sql.ends_with("LIMIT 3"));
    }

    #[test]
    fn empty_schema_is_none() {
        assert!(nl2sql("anything", &[], &HashMap::new()).is_none());
    }

    #[test]
    fn default_projection_is_star() {
        let sql = nl2sql("applicants", &schema(), &HashMap::new()).unwrap();
        assert_eq!(sql, "SELECT * FROM applicants");
    }

    #[test]
    fn quote_escaping_in_values() {
        let mut v = HashMap::new();
        v.insert("city".to_string(), vec!["coeur d'alene".to_string()]);
        let sql = nl2sql("jobs in coeur d'alene", &schema(), &v).unwrap();
        assert!(sql.contains("city = 'coeur d''alene'"));
    }
}
