//! Intent classification head (Fig 10's Intent Classifier agent).

use serde::{Deserialize, Serialize};

/// User-utterance intents the Agentic Employer application distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intent {
    /// A greeting / small talk.
    Greeting,
    /// An open-ended data question ("how many applicants have ml skills?").
    OpenEndedQuery,
    /// A job-search request ("I am looking for a data scientist position").
    JobSearch,
    /// The user supplying profile information.
    ProfileInfo,
    /// A command to act on a list ("add the top 3 to my shortlist").
    ListCommand,
    /// A request to summarize ("summarize the applicants for job 12").
    SummarizeRequest,
    /// Unclassifiable.
    Unknown,
}

impl Intent {
    /// Stream tag used when the classifier emits this intent.
    pub fn tag(self) -> &'static str {
        match self {
            Intent::Greeting => "intent-greeting",
            Intent::OpenEndedQuery => "intent-open-query",
            Intent::JobSearch => "intent-job-search",
            Intent::ProfileInfo => "intent-profile-info",
            Intent::ListCommand => "intent-list-command",
            Intent::SummarizeRequest => "intent-summarize",
            Intent::Unknown => "intent-unknown",
        }
    }
}

/// Rule table emulating a trained intent classifier: first matching rule
/// wins; rules are ordered from most to least specific.
pub(crate) fn classify(text: &str) -> (Intent, f64) {
    let t = text.to_lowercase();
    let has = |words: &[&str]| words.iter().any(|w| t.contains(w));

    if t.trim().is_empty() {
        return (Intent::Unknown, 0.2);
    }
    if has(&["hello", "hi ", "hey", "good morning", "good afternoon"]) && t.len() < 40 {
        return (Intent::Greeting, 0.95);
    }
    if has(&["summarize", "summary", "overview of", "tl;dr"]) {
        return (Intent::SummarizeRequest, 0.9);
    }
    if has(&["add ", "remove ", "shortlist", "my list", "drop "]) {
        return (Intent::ListCommand, 0.85);
    }
    if has(&[
        "looking for",
        "find me",
        "position",
        "job in",
        "roles in",
        "openings",
    ]) {
        return (Intent::JobSearch, 0.9);
    }
    if has(&[
        "my name is",
        "i have",
        "years of experience",
        "my skills",
        "i know",
    ]) {
        return (Intent::ProfileInfo, 0.8);
    }
    if has(&[
        "how many", "which ", "what ", "who ", "show me", "list ", "count", "average", "do ",
        "does ",
    ]) || t.ends_with('?')
    {
        return (Intent::OpenEndedQuery, 0.85);
    }
    (Intent::Unknown, 0.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greeting() {
        let (i, c) = classify("Hello there!");
        assert_eq!(i, Intent::Greeting);
        assert!(c > 0.9);
    }

    #[test]
    fn open_ended_query() {
        let (i, _) = classify("How many applicants have machine learning skills?");
        assert_eq!(i, Intent::OpenEndedQuery);
        let (i2, _) = classify("which cities have the most applicants");
        assert_eq!(i2, Intent::OpenEndedQuery);
    }

    #[test]
    fn job_search_running_example() {
        let (i, c) = classify("I am looking for a data scientist position in SF bay area.");
        assert_eq!(i, Intent::JobSearch);
        assert!(c >= 0.9);
    }

    #[test]
    fn summarize_request() {
        let (i, _) = classify("Summarize the applicants for job 12");
        assert_eq!(i, Intent::SummarizeRequest);
    }

    #[test]
    fn list_command() {
        let (i, _) = classify("add the top three to my shortlist");
        assert_eq!(i, Intent::ListCommand);
    }

    #[test]
    fn profile_info() {
        let (i, _) = classify("I have 5 years of experience with python");
        assert_eq!(i, Intent::ProfileInfo);
    }

    #[test]
    fn question_mark_fallback() {
        let (i, _) = classify("salary bands for engineers?");
        assert_eq!(i, Intent::OpenEndedQuery);
    }

    #[test]
    fn unknown_and_empty() {
        assert_eq!(classify("").0, Intent::Unknown);
        assert_eq!(classify("xyzzy plugh").0, Intent::Unknown);
    }

    #[test]
    fn tags_are_distinct() {
        let tags: std::collections::HashSet<&str> = [
            Intent::Greeting,
            Intent::OpenEndedQuery,
            Intent::JobSearch,
            Intent::ProfileInfo,
            Intent::ListCommand,
            Intent::SummarizeRequest,
            Intent::Unknown,
        ]
        .iter()
        .map(|i| i.tag())
        .collect();
        assert_eq!(tags.len(), 7);
    }
}
