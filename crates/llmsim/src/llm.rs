//! The simulated LLM: task heads + usage metering + accuracy enactment.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use blueprint_datastore::{CostEstimate, DataError, DataSource, SourceQuery, SourceResult};
use blueprint_observability::{Counter, MetricsRegistry};
use blueprint_resilience::{FaultInjector, InjectedFault};

use crate::intent::{classify, Intent};
use crate::knowledge::KnowledgeBase;
use crate::model::ModelProfile;
use crate::nl2sql::{nl2sql, TableSchema};

/// Metering for one simulated call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Usage {
    /// Prompt tokens.
    pub tokens_in: usize,
    /// Generated tokens.
    pub tokens_out: usize,
    /// Monetary cost in cost units.
    pub cost: f64,
    /// Simulated latency in microseconds.
    pub latency_micros: u64,
}

/// Criteria extracted from a user utterance
/// (`PROFILER.CRITERIA ← USER.TEXT`, §V-G).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExtractedCriteria {
    /// Desired job title, if detected.
    pub title: Option<String>,
    /// Desired location phrase, if detected.
    pub location: Option<String>,
    /// Skills mentioned.
    pub skills: Vec<String>,
}

impl ExtractedCriteria {
    /// JSON form placed on streams.
    pub fn to_json(&self) -> Value {
        json!({
            "title": self.title,
            "location": self.location,
            "skills": self.skills,
        })
    }
}

/// Titles the extractor recognizes (a stand-in for an NER model's lexicon).
const KNOWN_TITLES: [&str; 8] = [
    "data scientist",
    "machine learning engineer",
    "ml engineer",
    "data analyst",
    "data engineer",
    "software engineer",
    "research scientist",
    "recruiter",
];

/// Skills the extractor recognizes.
const KNOWN_SKILLS: [&str; 8] = [
    "python",
    "sql",
    "statistics",
    "machine learning",
    "pytorch",
    "java",
    "rust",
    "communication",
];

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn count_tokens(text: &str) -> usize {
    text.split_whitespace().count()
}

/// Named instruments for one simulated model (disarmed no-ops by default).
#[derive(Debug, Clone, Default)]
struct LlmInstruments {
    /// `blueprint.llmsim.calls` — model-head invocations metered via usage.
    calls: Counter,
    /// `blueprint.llmsim.tokens_out` — total generated tokens.
    tokens_out: Counter,
}

/// A deterministic simulated LLM at a given tier.
pub struct SimLlm {
    profile: ModelProfile,
    kb: Arc<KnowledgeBase>,
    faults: Option<Arc<FaultInjector>>,
    calls: AtomicU64,
    instruments: parking_lot::RwLock<LlmInstruments>,
}

impl SimLlm {
    /// Creates a simulator with the built-in knowledge base.
    pub fn new(profile: ModelProfile) -> Self {
        SimLlm {
            profile,
            kb: Arc::new(KnowledgeBase::builtin()),
            faults: None,
            calls: AtomicU64::new(0),
            instruments: parking_lot::RwLock::new(LlmInstruments::default()),
        }
    }

    /// Creates a simulator with a custom knowledge base.
    pub fn with_knowledge(profile: ModelProfile, kb: Arc<KnowledgeBase>) -> Self {
        SimLlm {
            profile,
            kb,
            faults: None,
            calls: AtomicU64::new(0),
            instruments: parking_lot::RwLock::new(LlmInstruments::default()),
        }
    }

    /// Reports model usage into `blueprint.llmsim.calls` and
    /// `blueprint.llmsim.tokens_out`. Late-bindable, like fault injection.
    pub fn set_metrics(&self, metrics: &MetricsRegistry) {
        *self.instruments.write() = LlmInstruments {
            calls: metrics.counter("blueprint.llmsim.calls"),
            tokens_out: metrics.counter("blueprint.llmsim.tokens_out"),
        };
    }

    /// Attaches a fault injector: model calls may transiently fail or stall.
    pub fn with_faults(mut self, injector: Arc<FaultInjector>) -> Self {
        self.faults = Some(injector);
        self
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Rolls a model-call fault decision for this call, keyed by tier name,
    /// operation, and call ordinal.
    fn call_fault(&self, op: &str) -> Option<InjectedFault> {
        let inj = self.faults.as_ref().filter(|inj| inj.model_armed())?;
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        inj.model_fault(&format!("{}:{op}#{n}", self.profile.name))
    }

    /// The tier profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The knowledge base.
    pub fn knowledge_base(&self) -> &Arc<KnowledgeBase> {
        &self.kb
    }

    fn usage(&self, tokens_in: usize, tokens_out: usize) -> Usage {
        // Every head meters through here, so it is the single choke point
        // for model-call instrumentation.
        let instruments = self.instruments.read().clone();
        instruments.calls.inc();
        instruments.tokens_out.add(tokens_out as u64);
        Usage {
            tokens_in,
            tokens_out,
            cost: self.profile.call_cost(tokens_in, tokens_out),
            latency_micros: self.profile.call_latency_micros(tokens_out),
        }
    }

    /// Deterministic per-item corruption decision: true when this item of
    /// this input should be corrupted at this tier's accuracy.
    fn corrupt(&self, input: &str, item: usize) -> bool {
        let key = format!("{}#{}#{}", self.profile.seed, input, item);
        let h = fnv1a(key.as_bytes());
        let p = (h % 10_000) as f64 / 10_000.0;
        p >= self.profile.accuracy
    }

    /// Classifies a user utterance's intent.
    pub fn classify_intent(&self, text: &str) -> (Intent, f64, Usage) {
        let (intent, confidence) = classify(text);
        let usage = self.usage(count_tokens(text), 3);
        if self.corrupt(text, 0) {
            // The lossy tier mislabels: everything degrades to Unknown.
            return (Intent::Unknown, confidence * 0.5, usage);
        }
        (intent, confidence, usage)
    }

    /// Extracts job-search criteria from an utterance.
    pub fn extract_criteria(&self, text: &str) -> (ExtractedCriteria, Usage) {
        let t = text.to_lowercase();
        let mut out = ExtractedCriteria::default();
        for title in KNOWN_TITLES {
            if t.contains(title) {
                out.title = Some(title.to_string());
                break;
            }
        }
        if let Some(pos) = t.find(" in ") {
            let rest = &t[pos + 4..];
            let loc: String = rest
                .trim_start_matches("the ")
                .chars()
                .take_while(|c| c.is_alphanumeric() || c.is_whitespace())
                .collect();
            let loc = loc.trim();
            if !loc.is_empty() {
                out.location = Some(loc.to_string());
            }
        }
        for skill in KNOWN_SKILLS {
            if t.contains(skill) {
                out.skills.push(skill.to_string());
            }
        }
        let usage = self.usage(count_tokens(text), 12);
        if self.corrupt(text, 1) {
            // Corruption drops the location — a realistic extraction miss.
            out.location = None;
        }
        (out, usage)
    }

    /// Answers a knowledge question from parametric memory. Corruption drops
    /// a seeded subset of answer items.
    pub fn knowledge(&self, question: &str) -> (Vec<String>, Usage) {
        let fault = self.call_fault("knowledge");
        if matches!(fault, Some(InjectedFault::FailCall)) {
            // Transient failure: the call is billed but yields nothing, like
            // a truncated/refused generation.
            return (Vec::new(), self.usage(count_tokens(question), 1));
        }
        let answers = self.kb.lookup(question).unwrap_or_default();
        let kept: Vec<String> = answers
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !self.corrupt(question, *i))
            .map(|(_, a)| a)
            .collect();
        let tokens_out: usize = kept.iter().map(|a| count_tokens(a)).sum();
        let mut usage = self.usage(count_tokens(question), tokens_out.max(1));
        if let Some(InjectedFault::StallCall { micros }) = fault {
            usage.latency_micros += micros;
        }
        (kept, usage)
    }

    /// Translates a question into SQL over a schema. Corruption drops the
    /// WHERE clause (the classic NL2Q failure mode).
    pub fn nl_to_sql(
        &self,
        question: &str,
        tables: &[TableSchema],
        values: &HashMap<String, Vec<String>>,
    ) -> (Option<String>, Usage) {
        let sql = nl2sql(question, tables, values);
        let usage = self.usage(
            count_tokens(question) + tables.iter().map(|t| t.columns.len() + 1).sum::<usize>(),
            sql.as_deref().map(count_tokens).unwrap_or(1),
        );
        let sql = sql.map(|s| {
            if self.corrupt(question, 2) {
                match s.find(" WHERE ") {
                    Some(i) => s[..i].to_string(),
                    None => s,
                }
            } else {
                s
            }
        });
        (sql, usage)
    }

    /// Summarizes a JSON table (array of objects) into prose — the Query
    /// Summarizer agent's head.
    pub fn summarize_rows(&self, rows: &Value) -> (String, Usage) {
        let arr = rows.as_array().cloned().unwrap_or_default();
        let summary = if arr.is_empty() {
            "The query returned no rows.".to_string()
        } else {
            let cols: Vec<String> = arr[0]
                .as_object()
                .map(|o| o.keys().cloned().collect())
                .unwrap_or_default();
            let mut s = format!(
                "The query returned {} row{} with column{} {}.",
                arr.len(),
                if arr.len() == 1 { "" } else { "s" },
                if cols.len() == 1 { "" } else { "s" },
                cols.join(", ")
            );
            if let Some(first) = arr.first().and_then(Value::as_object) {
                let sample: Vec<String> = first
                    .iter()
                    .map(|(k, v)| format!("{k}={}", render_scalar(v)))
                    .collect();
                s.push_str(&format!(" For example: {}.", sample.join(", ")));
            }
            s
        };
        let usage = self.usage(arr.len().saturating_mul(8) + 4, count_tokens(&summary));
        (summary, usage)
    }

    /// Summarizes free text: keeps the first sentence and reports length.
    pub fn summarize_text(&self, text: &str) -> (String, Usage) {
        let first = text.split(['.', '!', '?']).next().unwrap_or("").trim();
        let summary = if first.is_empty() {
            "Empty input.".to_string()
        } else {
            format!("{first}. ({} words total)", count_tokens(text))
        };
        let usage = self.usage(count_tokens(text), count_tokens(&summary));
        (summary, usage)
    }

    /// Generic completion: knowledge lookup, falling back to a deterministic
    /// acknowledgment.
    pub fn complete(&self, prompt: &str) -> (String, Usage) {
        if matches!(self.call_fault("complete"), Some(InjectedFault::FailCall)) {
            let text = format!(
                "[{}] transient model error; please retry.",
                self.profile.name
            );
            let usage = self.usage(count_tokens(prompt), count_tokens(&text));
            return (text, usage);
        }
        let (hits, _) = self.knowledge(prompt);
        let text = if hits.is_empty() {
            format!(
                "[{}] I considered your request ({} tokens) but have no grounded answer.",
                self.profile.name,
                count_tokens(prompt)
            )
        } else {
            hits.join(", ")
        };
        let usage = self.usage(count_tokens(prompt), count_tokens(&text));
        (text, usage)
    }

    /// Splits a completion into the token stream published message-by-message
    /// (the paper models LLM output as a stream of tokens, §V-A).
    pub fn stream_tokens(text: &str) -> Vec<String> {
        text.split_whitespace().map(str::to_string).collect()
    }
}

fn render_scalar(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

/// The LLM as a data source (`DataModality::Parametric` in the registry).
pub struct ParametricSource {
    name: String,
    llm: Arc<SimLlm>,
}

impl ParametricSource {
    /// Wraps a simulator under a registry name.
    pub fn new(name: impl Into<String>, llm: Arc<SimLlm>) -> Self {
        ParametricSource {
            name: name.into(),
            llm,
        }
    }
}

impl DataSource for ParametricSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn modality(&self) -> &'static str {
        "parametric"
    }

    fn supports(&self, query: &SourceQuery) -> bool {
        matches!(query, SourceQuery::Knowledge(_))
    }

    fn estimate(&self, query: &SourceQuery) -> CostEstimate {
        match query {
            SourceQuery::Knowledge(q) => {
                let profile = self.llm.profile();
                let tokens_out = 24; // typical list answer
                CostEstimate {
                    cost_units: profile.call_cost(count_tokens(q), tokens_out),
                    latency_micros: profile.call_latency_micros(tokens_out),
                    accuracy: profile.accuracy,
                }
            }
            _ => CostEstimate::FREE,
        }
    }

    fn query(&self, query: &SourceQuery) -> blueprint_datastore::Result<SourceResult> {
        match query {
            SourceQuery::Knowledge(q) => {
                // A model-call fault at the source boundary is a transient
                // outage, distinct from "the model doesn't know" (NotFound):
                // planners retry or fall back on Unavailable.
                if matches!(
                    self.llm.call_fault("parametric-query"),
                    Some(InjectedFault::FailCall)
                ) {
                    return Err(DataError::Unavailable(format!(
                        "injected transient failure at parametric source `{}`",
                        self.name
                    )));
                }
                let (answers, _) = self.llm.knowledge(q);
                if answers.is_empty() {
                    return Err(DataError::NotFound(format!(
                        "parametric source has no answer for: {q}"
                    )));
                }
                Ok(SourceResult::from_array(Value::Array(
                    answers.into_iter().map(Value::String).collect(),
                )))
            }
            other => Err(DataError::Eval(format!(
                "parametric source cannot answer {}",
                other.op_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn large() -> SimLlm {
        SimLlm::new(ModelProfile::large())
    }

    fn tiny() -> SimLlm {
        SimLlm::new(ModelProfile::tiny())
    }

    const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

    #[test]
    fn intent_on_running_example() {
        let (intent, conf, usage) = large().classify_intent(RUNNING_EXAMPLE);
        assert_eq!(intent, Intent::JobSearch);
        assert!(conf > 0.8);
        assert!(usage.cost > 0.0);
        assert!(usage.latency_micros > 0);
    }

    #[test]
    fn extraction_on_running_example() {
        let (c, usage) = large().extract_criteria(RUNNING_EXAMPLE);
        assert_eq!(c.title.as_deref(), Some("data scientist"));
        assert_eq!(c.location.as_deref(), Some("sf bay area"));
        assert!(usage.tokens_in > 0);
    }

    #[test]
    fn extraction_finds_skills() {
        let (c, _) =
            large().extract_criteria("I know python and sql, looking for ml roles in oakland");
        assert!(c.skills.contains(&"python".to_string()));
        assert!(c.skills.contains(&"sql".to_string()));
        assert_eq!(c.location.as_deref(), Some("oakland"));
    }

    #[test]
    fn knowledge_full_fidelity_on_large() {
        let (cities, usage) = large().knowledge("cities in the sf bay area");
        assert_eq!(cities.len(), 8); // sim-large at 0.98 keeps all 8 here
        assert!(usage.cost > 0.0);
    }

    #[test]
    fn knowledge_degrades_on_tiny() {
        let (large_cities, _) = large().knowledge("cities in the sf bay area");
        let (tiny_cities, _) = tiny().knowledge("cities in the sf bay area");
        assert!(tiny_cities.len() < large_cities.len());
    }

    #[test]
    fn determinism() {
        let a = tiny().knowledge("cities in the sf bay area").0;
        let b = tiny().knowledge("cities in the sf bay area").0;
        assert_eq!(a, b);
        let (i1, _, _) = tiny().classify_intent("hello");
        let (i2, _, _) = tiny().classify_intent("hello");
        assert_eq!(i1, i2);
    }

    #[test]
    fn nl_to_sql_delegates() {
        let tables = vec![TableSchema {
            name: "jobs".into(),
            columns: vec![("id".into(), "int".into()), ("city".into(), "text".into())],
        }];
        let mut values = HashMap::new();
        values.insert("city".to_string(), vec!["oakland".to_string()]);
        let (sql, usage) = large().nl_to_sql("how many jobs in oakland", &tables, &values);
        assert_eq!(
            sql.as_deref(),
            Some("SELECT COUNT(*) AS n FROM jobs WHERE city = 'oakland'")
        );
        assert!(usage.cost > 0.0);
    }

    #[test]
    fn summarize_rows_mentions_shape() {
        let rows = json!([
            {"city": "san francisco", "n": 2},
            {"city": "oakland", "n": 1}
        ]);
        let (s, _) = large().summarize_rows(&rows);
        assert!(s.contains("2 rows"));
        assert!(s.contains("city"));
        assert!(s.contains("For example"));
        let (empty, _) = large().summarize_rows(&json!([]));
        assert!(empty.contains("no rows"));
    }

    #[test]
    fn summarize_text_takes_first_sentence() {
        let (s, _) = large().summarize_text("First point. Second point. Third.");
        assert!(s.starts_with("First point."));
        assert!(s.contains("5 words total")); // "First point. Second point. Third." = 5 words
        let (e, _) = large().summarize_text("");
        assert_eq!(e, "Empty input.");
    }

    #[test]
    fn complete_uses_knowledge_or_acknowledges() {
        let (grounded, _) = large().complete("cities in the sf bay area");
        assert!(grounded.contains("san francisco"));
        let (fallback, _) = large().complete("xyzzy");
        assert!(fallback.contains("sim-large"));
    }

    #[test]
    fn stream_tokens_splits() {
        assert_eq!(
            SimLlm::stream_tokens("a b  c"),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
        assert!(SimLlm::stream_tokens("").is_empty());
    }

    #[test]
    fn cost_scales_with_tier() {
        let (_, u_large) = large().knowledge("cities in the sf bay area");
        let (_, u_tiny) = tiny().knowledge("cities in the sf bay area");
        assert!(u_large.cost > u_tiny.cost);
        assert!(u_large.latency_micros > u_tiny.latency_micros);
    }

    #[test]
    fn parametric_source_round_trip() {
        let src = ParametricSource::new("gpt-knowledge", Arc::new(large()));
        assert_eq!(src.modality(), "parametric");
        let q = SourceQuery::Knowledge("cities in the sf bay area".into());
        assert!(src.supports(&q));
        let r = src.query(&q).unwrap();
        assert!(r.rows >= 5);
        let est = src.estimate(&q);
        assert!(est.cost_units > 0.0);
        assert!(est.accuracy > 0.9);
        assert!(src.query(&SourceQuery::KvGet("x".into())).is_err());
        assert!(src
            .query(&SourceQuery::Knowledge("unknown topic".into()))
            .is_err());
    }

    #[test]
    fn custom_knowledge_base() {
        let kb = Arc::new(KnowledgeBase::empty());
        kb.add("test topic", ["answer"]);
        let llm = SimLlm::with_knowledge(ModelProfile::large(), kb);
        assert_eq!(llm.knowledge("test topic").0, ["answer"]);
    }

    #[test]
    fn fault_fail_call_degrades_model_answers() {
        use blueprint_resilience::{FaultInjector, FaultPlan, FaultSite};
        let always_fail = Arc::new(FaultInjector::new(
            FaultPlan::none(7).with_model_fail_rate(1.0),
        ));
        let llm = SimLlm::new(ModelProfile::large()).with_faults(Arc::clone(&always_fail));
        let (answers, usage) = llm.knowledge("cities in the sf bay area");
        assert!(answers.is_empty(), "failed call yields no answers");
        assert!(usage.cost > 0.0, "failed calls are still billed");
        let (text, _) = llm.complete("cities in the sf bay area");
        assert!(text.contains("transient model error"));
        assert!(always_fail.count(FaultSite::ModelCall) >= 2);
    }

    #[test]
    fn fault_stall_inflates_latency_only() {
        use blueprint_resilience::{FaultInjector, FaultPlan};
        let clean = large();
        let (baseline, clean_usage) = clean.knowledge("cities in the sf bay area");

        let stall = Arc::new(FaultInjector::new(
            FaultPlan::none(7).with_model_stall(1.0, 123_456),
        ));
        let slow = SimLlm::new(ModelProfile::large()).with_faults(stall);
        let (answers, slow_usage) = slow.knowledge("cities in the sf bay area");
        assert_eq!(answers, baseline, "stall must not change the answer");
        assert_eq!(
            slow_usage.latency_micros,
            clean_usage.latency_micros + 123_456
        );
        assert_eq!(slow_usage.cost, clean_usage.cost);
    }

    #[test]
    fn parametric_source_fault_is_unavailable_not_notfound() {
        use blueprint_resilience::{FaultInjector, FaultPlan};
        let always_fail = Arc::new(FaultInjector::new(
            FaultPlan::none(7).with_model_fail_rate(1.0),
        ));
        let llm = Arc::new(SimLlm::new(ModelProfile::large()).with_faults(always_fail));
        let src = ParametricSource::new("gpt-knowledge", llm);
        let q = SourceQuery::Knowledge("cities in the sf bay area".into());
        assert!(matches!(src.query(&q), Err(DataError::Unavailable(_))));
        // Estimates stay intact so the planner can still price the source.
        assert!(src.estimate(&q).cost_units > 0.0);
    }

    #[test]
    fn metrics_meter_calls_and_tokens() {
        let metrics = MetricsRegistry::new();
        let llm = large();
        llm.set_metrics(&metrics);
        let (_, _, u1) = llm.classify_intent(RUNNING_EXAMPLE);
        let (_, u2) = llm.extract_criteria(RUNNING_EXAMPLE);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("blueprint.llmsim.calls"), 2);
        assert_eq!(
            snap.counter("blueprint.llmsim.tokens_out"),
            (u1.tokens_out + u2.tokens_out) as u64
        );
    }

    #[test]
    fn corrupted_nl2sql_drops_where() {
        // Find a question the tiny tier corrupts; verify the WHERE is gone.
        let tables = vec![TableSchema {
            name: "jobs".into(),
            columns: vec![("city".into(), "text".into())],
        }];
        let mut values = HashMap::new();
        values.insert("city".to_string(), vec!["oakland".to_string()]);
        let llm = tiny();
        let mut saw_corruption = false;
        for i in 0..200 {
            let q = format!("jobs in oakland please variant {i}");
            let (sql, _) = llm.nl_to_sql(&q, &tables, &values);
            let sql = sql.unwrap();
            if !sql.contains("WHERE") {
                saw_corruption = true;
                break;
            }
        }
        assert!(saw_corruption, "tiny tier should corrupt some queries");
    }
}
