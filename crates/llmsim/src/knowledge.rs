//! Seeded parametric knowledge base.
//!
//! Stands in for the world knowledge of a hosted LLM. It ships with the
//! facts the paper's running example needs — cities in the SF bay area,
//! related job titles, skills per role — and accepts additional facts so
//! examples and tests can extend it.

use std::collections::HashMap;

use parking_lot::RwLock;

/// Topic-keyed lists of facts with keyword lookup.
#[derive(Default)]
pub struct KnowledgeBase {
    /// topic (lowercased keyword set) → answers
    facts: RwLock<HashMap<String, Vec<String>>>,
}

/// Function words that carry no topical signal and would otherwise inflate
/// token-overlap scores ("cities in the X" matching any "... in the ..."
/// topic).
const STOPWORDS: [&str; 14] = [
    "a", "an", "the", "in", "of", "for", "to", "are", "is", "what", "which", "list", "me", "please",
];

fn normalize(topic: &str) -> String {
    let lower = topic.to_lowercase();
    let mut tokens: Vec<&str> = lower
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty() && !STOPWORDS.contains(t))
        .collect();
    tokens.sort_unstable();
    tokens.dedup();
    tokens.join(" ")
}

impl KnowledgeBase {
    /// An empty knowledge base.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The built-in knowledge the HR scenario relies on.
    pub fn builtin() -> Self {
        let kb = Self::empty();
        kb.add(
            "cities in the sf bay area",
            [
                "san francisco",
                "oakland",
                "san jose",
                "berkeley",
                "palo alto",
                "mountain view",
                "sunnyvale",
                "fremont",
            ],
        );
        kb.add(
            "titles related to data scientist",
            [
                "data scientist",
                "machine learning engineer",
                "data analyst",
                "research scientist",
                "applied scientist",
                "statistician",
            ],
        );
        kb.add(
            "skills required for data scientist",
            [
                "python",
                "sql",
                "statistics",
                "machine learning",
                "data visualization",
                "communication",
            ],
        );
        kb.add(
            "skills required for machine learning engineer",
            ["python", "pytorch", "distributed systems", "mlops", "sql"],
        );
        kb.add(
            "cities in new york metro area",
            ["new york", "jersey city", "newark", "brooklyn", "queens"],
        );
        kb
    }

    /// Registers a fact list under a topic.
    pub fn add<I, S>(&self, topic: &str, answers: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.facts.write().insert(
            normalize(topic),
            answers.into_iter().map(Into::into).collect(),
        );
    }

    /// Looks up the best-matching topic for a question: the topic sharing
    /// the most tokens with the question (at least 2, or an exact match).
    pub fn lookup(&self, question: &str) -> Option<Vec<String>> {
        let facts = self.facts.read();
        let qnorm = normalize(question);
        if let Some(exact) = facts.get(&qnorm) {
            return Some(exact.clone());
        }
        let qtokens: Vec<&str> = qnorm.split(' ').filter(|t| !t.is_empty()).collect();
        let mut best: Option<(usize, &String, &Vec<String>)> = None;
        for (topic, answers) in facts.iter() {
            let overlap = topic.split(' ').filter(|t| qtokens.contains(t)).count();
            let better = match best {
                Some((b, bt, _)) => overlap > b || (overlap == b && topic < bt),
                None => true,
            };
            if overlap >= 2 && better {
                best = Some((overlap, topic, answers));
            }
        }
        best.map(|(_, _, answers)| answers.clone())
    }

    /// Number of topics known.
    pub fn len(&self) -> usize {
        self.facts.read().len()
    }

    /// True if no topics are known.
    pub fn is_empty(&self) -> bool {
        self.facts.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_answers_bay_area_cities() {
        let kb = KnowledgeBase::builtin();
        let cities = kb.lookup("list the cities in the SF bay area").unwrap();
        assert!(cities.contains(&"san francisco".to_string()));
        assert!(cities.contains(&"oakland".to_string()));
        assert!(cities.len() >= 5);
    }

    #[test]
    fn lookup_is_order_insensitive() {
        let kb = KnowledgeBase::builtin();
        let a = kb.lookup("sf bay area cities").unwrap();
        let b = kb.lookup("cities in the sf bay area").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn related_titles() {
        let kb = KnowledgeBase::builtin();
        let titles = kb.lookup("titles related to data scientist").unwrap();
        assert!(titles.contains(&"machine learning engineer".to_string()));
    }

    #[test]
    fn unknown_topic_is_none() {
        let kb = KnowledgeBase::builtin();
        assert!(kb.lookup("weather on neptune").is_none());
        assert!(kb.lookup("").is_none());
    }

    #[test]
    fn single_token_overlap_is_insufficient() {
        let kb = KnowledgeBase::builtin();
        // "cities" alone matches several topics with one token — rejected.
        assert!(kb.lookup("zork").is_none());
    }

    #[test]
    fn custom_facts_extend() {
        let kb = KnowledgeBase::empty();
        assert!(kb.is_empty());
        kb.add("capitals of europe", ["paris", "berlin"]);
        assert_eq!(kb.len(), 1);
        let got = kb.lookup("what are the capitals of europe").unwrap();
        assert_eq!(got, ["paris", "berlin"]);
    }

    #[test]
    fn ties_resolve_deterministically() {
        let kb = KnowledgeBase::empty();
        kb.add("alpha beta", ["1"]);
        kb.add("alpha beta gamma delta", ["2"]);
        // Both share 2 tokens with the question; lexicographically smaller
        // normalized topic wins → "alpha beta".
        let got = kb.lookup("alpha beta").unwrap();
        assert_eq!(got, ["1"]);
    }
}
