//! # blueprint-llmsim
//!
//! A deterministic simulated LLM. The paper's architecture treats LLMs as
//! (a) agents with a cost/latency/accuracy profile and (b) *data sources*
//! holding parametric knowledge (§V-G: "'cities in the SF bay area' might be
//! obtained from an OpenAI model"). This reproduction has no model weights,
//! so the simulator substitutes task heads that exercise exactly the same
//! code paths:
//!
//! * intent classification (Fig 10's Intent Classifier),
//! * criteria extraction (`PROFILER.CRITERIA ← USER.TEXT`),
//! * NL→SQL translation over a provided schema (the NL2Q agent),
//! * summarization/explanation of query results (Query Summarizer),
//! * parametric knowledge lookup backed by a seeded [`KnowledgeBase`],
//! * token-stream completion output (streams carry tokens as messages).
//!
//! Determinism: every head is a pure function of (model seed, input).
//! Model tiers ([`ModelProfile`]) differ in cost, latency, and *simulated
//! accuracy* — lower-tier models corrupt a seeded fraction of their outputs,
//! which is what makes the optimizer's accuracy/cost trade-off measurable in
//! the benches.

pub mod intent;
pub mod knowledge;
pub mod llm;
pub mod model;
pub mod nl2sql;

pub use intent::Intent;
pub use knowledge::KnowledgeBase;
pub use llm::{ExtractedCriteria, ParametricSource, SimLlm, Usage};
pub use model::ModelProfile;
