//! Model tiers and their QoS profiles.

use serde::{Deserialize, Serialize};

/// The QoS profile of a simulated model tier.
///
/// The optimizer (§V-G) chooses between tiers by these numbers; the
/// simulator *enacts* them: cost and latency are charged per token, and
/// `accuracy` is the probability each generated item survives uncorrupted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Tier name (`sim-large`, `sim-small`, `sim-tiny`).
    pub name: String,
    /// Cost units per 1000 tokens (in + out).
    pub cost_per_1k_tokens: f64,
    /// Fixed per-call latency in simulated microseconds.
    pub base_latency_micros: u64,
    /// Additional latency per generated token in simulated microseconds.
    pub latency_per_token_micros: u64,
    /// Probability each output item is correct, in `[0, 1]`.
    pub accuracy: f64,
    /// Seed mixed into the corruption hash (distinct tiers disagree).
    pub seed: u64,
}

impl ModelProfile {
    /// The flagship tier: accurate, slow, expensive.
    pub fn large() -> Self {
        ModelProfile {
            name: "sim-large".into(),
            cost_per_1k_tokens: 10.0,
            base_latency_micros: 200_000,
            latency_per_token_micros: 20_000,
            accuracy: 0.98,
            seed: 101,
        }
    }

    /// The workhorse tier: cheaper and faster, less accurate.
    pub fn small() -> Self {
        ModelProfile {
            name: "sim-small".into(),
            cost_per_1k_tokens: 1.0,
            base_latency_micros: 60_000,
            latency_per_token_micros: 5_000,
            accuracy: 0.90,
            seed: 202,
        }
    }

    /// The edge tier: nearly free, fast, noticeably lossy.
    pub fn tiny() -> Self {
        ModelProfile {
            name: "sim-tiny".into(),
            cost_per_1k_tokens: 0.1,
            base_latency_micros: 15_000,
            latency_per_token_micros: 1_000,
            accuracy: 0.75,
            seed: 303,
        }
    }

    /// All built-in tiers, cheapest last.
    pub fn tiers() -> Vec<ModelProfile> {
        vec![Self::large(), Self::small(), Self::tiny()]
    }

    /// Cost of a call with the given token counts.
    pub fn call_cost(&self, tokens_in: usize, tokens_out: usize) -> f64 {
        self.cost_per_1k_tokens * (tokens_in + tokens_out) as f64 / 1000.0
    }

    /// Latency of a call generating `tokens_out` tokens.
    pub fn call_latency_micros(&self, tokens_out: usize) -> u64 {
        self.base_latency_micros + self.latency_per_token_micros * tokens_out as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered_by_cost_and_accuracy() {
        let l = ModelProfile::large();
        let s = ModelProfile::small();
        let t = ModelProfile::tiny();
        assert!(l.cost_per_1k_tokens > s.cost_per_1k_tokens);
        assert!(s.cost_per_1k_tokens > t.cost_per_1k_tokens);
        assert!(l.accuracy > s.accuracy);
        assert!(s.accuracy > t.accuracy);
        assert!(l.base_latency_micros > t.base_latency_micros);
    }

    #[test]
    fn call_cost_scales_with_tokens() {
        let m = ModelProfile::small();
        assert!((m.call_cost(500, 500) - 1.0).abs() < 1e-9);
        assert_eq!(m.call_cost(0, 0), 0.0);
    }

    #[test]
    fn call_latency_includes_base_and_per_token() {
        let m = ModelProfile::tiny();
        assert_eq!(m.call_latency_micros(0), 15_000);
        assert_eq!(m.call_latency_micros(10), 25_000);
    }

    #[test]
    fn tiers_list_has_three() {
        assert_eq!(ModelProfile::tiers().len(), 3);
    }
}
