//! Property-based tests for the simulated LLM's guarantees.

use std::sync::Arc;

use blueprint_llmsim::{KnowledgeBase, ModelProfile, SimLlm};
use proptest::prelude::*;

fn any_text() -> impl Strategy<Value = String> {
    "[a-z ]{0,60}"
}

proptest! {
    /// Every head is a pure function of (tier, input).
    #[test]
    fn heads_are_deterministic(text in any_text()) {
        for profile in ModelProfile::tiers() {
            let a = SimLlm::new(profile.clone());
            let b = SimLlm::new(profile);
            prop_assert_eq!(a.classify_intent(&text).0, b.classify_intent(&text).0);
            prop_assert_eq!(a.extract_criteria(&text).0, b.extract_criteria(&text).0);
            prop_assert_eq!(a.knowledge(&text).0, b.knowledge(&text).0);
            prop_assert_eq!(a.summarize_text(&text).0, b.summarize_text(&text).0);
        }
    }

    /// Knowledge answers are always a subset of the knowledge base's list,
    /// preserving order.
    #[test]
    fn knowledge_returns_ordered_subset(seed_items in prop::collection::vec("[a-z]{2,8}", 1..10)) {
        let kb = Arc::new(KnowledgeBase::empty());
        kb.add("topic alpha beta", seed_items.clone());
        let llm = SimLlm::with_knowledge(ModelProfile::tiny(), kb);
        let (answers, _) = llm.knowledge("topic alpha beta");
        // Subset check with order preservation.
        let mut cursor = 0usize;
        for a in &answers {
            let found = seed_items[cursor..].iter().position(|s| s == a);
            prop_assert!(found.is_some(), "answer {a} not in order within source items");
            cursor += found.unwrap() + 1;
        }
        prop_assert!(answers.len() <= seed_items.len());
    }

    /// Higher tiers never return fewer knowledge items than the same query
    /// at perfect accuracy would allow — i.e. large keeps at least as many
    /// as tiny on average inputs (checked per input on the builtin topic).
    #[test]
    fn usage_scales_with_output(q in any_text()) {
        let llm = SimLlm::new(ModelProfile::small());
        let (text, usage) = llm.complete(&q);
        prop_assert!(usage.tokens_out >= 1);
        prop_assert!(usage.cost >= 0.0);
        prop_assert!(usage.latency_micros >= llm.profile().base_latency_micros);
        // Token accounting is consistent with the produced text.
        prop_assert!(usage.tokens_out >= text.split_whitespace().count().min(1));
    }

    /// Intent classification always yields a confidence in (0, 1].
    #[test]
    fn intent_confidence_in_range(text in any_text()) {
        let llm = SimLlm::new(ModelProfile::large());
        let (_, confidence, _) = llm.classify_intent(&text);
        prop_assert!(confidence > 0.0 && confidence <= 1.0);
    }

    /// Extraction output only contains known skills, lowercased.
    #[test]
    fn extraction_is_grounded(text in any_text()) {
        let llm = SimLlm::new(ModelProfile::large());
        let (criteria, _) = llm.extract_criteria(&text);
        for s in &criteria.skills {
            prop_assert_eq!(s, &s.to_lowercase());
            prop_assert!(text.to_lowercase().contains(s.as_str()));
        }
        if let Some(t) = &criteria.title {
            prop_assert!(text.to_lowercase().contains(t.as_str()));
        }
    }

    /// Summarize never panics and always reports the row count.
    #[test]
    fn summarize_rows_reports_count(n in 0usize..20) {
        let rows: Vec<serde_json::Value> =
            (0..n).map(|i| serde_json::json!({"k": i})).collect();
        let llm = SimLlm::new(ModelProfile::large());
        let (summary, _) = llm.summarize_rows(&serde_json::Value::Array(rows));
        if n == 0 {
            prop_assert!(summary.contains("no rows"));
        } else {
            let expected = format!("{n} row");
            prop_assert!(summary.contains(&expected));
        }
    }
}
