//! Messages: the unit of data and control exchanged over streams.
//!
//! A stream is a sequence of messages. Each message carries either **data**
//! (text, structured JSON values, tokens of LLM output, UI events) or a
//! **control** instruction (e.g. "execute the SUMMARIZER agent with these
//! inputs"). Control messages are what let the task coordinator drive an
//! agentic workflow entirely *through* the streams database, keeping the
//! orchestration observable (§V-A, §V-H).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::tag::Tag;

/// Globally unique message identifier (store-assigned, monotonically
/// increasing across all streams).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Whether a message carries data or a control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Payload is data shared between components.
    Data,
    /// Payload is an instruction for one or more components.
    Control,
    /// End-of-stream marker: the producer signals it is done.
    Eos,
}

/// A single message on a stream.
///
/// Messages are immutable once published; the store wraps them in `Arc` so
/// fan-out to many subscribers never copies the payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Message {
    /// Store-assigned unique id (0 until published).
    pub id: MessageId,
    /// Position within the owning stream (0-based; assigned on publish).
    pub seq: u64,
    /// Data vs. control.
    pub kind: MessageKind,
    /// Tags enabling selective consumption (e.g. `nlq`, `sql`, `plan`).
    pub tags: BTreeSet<Tag>,
    /// The payload: arbitrary JSON value.
    pub payload: Value,
    /// Component that produced the message (agent name, "user", ...).
    pub producer: String,
    /// Simulated time of publication in microseconds.
    pub published_at_micros: u64,
}

impl Message {
    /// Creates an unpublished data message with a string payload.
    pub fn data(text: impl Into<String>) -> Self {
        Self::from_value(MessageKind::Data, Value::String(text.into()))
    }

    /// Creates an unpublished data message with a JSON payload.
    pub fn data_json(value: Value) -> Self {
        Self::from_value(MessageKind::Data, value)
    }

    /// Creates an unpublished control message.
    ///
    /// `op` names the instruction (e.g. `execute-agent`) and `args` carries
    /// its parameters. The op is also added as a tag so components can
    /// subscribe to specific instructions.
    pub fn control(op: impl AsRef<str>, args: Value) -> Self {
        let op = op.as_ref();
        let mut msg = Self::from_value(
            MessageKind::Control,
            serde_json::json!({ "op": op, "args": args }),
        );
        msg.tags.insert(Tag::new(op));
        msg
    }

    /// Creates an end-of-stream marker.
    pub fn eos() -> Self {
        Self::from_value(MessageKind::Eos, Value::Null)
    }

    fn from_value(kind: MessageKind, payload: Value) -> Self {
        Message {
            id: MessageId(0),
            seq: 0,
            kind,
            tags: BTreeSet::new(),
            payload,
            producer: String::new(),
            published_at_micros: 0,
        }
    }

    /// Builder-style: adds a tag.
    pub fn with_tag(mut self, tag: impl Into<Tag>) -> Self {
        self.tags.insert(tag.into());
        self
    }

    /// Builder-style: adds several tags.
    pub fn with_tags<I, T>(mut self, tags: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Tag>,
    {
        self.tags.extend(tags.into_iter().map(Into::into));
        self
    }

    /// Builder-style: sets the producer.
    pub fn from_producer(mut self, producer: impl Into<String>) -> Self {
        self.producer = producer.into();
        self
    }

    /// True if this is a control message.
    pub fn is_control(&self) -> bool {
        self.kind == MessageKind::Control
    }

    /// True if this is the end-of-stream marker.
    pub fn is_eos(&self) -> bool {
        self.kind == MessageKind::Eos
    }

    /// For control messages, returns the operation name.
    pub fn control_op(&self) -> Option<&str> {
        if self.kind != MessageKind::Control {
            return None;
        }
        self.payload.get("op").and_then(Value::as_str)
    }

    /// For control messages, returns the instruction arguments.
    pub fn control_args(&self) -> Option<&Value> {
        if self.kind != MessageKind::Control {
            return None;
        }
        self.payload.get("args")
    }

    /// True if the message carries the given tag.
    pub fn has_tag(&self, tag: &Tag) -> bool {
        self.tags.contains(tag)
    }

    /// Text content, if the payload is a JSON string.
    pub fn text(&self) -> Option<&str> {
        self.payload.as_str()
    }

    /// Rough payload size in bytes: used by budget accounting and the
    /// streams-throughput bench.
    pub fn payload_size(&self) -> usize {
        match &self.payload {
            Value::String(s) => s.len(),
            Value::Null => 0,
            other => serde_json::to_string(other).map(|s| s.len()).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_message_has_text() {
        let m = Message::data("hello");
        assert_eq!(m.kind, MessageKind::Data);
        assert_eq!(m.text(), Some("hello"));
        assert!(!m.is_control());
    }

    #[test]
    fn control_message_exposes_op_and_args() {
        let m = Message::control("execute-agent", serde_json::json!({"agent": "summarizer"}));
        assert!(m.is_control());
        assert_eq!(m.control_op(), Some("execute-agent"));
        assert_eq!(
            m.control_args().unwrap()["agent"],
            Value::String("summarizer".into())
        );
        // op is auto-tagged
        assert!(m.has_tag(&Tag::new("execute-agent")));
    }

    #[test]
    fn data_message_has_no_control_op() {
        let m = Message::data_json(serde_json::json!({"op": "fake"}));
        assert_eq!(m.control_op(), None);
        assert_eq!(m.control_args(), None);
    }

    #[test]
    fn eos_marker() {
        let m = Message::eos();
        assert!(m.is_eos());
        assert_eq!(m.payload, Value::Null);
    }

    #[test]
    fn builder_tags_and_producer() {
        let m = Message::data("x")
            .with_tag("NLQ")
            .with_tags(["sql", "SQL"])
            .from_producer("user");
        assert!(m.has_tag(&Tag::new("nlq")));
        assert!(m.has_tag(&Tag::new("sql")));
        assert_eq!(m.tags.len(), 2); // duplicate normalized away
        assert_eq!(m.producer, "user");
    }

    #[test]
    fn payload_size_estimates() {
        assert_eq!(Message::data("abcd").payload_size(), 4);
        assert_eq!(Message::eos().payload_size(), 0);
        let m = Message::data_json(serde_json::json!({"k": 1}));
        assert!(m.payload_size() >= 7); // {"k":1}
    }

    #[test]
    fn serde_round_trip() {
        let m = Message::control("plan", serde_json::json!([1, 2, 3])).with_tag("plan");
        let json = serde_json::to_string(&m).unwrap();
        let back: Message = serde_json::from_str(&json).unwrap();
        assert_eq!(back.control_op(), Some("plan"));
        assert!(back.has_tag(&Tag::new("plan")));
    }

    #[test]
    fn message_id_display() {
        assert_eq!(MessageId(17).to_string(), "m17");
    }
}
