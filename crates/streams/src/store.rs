//! The stream store: the paper's "streams database".
//!
//! A [`StreamStore`] owns every stream in the system, assigns globally unique
//! message ids, fans published messages out to matching subscriptions, and
//! exposes observability counters. It is the single shared data resource
//! through which *all* data and control flows — which is precisely what makes
//! the architecture observable and controllable (§V-A).
//!
//! # Sharding
//!
//! The store is internally sharded so concurrent sessions never contend on a
//! single lock: every stream id maps to one of [`SHARD_COUNT`] shards via its
//! *shard key* — `session:<id>` for session-scoped streams (first two `:`
//! segments), the first segment otherwise. Each shard owns its streams and
//! the subscriptions that can be proven to only ever match streams of that
//! shard ([`Selector::Stream`] and unambiguous [`Selector::Scope`]s); the
//! remaining subscriptions ([`Selector::AllStreams`], [`Selector::StreamTagged`],
//! and the bare `session` scope) live on a global list consulted by every
//! publish. The hot path of a session — publishing to and subscribing on its
//! own streams — therefore takes only that session's shard lock.
//!
//! Per-stream delivery order is preserved: append and fan-out still happen
//! under one critical section (the stream's shard lock), and publishers to
//! the same stream serialize on that lock even when a subscriber is global.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blueprint_observability::{Counter, MetricsRegistry, SimClock};
use blueprint_resilience::{FaultInjector, InjectedFault};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::RwLock;

use crate::error::StreamError;
use crate::message::{Message, MessageId};
use crate::monitor::FlowMonitor;
use crate::stream::{Stream, StreamId, StreamState};
use crate::subscription::{Selector, Subscription, TagFilter};
use crate::tag::Tag;
use crate::Result;

/// Number of independently locked shards. A power of two comfortably above
/// typical core counts: enough to keep concurrent sessions on distinct locks
/// without bloating the per-store footprint.
pub const SHARD_COUNT: usize = 16;

/// Snapshot of the counters describing store activity (observability
/// surface).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Streams created since startup.
    pub streams_created: u64,
    /// Messages published across all streams.
    pub messages_published: u64,
    /// Message hand-offs to matching subscriptions (one message fanned out
    /// to three subscribers counts three deliveries). Counted at fan-out,
    /// before the receiver can observe the message; a hand-off to a
    /// just-dropped subscriber still counts once before the entry is pruned.
    pub deliveries: u64,
    /// Total payload bytes published.
    pub bytes_published: u64,
    /// Currently registered subscriptions.
    pub active_subscriptions: u64,
    /// Messages whose fan-out was suppressed by an injected drop fault.
    pub faults_dropped: u64,
    /// Messages delivered twice due to an injected duplication fault.
    pub faults_duplicated: u64,
    /// Messages whose delivery was delayed by an injected delay fault.
    pub faults_delayed: u64,
}

/// Live counters behind [`StoreStats`]. Plain atomics keep the publish fast
/// path lock-free on the stats side: counters are monotonic sums (relaxed
/// `fetch_add` suffices) except `active_subscriptions`, a gauge adjusted with
/// relaxed add/sub as subscriptions register, unregister, and get pruned.
#[derive(Default)]
struct StatCells {
    streams_created: AtomicU64,
    messages_published: AtomicU64,
    deliveries: AtomicU64,
    bytes_published: AtomicU64,
    active_subscriptions: AtomicU64,
    faults_dropped: AtomicU64,
    faults_duplicated: AtomicU64,
    faults_delayed: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            streams_created: self.streams_created.load(Ordering::Relaxed),
            messages_published: self.messages_published.load(Ordering::Relaxed),
            deliveries: self.deliveries.load(Ordering::Relaxed),
            bytes_published: self.bytes_published.load(Ordering::Relaxed),
            active_subscriptions: self.active_subscriptions.load(Ordering::Relaxed),
            faults_dropped: self.faults_dropped.load(Ordering::Relaxed),
            faults_duplicated: self.faults_duplicated.load(Ordering::Relaxed),
            faults_delayed: self.faults_delayed.load(Ordering::Relaxed),
        }
    }
}

/// Named instruments the store reports into, resolved once at wiring time
/// (see [`StreamStore::set_metrics`]) so the publish path pays one atomic
/// add per counter and no registry lookup. Defaults to disarmed no-ops.
#[derive(Clone, Default)]
struct StreamInstruments {
    publishes: Counter,
    deliveries: Counter,
    bytes_published: Counter,
}

#[derive(Debug)]
struct SubEntry {
    id: u64,
    selector: Selector,
    filter: TagFilter,
    tx: Sender<Arc<Message>>,
}

/// One independently locked slice of the store: its streams plus the
/// subscriptions that can only ever match streams of this shard.
#[derive(Default)]
struct Shard {
    streams: HashMap<StreamId, Stream>,
    subs: Vec<SubEntry>,
}

/// Where a subscription lives, decided once at registration from its
/// selector.
enum SubHome {
    /// The selector can only match streams of one shard.
    Shard(usize),
    /// The selector may match streams across shards (`AllStreams`,
    /// `StreamTagged`, bare `session` scope): consulted on every publish.
    Global,
}

/// FNV-1a over the shard key: cheap and deterministic across processes, so
/// a given session always lands on the same shard.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard key of a stream id: `session:<id>` (first two segments) for
/// session-scoped ids, the first `:` segment otherwise.
fn shard_key(id: &str) -> &str {
    let first_len = id.find(':').unwrap_or(id.len());
    let first = &id[..first_len];
    if first == "session" && first_len < id.len() {
        let rest = &id[first_len + 1..];
        let second_len = rest.find(':').unwrap_or(rest.len());
        &id[..first_len + 1 + second_len]
    } else {
        first
    }
}

fn shard_index(id: &str) -> usize {
    (fnv1a(shard_key(id).as_bytes()) % SHARD_COUNT as u64) as usize
}

/// Routes a selector to the one shard it can match, or to the global list.
fn route(selector: &Selector) -> SubHome {
    match selector {
        Selector::Stream(id) => SubHome::Shard(shard_index(id.as_str())),
        Selector::Scope(prefix) => {
            // A scope prefix pins a shard iff every stream under it shares
            // one shard key. Bare `session` (no session id) spans them all.
            let first_len = prefix.find(':').unwrap_or(prefix.len());
            if &prefix[..first_len] == "session" && first_len == prefix.len() {
                SubHome::Global
            } else {
                SubHome::Shard(shard_index(prefix))
            }
        }
        Selector::AllStreams | Selector::StreamTagged(_) => SubHome::Global,
    }
}

/// Thread-safe store of all streams plus the pub/sub fabric over them.
///
/// Cloning the store yields another handle onto the same shared state, so a
/// single store can be handed to every agent, planner, and coordinator.
#[derive(Clone)]
pub struct StreamStore {
    shards: Arc<Vec<RwLock<Shard>>>,
    global_subs: Arc<RwLock<Vec<SubEntry>>>,
    next_msg_id: Arc<AtomicU64>,
    next_sub_id: Arc<AtomicU64>,
    stats: Arc<StatCells>,
    clock: SimClock,
    monitor: FlowMonitor,
    faults: Arc<RwLock<Option<Arc<FaultInjector>>>>,
    instruments: Arc<RwLock<StreamInstruments>>,
}

impl Default for StreamStore {
    fn default() -> Self {
        Self::with_clock(SimClock::new())
    }
}

impl StreamStore {
    /// Creates an empty store with its own simulated clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store sharing the given clock.
    pub fn with_clock(clock: SimClock) -> Self {
        StreamStore {
            shards: Arc::new((0..SHARD_COUNT).map(|_| RwLock::default()).collect()),
            global_subs: Arc::new(RwLock::new(Vec::new())),
            next_msg_id: Arc::new(AtomicU64::new(1)),
            next_sub_id: Arc::new(AtomicU64::new(1)),
            stats: Arc::new(StatCells::default()),
            clock,
            monitor: FlowMonitor::new(),
            faults: Arc::new(RwLock::new(None)),
            instruments: Arc::new(RwLock::new(StreamInstruments::default())),
        }
    }

    /// Attaches a metrics registry: subsequent publishes report into the
    /// `blueprint.streams.*` instruments (in addition to the always-on
    /// [`StoreStats`] counters). Mirrors [`StreamStore::set_fault_injector`]
    /// for late binding after construction.
    pub fn set_metrics(&self, metrics: &MetricsRegistry) {
        *self.instruments.write() = StreamInstruments {
            publishes: metrics.counter("blueprint.streams.publishes"),
            deliveries: metrics.counter("blueprint.streams.deliveries"),
            bytes_published: metrics.counter("blueprint.streams.bytes_published"),
        };
    }

    /// Attaches a fault injector: subsequent publishes consult it for
    /// drop/duplicate/delay decisions on the delivery path. Messages are
    /// always appended to their stream (the store stays the source of
    /// truth); faults perturb fan-out only, modelling in-transit loss.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        *self.faults.write() = Some(injector);
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.faults.read().clone()
    }

    /// The simulated clock shared with the rest of the runtime.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The flow monitor recording producer→stream→consumer edges.
    pub fn monitor(&self) -> &FlowMonitor {
        &self.monitor
    }

    fn shard_for(&self, id: &StreamId) -> &RwLock<Shard> {
        &self.shards[shard_index(id.as_str())]
    }

    /// Creates a new stream with the given id and stream-level tags.
    pub fn create_stream<I, T>(&self, id: impl Into<StreamId>, tags: I) -> Result<StreamId>
    where
        I: IntoIterator<Item = T>,
        T: Into<Tag>,
    {
        let id = id.into();
        if id.as_str().is_empty() {
            return Err(StreamError::Invalid("empty stream id".into()));
        }
        let mut shard = self.shard_for(&id).write();
        if shard.streams.contains_key(&id) {
            return Err(StreamError::Duplicate(id));
        }
        let stream = Stream::new(id.clone(), tags, self.clock.now_micros());
        shard.streams.insert(id.clone(), stream);
        self.stats.streams_created.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Creates the stream if absent; returns the id either way.
    pub fn ensure_stream<I, T>(&self, id: impl Into<StreamId>, tags: I) -> Result<StreamId>
    where
        I: IntoIterator<Item = T>,
        T: Into<Tag>,
    {
        let id = id.into();
        match self.create_stream(id.clone(), tags) {
            Ok(id) => Ok(id),
            Err(StreamError::Duplicate(_)) => Ok(id),
            Err(e) => Err(e),
        }
    }

    /// True if the stream exists.
    pub fn contains(&self, id: &StreamId) -> bool {
        self.shard_for(id).read().streams.contains_key(id)
    }

    /// Adds a stream-level tag (retagging), waking up tag-based subscribers
    /// for *future* messages.
    pub fn tag_stream(&self, id: &StreamId, tag: impl Into<Tag>) -> Result<()> {
        let mut shard = self.shard_for(id).write();
        let stream = shard
            .streams
            .get_mut(id)
            .ok_or_else(|| StreamError::NotFound(id.clone()))?;
        stream.add_tag(tag);
        Ok(())
    }

    /// Publishes a message onto a stream, fanning it out to every matching
    /// subscription. Returns the stored message (with id/seq/time assigned).
    pub fn publish(&self, id: &StreamId, mut msg: Message) -> Result<Arc<Message>> {
        msg.id = MessageId(self.next_msg_id.fetch_add(1, Ordering::Relaxed));
        msg.published_at_micros = self.clock.now_micros();

        // Fault decision is taken up front (keyed by stream + message id) so
        // the same seeded plan perturbs the same publishes on every run.
        let fault = self
            .faults
            .read()
            .as_ref()
            .filter(|inj| inj.publish_armed())
            .and_then(|inj| inj.publish_fault(&format!("{}#{}", id.as_str(), msg.id.0)));
        let copies: usize = match &fault {
            Some(InjectedFault::DropMessage) => 0,
            Some(InjectedFault::DuplicateMessage) => 2,
            _ => 1,
        };

        // Append, deliver, and prune under one critical section — the
        // stream's shard lock: delivering outside it would let two
        // concurrent publishers hand a subscriber seq 1 before seq 0 (the
        // channels are unbounded, so the sends never block). Global
        // subscribers are reached under a read lock taken *inside* the
        // shard section, so per-stream order holds for them too; cross-shard
        // publishes proceed in parallel. Lock order everywhere: shard(s)
        // ascending, then the global list.
        let mut delayed_txs: Vec<Sender<Arc<Message>>> = Vec::new();
        let mut dead_global: Vec<u64> = Vec::new();
        let instruments = self.instruments.read().clone();
        let arc = {
            let mut guard = self.shard_for(id).write();
            let shard: &mut Shard = &mut guard;
            let stream = shard
                .streams
                .get_mut(id)
                .ok_or_else(|| StreamError::NotFound(id.clone()))?;
            let stream_tags = stream.tags().clone();
            let arc = stream.append(msg)?;
            // Record the publish (monitor AND counters) before any
            // subscriber can observe the message: a fast consumer thread
            // must never act on a message whose publish is not yet counted —
            // a metrics snapshot taken by whoever it unblocks would
            // under-report an already-observable publish.
            self.monitor.record_publish(&arc.producer, id, &arc);
            self.stats
                .messages_published
                .fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_published
                .fetch_add(arc.payload_size() as u64, Ordering::Relaxed);
            instruments.publishes.inc();
            instruments.bytes_published.add(arc.payload_size() as u64);
            let mut dead_local: Vec<u64> = Vec::new();
            Self::fan_out(
                &shard.subs,
                id,
                &stream_tags,
                &arc,
                &fault,
                copies,
                &self.stats,
                &instruments,
                &mut delayed_txs,
                &mut dead_local,
            );
            if !dead_local.is_empty() {
                // Prune by subscription id (stable under concurrent
                // subscribe/unsubscribe), never by position.
                let before = shard.subs.len();
                shard.subs.retain(|s| !dead_local.contains(&s.id));
                self.stats
                    .active_subscriptions
                    .fetch_sub((before - shard.subs.len()) as u64, Ordering::Relaxed);
            }
            let globals = self.global_subs.read();
            Self::fan_out(
                &globals,
                id,
                &stream_tags,
                &arc,
                &fault,
                copies,
                &self.stats,
                &instruments,
                &mut delayed_txs,
                &mut dead_global,
            );
            arc
        };
        if !dead_global.is_empty() {
            // Outside the shard lock: pruning by id is stable even if a
            // racing publish collected the same dead entries.
            let mut globals = self.global_subs.write();
            let before = globals.len();
            globals.retain(|s| !dead_global.contains(&s.id));
            self.stats
                .active_subscriptions
                .fetch_sub((before - globals.len()) as u64, Ordering::Relaxed);
        }

        let stats = &self.stats;
        match &fault {
            Some(InjectedFault::DropMessage) => {
                stats.faults_dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some(InjectedFault::DuplicateMessage) => {
                stats.faults_duplicated.fetch_add(1, Ordering::Relaxed);
            }
            Some(InjectedFault::DelayMessage { .. }) => {
                stats.faults_delayed.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }

        // Delayed delivery happens off-thread: the message is already durably
        // appended, only its fan-out lags (in-transit latency fault). Capped
        // so a fault plan cannot wedge the fabric.
        if let Some(InjectedFault::DelayMessage { micros }) = &fault {
            if !delayed_txs.is_empty() {
                let wait = std::time::Duration::from_micros((*micros).min(100_000));
                let late = Arc::clone(&arc);
                let stats = Arc::clone(&self.stats);
                std::thread::spawn(move || {
                    std::thread::sleep(wait);
                    for tx in delayed_txs {
                        // Count before the send, like the immediate path.
                        stats.deliveries.fetch_add(1, Ordering::Relaxed);
                        instruments.deliveries.inc();
                        let _ = tx.send(Arc::clone(&late));
                    }
                });
            }
        }

        Ok(arc)
    }

    /// Delivers one appended message to every matching entry of one
    /// subscription list, collecting dead entries for pruning by id. Each
    /// hand-off is counted *before* its send: a receiver that observes the
    /// message (and whatever it unblocks) must find the delivery already
    /// metered. A send to a just-dropped subscriber still counts as one
    /// delivery attempt; the entry is then pruned.
    #[allow(clippy::too_many_arguments)]
    fn fan_out(
        subs: &[SubEntry],
        id: &StreamId,
        stream_tags: &std::collections::BTreeSet<Tag>,
        arc: &Arc<Message>,
        fault: &Option<InjectedFault>,
        copies: usize,
        stats: &StatCells,
        instruments: &StreamInstruments,
        delayed_txs: &mut Vec<Sender<Arc<Message>>>,
        dead: &mut Vec<u64>,
    ) {
        for s in subs {
            if s.selector.matches(id, stream_tags) && s.filter.matches(arc) {
                if matches!(fault, Some(InjectedFault::DelayMessage { .. })) {
                    delayed_txs.push(s.tx.clone());
                    continue;
                }
                for _ in 0..copies {
                    stats.deliveries.fetch_add(1, Ordering::Relaxed);
                    instruments.deliveries.inc();
                    if s.tx.send(Arc::clone(arc)).is_err() {
                        dead.push(s.id);
                        break;
                    }
                }
            }
        }
    }

    /// Convenience: ensure the stream exists, then publish.
    pub fn publish_to<I, T>(
        &self,
        id: impl Into<StreamId>,
        tags: I,
        msg: Message,
    ) -> Result<Arc<Message>>
    where
        I: IntoIterator<Item = T>,
        T: Into<Tag>,
    {
        let id = self.ensure_stream(id, tags)?;
        self.publish(&id, msg)
    }

    /// Registers a subscription. Matching messages published *after* this
    /// call are delivered in publish order.
    pub fn subscribe(&self, selector: Selector, filter: TagFilter) -> Result<Subscription> {
        let (tx, rx) = unbounded();
        let id = self.next_sub_id.fetch_add(1, Ordering::Relaxed);
        let entry = SubEntry {
            id,
            selector: selector.clone(),
            filter: filter.clone(),
            tx,
        };
        match route(&selector) {
            SubHome::Shard(i) => self.shards[i].write().subs.push(entry),
            SubHome::Global => self.global_subs.write().push(entry),
        }
        self.stats
            .active_subscriptions
            .fetch_add(1, Ordering::Relaxed);
        Ok(Subscription {
            id,
            rx,
            selector,
            filter,
        })
    }

    /// Registers a subscription and immediately replays the existing history
    /// of every currently matching stream (catch-up semantics).
    pub fn subscribe_with_replay(
        &self,
        selector: Selector,
        filter: TagFilter,
    ) -> Result<Subscription> {
        let (tx, rx) = unbounded();
        let id = self.next_sub_id.fetch_add(1, Ordering::Relaxed);
        // Replay under lock so no published message is missed or duplicated:
        // a shard-homed subscription needs only its shard's lock; a global
        // one holds read locks on every shard (ascending, matching the
        // publish lock order) until it is registered, which stalls
        // publishers exactly for the catch-up window.
        match route(&selector) {
            SubHome::Shard(i) => {
                let mut shard = self.shards[i].write();
                let mut history = Self::matching_history(&shard.streams, &selector, &filter);
                history.sort_by_key(|m| m.id);
                for m in history {
                    let _ = tx.send(m);
                }
                shard.subs.push(SubEntry {
                    id,
                    selector: selector.clone(),
                    filter: filter.clone(),
                    tx,
                });
            }
            SubHome::Global => {
                let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
                let mut history: Vec<Arc<Message>> = Vec::new();
                for guard in &guards {
                    history.extend(Self::matching_history(&guard.streams, &selector, &filter));
                }
                history.sort_by_key(|m| m.id);
                for m in history {
                    let _ = tx.send(m);
                }
                self.global_subs.write().push(SubEntry {
                    id,
                    selector: selector.clone(),
                    filter: filter.clone(),
                    tx,
                });
            }
        }
        self.stats
            .active_subscriptions
            .fetch_add(1, Ordering::Relaxed);
        Ok(Subscription {
            id,
            rx,
            selector,
            filter,
        })
    }

    fn matching_history(
        streams: &HashMap<StreamId, Stream>,
        selector: &Selector,
        filter: &TagFilter,
    ) -> Vec<Arc<Message>> {
        let mut history = Vec::new();
        for stream in streams.values() {
            if selector.matches(stream.id(), stream.tags()) {
                history.extend(
                    stream
                        .read_from(0)
                        .into_iter()
                        .filter(|m| filter.matches(m)),
                );
            }
        }
        history
    }

    /// Removes a subscription by id. Unknown ids are ignored.
    pub fn unsubscribe(&self, sub_id: u64) {
        let mut removed = 0usize;
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            let before = shard.subs.len();
            shard.subs.retain(|s| s.id != sub_id);
            removed += before - shard.subs.len();
        }
        {
            let mut globals = self.global_subs.write();
            let before = globals.len();
            globals.retain(|s| s.id != sub_id);
            removed += before - globals.len();
        }
        self.stats
            .active_subscriptions
            .fetch_sub(removed as u64, Ordering::Relaxed);
    }

    /// Reads a stream's history starting at `from` (replay; does not consume).
    pub fn read(&self, id: &StreamId, from: u64) -> Result<Vec<Arc<Message>>> {
        let shard = self.shard_for(id).read();
        let stream = shard
            .streams
            .get(id)
            .ok_or_else(|| StreamError::NotFound(id.clone()))?;
        Ok(stream.read_from(from))
    }

    /// The most recent message on a stream.
    pub fn last(&self, id: &StreamId) -> Result<Option<Arc<Message>>> {
        let shard = self.shard_for(id).read();
        let stream = shard
            .streams
            .get(id)
            .ok_or_else(|| StreamError::NotFound(id.clone()))?;
        Ok(stream.last())
    }

    /// Lifecycle state of a stream.
    pub fn state(&self, id: &StreamId) -> Result<StreamState> {
        let shard = self.shard_for(id).read();
        let stream = shard
            .streams
            .get(id)
            .ok_or_else(|| StreamError::NotFound(id.clone()))?;
        Ok(stream.state())
    }

    /// Closes a stream by publishing an EOS marker.
    pub fn close(&self, id: &StreamId) -> Result<()> {
        self.publish(id, Message::eos()).map(|_| ())
    }

    /// Lists all stream ids, optionally restricted to a session scope.
    pub fn list_streams(&self, scope: Option<&str>) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.read();
            ids.extend(
                shard
                    .streams
                    .keys()
                    .filter(|id| scope.is_none_or(|p| id.is_scoped_under(p)))
                    .cloned(),
            );
        }
        ids.sort();
        ids
    }

    /// Removes every stream scoped under `scope` (session reaping). Returns
    /// the number of streams removed. Subscriptions are left in place: a
    /// retired scope's streams receive no further publishes, so its
    /// subscribers simply drain and disconnect when dropped.
    pub fn remove_scope(&self, scope: &str) -> usize {
        let mut removed = 0;
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            let doomed: Vec<StreamId> = shard
                .streams
                .keys()
                .filter(|id| id.is_scoped_under(scope))
                .cloned()
                .collect();
            for id in doomed {
                shard.streams.remove(&id);
                removed += 1;
            }
        }
        removed
    }

    /// Snapshot of the observability counters.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn create_and_duplicate() {
        let store = StreamStore::new();
        let id = store.create_stream("s1", ["a"]).unwrap();
        assert!(store.contains(&id));
        assert!(matches!(
            store.create_stream("s1", ["a"]),
            Err(StreamError::Duplicate(_))
        ));
        assert_eq!(store.ensure_stream("s1", ["a"]).unwrap(), id);
    }

    #[test]
    fn empty_stream_id_rejected() {
        let store = StreamStore::new();
        assert!(matches!(
            store.create_stream("", ["a"]),
            Err(StreamError::Invalid(_))
        ));
    }

    #[test]
    fn publish_assigns_global_ids_and_time() {
        let store = StreamStore::new();
        store.clock().advance_micros(50);
        let a = store.create_stream("a", Vec::<Tag>::new()).unwrap();
        let b = store.create_stream("b", Vec::<Tag>::new()).unwrap();
        let m1 = store.publish(&a, Message::data("1")).unwrap();
        let m2 = store.publish(&b, Message::data("2")).unwrap();
        assert!(m2.id > m1.id);
        assert_eq!(m1.published_at_micros, 50);
    }

    #[test]
    fn publish_to_missing_stream_errors() {
        let store = StreamStore::new();
        let err = store
            .publish(&StreamId::new("nope"), Message::data("x"))
            .unwrap_err();
        assert!(matches!(err, StreamError::NotFound(_)));
    }

    #[test]
    fn subscription_receives_in_order() {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let sub = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        for i in 0..10 {
            store.publish(&id, Message::data(format!("{i}"))).unwrap();
        }
        for i in 0..10 {
            let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.text(), Some(format!("{i}").as_str()));
            assert_eq!(m.seq, i);
        }
        assert_eq!(sub.queued(), 0);
    }

    #[test]
    fn tag_based_decentralized_activation() {
        // A message tagged SQL reaches the SQL subscriber only.
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let sql_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["sql"]))
            .unwrap();
        let nlq_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["nlq"]))
            .unwrap();
        store
            .publish(&id, Message::data("SELECT 1").with_tag("SQL"))
            .unwrap();
        assert!(sql_sub.try_recv().unwrap().is_some());
        assert!(nlq_sub.try_recv().unwrap().is_none());
    }

    #[test]
    fn stream_tag_selector_sees_new_streams() {
        let store = StreamStore::new();
        let sub = store
            .subscribe(
                Selector::StreamTagged(Tag::new("user-text")),
                TagFilter::all(),
            )
            .unwrap();
        // Stream created after the subscription still matches.
        let id = store.create_stream("later", ["user-text"]).unwrap();
        store.publish(&id, Message::data("hi")).unwrap();
        assert_eq!(sub.recv().unwrap().text(), Some("hi"));
    }

    #[test]
    fn scope_selector_isolates_sessions() {
        let store = StreamStore::new();
        let s1 = store
            .create_stream("session:1:user", Vec::<Tag>::new())
            .unwrap();
        let s2 = store
            .create_stream("session:2:user", Vec::<Tag>::new())
            .unwrap();
        let sub = store
            .subscribe(Selector::Scope("session:1".into()), TagFilter::all())
            .unwrap();
        store.publish(&s1, Message::data("mine")).unwrap();
        store.publish(&s2, Message::data("other")).unwrap();
        let got = sub.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].text(), Some("mine"));
    }

    #[test]
    fn bare_session_scope_spans_all_sessions() {
        // `Scope("session")` cannot be pinned to one shard: it must see
        // every session's streams via the global list.
        let store = StreamStore::new();
        let sub = store
            .subscribe(Selector::Scope("session".into()), TagFilter::all())
            .unwrap();
        for i in 0..8 {
            let id = store
                .create_stream(format!("session:{i}:user"), Vec::<Tag>::new())
                .unwrap();
            store.publish(&id, Message::data(format!("m{i}"))).unwrap();
        }
        assert_eq!(sub.drain().len(), 8);
    }

    #[test]
    fn replay_subscription_catches_up_then_continues() {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        store.publish(&id, Message::data("old1")).unwrap();
        store.publish(&id, Message::data("old2")).unwrap();
        let sub = store
            .subscribe_with_replay(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        store.publish(&id, Message::data("new")).unwrap();
        let got: Vec<_> = (0..3).map(|_| sub.recv().unwrap()).collect();
        let texts: Vec<_> = got.iter().map(|m| m.text().unwrap()).collect();
        assert_eq!(texts, ["old1", "old2", "new"]);
    }

    #[test]
    fn global_replay_merges_shards_in_message_id_order() {
        let store = StreamStore::new();
        // Streams on (very likely) different shards, interleaved publishes.
        let a = store
            .create_stream("session:1:out", Vec::<Tag>::new())
            .unwrap();
        let b = store
            .create_stream("session:2:out", Vec::<Tag>::new())
            .unwrap();
        store.publish(&a, Message::data("a1")).unwrap();
        store.publish(&b, Message::data("b1")).unwrap();
        store.publish(&a, Message::data("a2")).unwrap();
        let sub = store
            .subscribe_with_replay(Selector::AllStreams, TagFilter::all())
            .unwrap();
        let texts: Vec<String> = sub
            .drain()
            .iter()
            .map(|m| m.text().unwrap().to_string())
            .collect();
        assert_eq!(texts, ["a1", "b1", "a2"]);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let sub = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        store.unsubscribe(sub.id());
        store.publish(&id, Message::data("x")).unwrap();
        // The store dropped its sender, so the channel reports disconnection
        // with nothing buffered.
        assert_eq!(sub.try_recv().unwrap_err(), StreamError::Disconnected);
        assert_eq!(store.stats().active_subscriptions, 0);
    }

    #[test]
    fn dropped_subscription_is_pruned_on_publish() {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let sub = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        drop(sub);
        store.publish(&id, Message::data("x")).unwrap();
        assert_eq!(store.stats().active_subscriptions, 0);
    }

    #[test]
    fn dropped_global_subscription_is_pruned_on_publish() {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let sub = store
            .subscribe(Selector::AllStreams, TagFilter::all())
            .unwrap();
        drop(sub);
        store.publish(&id, Message::data("x")).unwrap();
        assert_eq!(store.stats().active_subscriptions, 0);
    }

    #[test]
    fn pruning_dead_subscriptions_keeps_live_ones() {
        // Interleave dropped and live subscriptions; after a publish prunes
        // the dead ones, the live ones must still receive messages.
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let live1 = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        let dead1 = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        let live2 = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        let dead2 = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        drop(dead1);
        drop(dead2);
        store.publish(&id, Message::data("first")).unwrap();
        assert_eq!(store.stats().active_subscriptions, 2);
        store.publish(&id, Message::data("second")).unwrap();
        for live in [&live1, &live2] {
            let texts: Vec<String> = live
                .drain()
                .iter()
                .map(|m| m.text().unwrap().to_string())
                .collect();
            assert_eq!(texts, ["first", "second"]);
        }
    }

    #[test]
    fn retagging_stream_enables_future_matches() {
        let store = StreamStore::new();
        let id = store.create_stream("q", Vec::<Tag>::new()).unwrap();
        let sub = store
            .subscribe(Selector::StreamTagged(Tag::new("nlq")), TagFilter::all())
            .unwrap();
        store.publish(&id, Message::data("before")).unwrap();
        store.tag_stream(&id, "NLQ").unwrap();
        store.publish(&id, Message::data("after")).unwrap();
        let got = sub.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].text(), Some("after"));
    }

    #[test]
    fn close_publishes_eos_and_blocks_appends() {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        store.close(&id).unwrap();
        assert_eq!(store.state(&id).unwrap(), StreamState::Closed);
        assert!(store.publish(&id, Message::data("late")).is_err());
    }

    #[test]
    fn stats_track_activity() {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let _sub1 = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        let _sub2 = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        store.publish(&id, Message::data("abcd")).unwrap();
        let stats = store.stats();
        assert_eq!(stats.streams_created, 1);
        assert_eq!(stats.messages_published, 1);
        assert_eq!(stats.deliveries, 2);
        assert_eq!(stats.bytes_published, 4);
        assert_eq!(stats.active_subscriptions, 2);
    }

    #[test]
    fn metrics_instruments_mirror_stats() {
        let store = StreamStore::new();
        let metrics = MetricsRegistry::new();
        store.set_metrics(&metrics);
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let _sub = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        store.publish(&id, Message::data("abcd")).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("blueprint.streams.publishes"), 1);
        assert_eq!(snap.counter("blueprint.streams.deliveries"), 1);
        assert_eq!(snap.counter("blueprint.streams.bytes_published"), 4);
    }

    #[test]
    fn list_streams_respects_scope() {
        let store = StreamStore::new();
        store
            .create_stream("session:1:a", Vec::<Tag>::new())
            .unwrap();
        store
            .create_stream("session:1:b", Vec::<Tag>::new())
            .unwrap();
        store
            .create_stream("session:2:a", Vec::<Tag>::new())
            .unwrap();
        assert_eq!(store.list_streams(None).len(), 3);
        assert_eq!(store.list_streams(Some("session:1")).len(), 2);
    }

    #[test]
    fn remove_scope_reaps_only_that_session() {
        let store = StreamStore::new();
        store
            .create_stream("session:1:user", Vec::<Tag>::new())
            .unwrap();
        store
            .create_stream("session:1:task:0:n1", Vec::<Tag>::new())
            .unwrap();
        let keep = store
            .create_stream("session:2:user", Vec::<Tag>::new())
            .unwrap();
        assert_eq!(store.remove_scope("session:1"), 2);
        assert!(store.list_streams(Some("session:1")).is_empty());
        assert!(store.contains(&keep));
        // Reaping is idempotent.
        assert_eq!(store.remove_scope("session:1"), 0);
    }

    #[test]
    fn shard_key_groups_sessions_and_top_level_scopes() {
        assert_eq!(shard_key("session:42:user"), "session:42");
        assert_eq!(shard_key("session:42:task:7:n1"), "session:42");
        assert_eq!(shard_key("session:42"), "session:42");
        assert_eq!(shard_key("session"), "session");
        assert_eq!(shard_key("pool:instructions"), "pool");
        assert_eq!(shard_key("plain"), "plain");
        // Every stream of one session shares a shard.
        assert_eq!(
            shard_index("session:9:user"),
            shard_index("session:9:task:3:n2")
        );
    }

    #[test]
    fn concurrent_publishers_deliver_to_subscribers_in_seq_order() {
        // Delivery happens under the same critical section as the append,
        // so a subscriber must observe strictly increasing sequence numbers
        // even with racing publishers.
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let sub = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::all())
            .unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = store.clone();
                let id = id.clone();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        store.publish(&id, Message::data("x")).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut last = None;
        let mut count = 0;
        while let Ok(Some(m)) = sub.try_recv() {
            if let Some(prev) = last {
                assert!(
                    m.seq > prev,
                    "delivery out of order: {} after {prev}",
                    m.seq
                );
            }
            last = Some(m.seq);
            count += 1;
        }
        assert_eq!(count, 1_000);
    }

    #[test]
    fn concurrent_publishers_preserve_per_stream_order_for_global_subs() {
        // A global (AllStreams) subscriber still sees each stream's messages
        // in seq order: fan-out to the global list happens inside the
        // publishing stream's shard section.
        let store = StreamStore::new();
        let sub = store
            .subscribe(Selector::AllStreams, TagFilter::all())
            .unwrap();
        let ids: Vec<StreamId> = (0..4)
            .map(|i| {
                store
                    .create_stream(format!("session:{i}:out"), Vec::<Tag>::new())
                    .unwrap()
            })
            .collect();
        let handles: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let store = store.clone();
                let id = id.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        store.publish(&id, Message::data(format!("{i}"))).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut next_seq: HashMap<String, u64> = HashMap::new();
        let mut count = 0;
        while let Ok(Some(m)) = sub.try_recv() {
            let source = m.text().unwrap().to_string();
            let expected = next_seq.entry(source).or_insert(0);
            assert_eq!(m.seq, *expected, "per-stream delivery out of order");
            *expected += 1;
            count += 1;
        }
        assert_eq!(count, 400);
    }

    #[test]
    fn concurrent_publishers_preserve_per_stream_order() {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let store = store.clone();
                let id = id.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        store
                            .publish(&id, Message::data(format!("{t}-{i}")))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = store.read(&id, 0).unwrap();
        assert_eq!(history.len(), 400);
        // Sequence numbers are dense and strictly increasing.
        for (i, m) in history.iter().enumerate() {
            assert_eq!(m.seq, i as u64);
        }
    }
}
