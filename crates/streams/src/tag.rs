//! Tags: lightweight labels attached to streams and messages.
//!
//! Tags drive *decentralized* activation (§V-B of the paper): an agent
//! declares inclusion/exclusion rules over tags (see
//! [`TagFilter`](crate::subscription::TagFilter)) and is triggered whenever a
//! matching message appears — e.g. a message tagged `SQL` triggers the
//! `SQLExecutor` agent. Tags are case-insensitive and interned behind an
//! `Arc<str>` so cloning them is cheap on the publish hot path.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize, Value};

/// A case-insensitive label attached to a stream or message.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(Arc<str>);

impl Tag {
    /// Creates a tag, normalizing to lowercase.
    pub fn new(name: impl AsRef<str>) -> Self {
        let normalized = name.as_ref().trim().to_ascii_lowercase();
        Tag(Arc::from(normalized.as_str()))
    }

    /// Returns the normalized tag text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Tag {
    fn from(s: &str) -> Self {
        Tag::new(s)
    }
}

impl From<String> for Tag {
    fn from(s: String) -> Self {
        Tag::new(s)
    }
}

impl Serialize for Tag {
    fn serialize(&self) -> Value {
        Value::String(self.0.to_string())
    }
}

impl Deserialize for Tag {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let s = String::deserialize(value)?;
        Ok(Tag::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_case_and_whitespace() {
        assert_eq!(Tag::new("  SQL "), Tag::new("sql"));
        assert_eq!(Tag::new("NLQ").as_str(), "nlq");
    }

    #[test]
    fn display_matches_as_str() {
        let t = Tag::new("Plan");
        assert_eq!(t.to_string(), "plan");
        assert_eq!(t.as_str(), "plan");
    }

    #[test]
    fn from_conversions() {
        let a: Tag = "abc".into();
        let b: Tag = String::from("ABC").into();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tag::new("Summary");
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "\"summary\"");
        let back: Tag = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut tags = [Tag::new("b"), Tag::new("a"), Tag::new("c")];
        tags.sort();
        let names: Vec<_> = tags.iter().map(Tag::as_str).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
