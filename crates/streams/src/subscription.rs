//! Subscriptions: how components listen to streams.
//!
//! The paper's agents are "activated centrally through explicit instructions
//! or in a decentralized manner by monitoring designated tags within streams,
//! defined by inclusion and exclusion rules" (§V-B). A [`Selector`] picks
//! *which streams* to watch and a [`TagFilter`] picks *which messages* on
//! those streams to receive.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use serde::{Deserialize, Serialize};

use crate::error::StreamError;
use crate::message::Message;
use crate::stream::StreamId;
use crate::tag::Tag;
use crate::Result;

/// Selects which streams a subscription covers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selector {
    /// Every stream in the store.
    AllStreams,
    /// A single stream by id.
    Stream(StreamId),
    /// Every stream carrying the given stream-level tag.
    StreamTagged(Tag),
    /// Every stream whose id is scoped under the given prefix
    /// (session scoping, e.g. `session:42`).
    Scope(String),
}

impl Selector {
    /// True if a stream with the given id and tags is covered.
    pub fn matches(&self, id: &StreamId, stream_tags: &std::collections::BTreeSet<Tag>) -> bool {
        match self {
            Selector::AllStreams => true,
            Selector::Stream(want) => want == id,
            Selector::StreamTagged(tag) => stream_tags.contains(tag),
            Selector::Scope(prefix) => id.is_scoped_under(prefix),
        }
    }
}

/// Inclusion/exclusion rules over message tags.
///
/// A message passes if it carries **at least one** included tag (or the
/// include list is empty, meaning "any") and carries **none** of the excluded
/// tags. Exclusion wins over inclusion.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagFilter {
    /// Tags of interest; empty means all messages.
    pub include: Vec<Tag>,
    /// Tags to reject even when included.
    pub exclude: Vec<Tag>,
}

impl TagFilter {
    /// Matches every message.
    pub fn all() -> Self {
        TagFilter::default()
    }

    /// Matches messages carrying any of the given tags.
    pub fn any_of<I, T>(tags: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Tag>,
    {
        TagFilter {
            include: tags.into_iter().map(Into::into).collect(),
            exclude: Vec::new(),
        }
    }

    /// Builder-style: adds exclusions.
    pub fn excluding<I, T>(mut self, tags: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Tag>,
    {
        self.exclude.extend(tags.into_iter().map(Into::into));
        self
    }

    /// True if the message's tags satisfy the rules.
    pub fn matches(&self, msg: &Message) -> bool {
        if self.exclude.iter().any(|t| msg.tags.contains(t)) {
            return false;
        }
        self.include.is_empty() || self.include.iter().any(|t| msg.tags.contains(t))
    }
}

/// A live subscription handle delivering matching messages in publish order.
///
/// Dropping the subscription detaches it from the store (delivery to a
/// disconnected channel is silently skipped and the registration is pruned).
#[derive(Debug)]
pub struct Subscription {
    pub(crate) id: u64,
    pub(crate) rx: Receiver<Arc<Message>>,
    pub(crate) selector: Selector,
    pub(crate) filter: TagFilter,
}

impl Subscription {
    /// The store-assigned subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The stream selector this subscription was created with.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// The message tag filter this subscription was created with.
    pub fn filter(&self) -> &TagFilter {
        &self.filter
    }

    /// Direct access to the underlying channel receiver, for callers that
    /// multiplex several subscriptions with `crossbeam::channel::Select`.
    pub fn receiver(&self) -> &Receiver<Arc<Message>> {
        &self.rx
    }

    /// Blocks until the next matching message arrives.
    pub fn recv(&self) -> Result<Arc<Message>> {
        self.rx.recv().map_err(|_| StreamError::Disconnected)
    }

    /// Blocks up to `timeout` for the next matching message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Arc<Message>> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => StreamError::Timeout,
            RecvTimeoutError::Disconnected => StreamError::Disconnected,
        })
    }

    /// Returns the next message if one is already queued.
    pub fn try_recv(&self) -> Result<Option<Arc<Message>>> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(StreamError::Disconnected),
        }
    }

    /// Drains every message currently queued.
    pub fn drain(&self) -> Vec<Arc<Message>> {
        let mut out = Vec::new();
        while let Ok(Some(m)) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Number of messages currently queued.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn tags(names: &[&str]) -> BTreeSet<Tag> {
        names.iter().map(Tag::new).collect()
    }

    #[test]
    fn selector_all_matches_everything() {
        let id = StreamId::new("x");
        assert!(Selector::AllStreams.matches(&id, &tags(&[])));
    }

    #[test]
    fn selector_by_id() {
        let id = StreamId::new("a:b");
        assert!(Selector::Stream(StreamId::new("a:b")).matches(&id, &tags(&[])));
        assert!(!Selector::Stream(StreamId::new("a:c")).matches(&id, &tags(&[])));
    }

    #[test]
    fn selector_by_stream_tag() {
        let id = StreamId::new("s");
        assert!(Selector::StreamTagged(Tag::new("nlq")).matches(&id, &tags(&["NLQ", "x"])));
        assert!(!Selector::StreamTagged(Tag::new("sql")).matches(&id, &tags(&["nlq"])));
    }

    #[test]
    fn selector_by_scope() {
        let id = StreamId::new("session:7:plan");
        assert!(Selector::Scope("session:7".into()).matches(&id, &tags(&[])));
        assert!(!Selector::Scope("session:70".into()).matches(&id, &tags(&[])));
    }

    #[test]
    fn tag_filter_empty_include_matches_all() {
        let m = Message::data("x");
        assert!(TagFilter::all().matches(&m));
    }

    #[test]
    fn tag_filter_include_requires_one() {
        let m = Message::data("x").with_tag("sql");
        assert!(TagFilter::any_of(["sql", "nlq"]).matches(&m));
        assert!(!TagFilter::any_of(["plan"]).matches(&m));
    }

    #[test]
    fn tag_filter_exclusion_wins() {
        let m = Message::data("x").with_tag("sql").with_tag("internal");
        let f = TagFilter::any_of(["sql"]).excluding(["internal"]);
        assert!(!f.matches(&m));
        // Exclusion applies even with an empty include list.
        let f2 = TagFilter::all().excluding(["internal"]);
        assert!(!f2.matches(&m));
    }
}
