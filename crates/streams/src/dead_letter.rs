//! Dead-letter stream: quarantine for messages that exhausted their retries.
//!
//! When the coordinator (or any other consumer) gives up on an instruction —
//! retries exhausted, circuit stuck open, no fallback left — the offending
//! message is *quarantined* onto a per-scope dead-letter stream instead of
//! being silently discarded. Each entry carries failure metadata (reason,
//! attempt count, failing component) alongside the original payload and tags,
//! so operators can inspect the damage and [`DeadLetterQueue::replay`] the
//! originals once the fault clears. Because the dead-letter stream is an
//! ordinary stream in the [`StreamStore`], it inherits the fabric's
//! observability for free.

use std::sync::Arc;

use serde::Value;
use serde_json::json;

use crate::message::Message;
use crate::store::StreamStore;
use crate::stream::StreamId;
use crate::Result;

/// Stream-name segment (and tag) used for dead-letter streams.
pub const DEAD_LETTER_SEGMENT: &str = "dead-letter";

/// Control op carried by quarantine messages.
pub const DEAD_LETTER_OP: &str = "dead-letter";

/// One quarantined message, decoded from the dead-letter stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetterEntry {
    /// Why the message was quarantined.
    pub reason: String,
    /// How many attempts were made before giving up.
    pub attempts: u64,
    /// The component that gave up (agent name, coordinator, ...).
    pub source: String,
    /// The original message payload.
    pub payload: Value,
    /// The original message tags.
    pub tags: Vec<String>,
    /// When the quarantine happened (store clock, micros).
    pub quarantined_at_micros: u64,
}

/// Handle to the dead-letter stream of one session scope.
#[derive(Clone)]
pub struct DeadLetterQueue {
    store: StreamStore,
    stream: StreamId,
}

impl DeadLetterQueue {
    /// Creates (or attaches to) the dead-letter stream for `scope`.
    pub fn for_scope(store: &StreamStore, scope: &str) -> Result<Self> {
        let stream = store.ensure_stream(
            format!("{scope}:{DEAD_LETTER_SEGMENT}"),
            [DEAD_LETTER_SEGMENT],
        )?;
        Ok(DeadLetterQueue {
            store: store.clone(),
            stream,
        })
    }

    /// The underlying stream id.
    pub fn stream_id(&self) -> &StreamId {
        &self.stream
    }

    /// Quarantines a message with failure metadata. The original payload and
    /// tags ride along so the message can be replayed later.
    pub fn quarantine(
        &self,
        original: &Message,
        reason: &str,
        attempts: u64,
        source: &str,
    ) -> Result<Arc<Message>> {
        let tags: Vec<Value> = original
            .tags
            .iter()
            .map(|t| Value::String(t.to_string()))
            .collect();
        let entry = Message::control(
            DEAD_LETTER_OP,
            json!({
                "reason": reason,
                "attempts": attempts,
                "source": source,
                "original_payload": original.payload.clone(),
                "original_tags": Value::Array(tags),
            }),
        )
        .with_tag(DEAD_LETTER_SEGMENT)
        .from_producer(source);
        self.store.publish(&self.stream, entry)
    }

    /// All quarantined entries, oldest first.
    pub fn entries(&self) -> Result<Vec<DeadLetterEntry>> {
        let msgs = self.store.read(&self.stream, 0)?;
        Ok(msgs.iter().filter_map(|m| decode(m)).collect())
    }

    /// Number of quarantined entries.
    pub fn len(&self) -> Result<usize> {
        Ok(self.entries()?.len())
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Replays every quarantined original onto `target`, re-applying the
    /// original tags plus a `replayed` marker. Returns how many messages were
    /// replayed. The dead-letter stream itself is append-only, so the
    /// quarantine history survives the replay.
    pub fn replay(&self, target: &StreamId) -> Result<usize> {
        let mut replayed = 0;
        for entry in self.entries()? {
            let mut msg = Message::data_json(entry.payload.clone()).with_tag("replayed");
            for tag in &entry.tags {
                msg = msg.with_tag(tag.as_str());
            }
            self.store
                .publish(target, msg.from_producer("dead-letter-replay"))?;
            replayed += 1;
        }
        Ok(replayed)
    }
}

fn decode(msg: &Message) -> Option<DeadLetterEntry> {
    if msg.control_op() != Some(DEAD_LETTER_OP) {
        return None;
    }
    let args = msg.control_args()?;
    Some(DeadLetterEntry {
        reason: args["reason"].as_str().unwrap_or("unknown").to_string(),
        attempts: args["attempts"].as_u64().unwrap_or(0),
        source: args["source"].as_str().unwrap_or("unknown").to_string(),
        payload: args["original_payload"].clone(),
        tags: args["original_tags"]
            .as_array()
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default(),
        quarantined_at_micros: msg.published_at_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscription::{Selector, TagFilter};
    use crate::tag::Tag;

    #[test]
    fn quarantine_and_decode() {
        let store = StreamStore::new();
        let dlq = DeadLetterQueue::for_scope(&store, "session:1").unwrap();
        assert!(dlq.is_empty().unwrap());

        let original = Message::data("find me a data scientist")
            .with_tag("instructions")
            .from_producer("coordinator");
        dlq.quarantine(&original, "retries exhausted", 3, "coordinator")
            .unwrap();

        let entries = dlq.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].reason, "retries exhausted");
        assert_eq!(entries[0].attempts, 3);
        assert_eq!(entries[0].source, "coordinator");
        assert_eq!(
            entries[0].payload.as_str(),
            Some("find me a data scientist")
        );
        assert!(entries[0].tags.contains(&"instructions".to_string()));
    }

    #[test]
    fn replay_restores_originals() {
        let store = StreamStore::new();
        let dlq = DeadLetterQueue::for_scope(&store, "session:2").unwrap();
        let target = store.create_stream("session:2:retry", ["retry"]).unwrap();

        let sub = store
            .subscribe(Selector::Stream(target.clone()), TagFilter::all())
            .unwrap();

        for i in 0..3 {
            let original = Message::data(format!("payload-{i}")).with_tag("work");
            dlq.quarantine(&original, "agent crashed", 2, "writer")
                .unwrap();
        }
        assert_eq!(dlq.len().unwrap(), 3);

        let replayed = dlq.replay(&target).unwrap();
        assert_eq!(replayed, 3);
        for i in 0..3 {
            let msg = sub.try_recv().unwrap().unwrap();
            assert_eq!(msg.text(), Some(format!("payload-{i}")).as_deref());
            assert!(msg.has_tag(&Tag::new("work")));
            assert!(msg.has_tag(&Tag::new("replayed")));
        }
        // Quarantine history survives the replay.
        assert_eq!(dlq.len().unwrap(), 3);
    }

    #[test]
    fn dead_letter_stream_is_observable() {
        let store = StreamStore::new();
        let dlq = DeadLetterQueue::for_scope(&store, "session:3").unwrap();
        let sub = store
            .subscribe(
                Selector::StreamTagged(Tag::new(DEAD_LETTER_SEGMENT)),
                TagFilter::all(),
            )
            .unwrap();
        dlq.quarantine(&Message::data("x"), "boom", 1, "agent-a")
            .unwrap();
        let msg = sub.try_recv().unwrap().unwrap();
        assert_eq!(msg.control_op(), Some(DEAD_LETTER_OP));
    }
}
