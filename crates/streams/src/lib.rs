//! # blueprint-streams
//!
//! Streams are the central *orchestration* concept of the blueprint
//! architecture ("Orchestrating Agents and Data for Enterprise", ICDE 2025,
//! §V-A): append-only sequences of messages carrying **data** or **control**
//! instructions, dynamically produced, distributed, monitored, and consumed.
//!
//! Streams are modelled as first-class data structures held in a
//! [`StreamStore`] (the paper's "streams database"). Components subscribe to
//! streams — selecting by stream identity, stream tags, message tags, or
//! session scope — and receive notifications for every matching message.
//! Because every data and control exchange is an explicit, persisted message,
//! the whole system is observable and replayable: the [`monitor`] module
//! records flow edges from which the paper's sequence diagrams (Figs 9, 10)
//! are regenerated verbatim.
//!
//! ## Quick tour
//!
//! ```
//! use blueprint_streams::{StreamStore, Message, Tag, Selector, TagFilter};
//!
//! let store = StreamStore::new();
//! let sid = store.create_stream("session:1:user", ["user-text"]).unwrap();
//!
//! // A component subscribes to every stream tagged `user-text`.
//! let sub = store
//!     .subscribe(Selector::StreamTagged(Tag::new("user-text")), TagFilter::all())
//!     .unwrap();
//!
//! store.publish(&sid, Message::data("I am looking for a data scientist position")).unwrap();
//! let msg = sub.recv().unwrap();
//! assert_eq!(msg.payload.as_str(), Some("I am looking for a data scientist position"));
//! ```

pub mod dead_letter;
pub mod error;
pub mod message;
pub mod monitor;
pub mod store;
pub mod stream;
pub mod subscription;

// The simulated clock moved into `blueprint-observability` (span timestamps
// come from the same clock); this deprecated shim keeps downstream importers
// of `blueprint_streams::SimClock` compiling while they migrate.
#[deprecated(
    since = "0.1.0",
    note = "import `SimClock` from `blueprint-observability` instead; this re-export will be removed"
)]
pub use blueprint_observability::SimClock;
pub use dead_letter::{DeadLetterEntry, DeadLetterQueue, DEAD_LETTER_OP, DEAD_LETTER_SEGMENT};
pub use error::StreamError;
pub use message::{Message, MessageId, MessageKind};
pub use monitor::{FlowEdge, FlowMonitor};
pub use store::{StoreStats, StreamStore, SHARD_COUNT};
pub use stream::{Stream, StreamId, StreamState};
pub use subscription::{Selector, Subscription, TagFilter};

mod tag;
pub use tag::Tag;

/// Result alias used across the streams crate.
pub type Result<T> = std::result::Result<T, StreamError>;
