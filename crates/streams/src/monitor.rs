//! Flow monitoring: the observability surface over the streams database.
//!
//! Because every exchange between components is an explicit message on a
//! stream, recording `(producer, stream, message)` publish events and
//! `(consumer, stream, message)` consume events yields a complete trace of an
//! agentic workflow. The figure-regeneration binaries use this to print the
//! exact sequence diagrams of the paper's Figs 9 and 10.

use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::message::{Message, MessageId, MessageKind};
use crate::stream::StreamId;

/// One observed edge in the data/control flow graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEdge {
    /// `publish` or `consume`.
    pub direction: FlowDirection,
    /// Component name ("user", agent name, "task-coordinator", ...).
    pub component: String,
    /// Stream involved.
    pub stream: StreamId,
    /// Message involved.
    pub message: MessageId,
    /// Data vs control.
    pub kind: MessageKind,
    /// Short human-readable label of the payload (for sequence diagrams).
    pub label: String,
}

/// Whether the component produced or consumed the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowDirection {
    /// Component wrote the message to the stream.
    Publish,
    /// Component read the message from the stream.
    Consume,
}

fn label_of(msg: &Message) -> String {
    let raw = match msg.kind {
        MessageKind::Control => msg.control_op().unwrap_or("control").to_string(),
        MessageKind::Eos => "eos".to_string(),
        MessageKind::Data => msg
            .text()
            .map(str::to_string)
            .unwrap_or_else(|| "<json>".to_string()),
    };
    const MAX: usize = 48;
    if raw.len() > MAX {
        let mut cut = MAX;
        while !raw.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &raw[..cut])
    } else {
        raw
    }
}

/// Records flow edges; cloneable handle onto shared state.
#[derive(Debug, Clone, Default)]
pub struct FlowMonitor {
    edges: Arc<RwLock<Vec<FlowEdge>>>,
    enabled: Arc<RwLock<bool>>,
}

impl FlowMonitor {
    /// Creates an enabled monitor.
    pub fn new() -> Self {
        FlowMonitor {
            edges: Arc::new(RwLock::new(Vec::new())),
            enabled: Arc::new(RwLock::new(true)),
        }
    }

    /// Enables or disables recording (disable on hot paths in benches).
    pub fn set_enabled(&self, enabled: bool) {
        *self.enabled.write() = enabled;
    }

    /// Records that `component` published `msg` onto `stream`.
    pub fn record_publish(&self, component: &str, stream: &StreamId, msg: &Message) {
        self.record(FlowDirection::Publish, component, stream, msg);
    }

    /// Records that `component` consumed `msg` from `stream`.
    pub fn record_consume(&self, component: &str, stream: &StreamId, msg: &Message) {
        self.record(FlowDirection::Consume, component, stream, msg);
    }

    fn record(&self, direction: FlowDirection, component: &str, stream: &StreamId, msg: &Message) {
        if !*self.enabled.read() {
            return;
        }
        let component = if component.is_empty() {
            "unknown"
        } else {
            component
        };
        self.edges.write().push(FlowEdge {
            direction,
            component: component.to_string(),
            stream: stream.clone(),
            message: msg.id,
            kind: msg.kind,
            label: label_of(msg),
        });
    }

    /// Snapshot of all recorded edges in order.
    pub fn edges(&self) -> Vec<FlowEdge> {
        self.edges.read().clone()
    }

    /// Number of recorded edges.
    pub fn len(&self) -> usize {
        self.edges.read().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.read().is_empty()
    }

    /// Clears the trace.
    pub fn clear(&self) {
        self.edges.write().clear();
    }

    /// Renders the trace as a numbered, human-readable sequence diagram —
    /// the format used to regenerate the paper's Figs 9 and 10.
    ///
    /// Example line: `3. TC --[control:execute-agent]--> session:1:instructions`.
    pub fn render_sequence(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.edges.read().iter().enumerate() {
            let arrow = match e.direction {
                FlowDirection::Publish => format!(
                    "{} --[{}]--> {}",
                    e.component,
                    match e.kind {
                        MessageKind::Control => format!("control:{}", e.label),
                        MessageKind::Eos => "eos".to_string(),
                        MessageKind::Data => format!("data:{}", e.label),
                    },
                    e.stream
                ),
                FlowDirection::Consume => format!(
                    "{} <--[{}]-- {}",
                    e.component,
                    match e.kind {
                        MessageKind::Control => format!("control:{}", e.label),
                        MessageKind::Eos => "eos".to_string(),
                        MessageKind::Data => format!("data:{}", e.label),
                    },
                    e.stream
                ),
            };
            out.push_str(&format!("{:>3}. {}\n", i + 1, arrow));
        }
        out
    }

    /// Returns the ordered list of distinct components that published,
    /// i.e. the "lifelines" of the sequence diagram.
    pub fn participants(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for e in self.edges.read().iter() {
            if !seen.contains(&e.component) {
                seen.push(e.component.clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    fn sid() -> StreamId {
        StreamId::new("session:1:user")
    }

    #[test]
    fn records_publish_and_consume() {
        let mon = FlowMonitor::new();
        let msg = Message::data("hello").from_producer("user");
        mon.record_publish("user", &sid(), &msg);
        mon.record_consume("agentic-employer", &sid(), &msg);
        assert_eq!(mon.len(), 2);
        let edges = mon.edges();
        assert_eq!(edges[0].direction, FlowDirection::Publish);
        assert_eq!(edges[1].direction, FlowDirection::Consume);
        assert_eq!(edges[1].component, "agentic-employer");
    }

    #[test]
    fn disabled_monitor_records_nothing() {
        let mon = FlowMonitor::new();
        mon.set_enabled(false);
        mon.record_publish("u", &sid(), &Message::data("x"));
        assert!(mon.is_empty());
        mon.set_enabled(true);
        mon.record_publish("u", &sid(), &Message::data("x"));
        assert_eq!(mon.len(), 1);
    }

    #[test]
    fn labels_truncate_long_payloads() {
        let mon = FlowMonitor::new();
        let long = "x".repeat(200);
        mon.record_publish("u", &sid(), &Message::data(long));
        let edge = &mon.edges()[0];
        assert!(edge.label.len() <= 52);
        assert!(edge.label.ends_with('…'));
    }

    #[test]
    fn control_label_uses_op() {
        let mon = FlowMonitor::new();
        mon.record_publish(
            "tc",
            &sid(),
            &Message::control("execute-agent", serde_json::json!({})),
        );
        assert_eq!(mon.edges()[0].label, "execute-agent");
    }

    #[test]
    fn render_sequence_is_numbered() {
        let mon = FlowMonitor::new();
        mon.record_publish("user", &sid(), &Message::data("hi"));
        mon.record_consume("ae", &sid(), &Message::data("hi"));
        let s = mon.render_sequence();
        assert!(s.contains("1. user --[data:hi]--> session:1:user"));
        assert!(s.contains("2. ae <--[data:hi]-- session:1:user"));
    }

    #[test]
    fn participants_in_first_seen_order() {
        let mon = FlowMonitor::new();
        let m = Message::data("x");
        mon.record_publish("user", &sid(), &m);
        mon.record_publish("ae", &sid(), &m);
        mon.record_publish("user", &sid(), &m);
        assert_eq!(mon.participants(), ["user", "ae"]);
    }

    #[test]
    fn empty_component_becomes_unknown() {
        let mon = FlowMonitor::new();
        mon.record_publish("", &sid(), &Message::data("x"));
        assert_eq!(mon.edges()[0].component, "unknown");
    }

    #[test]
    fn clear_resets() {
        let mon = FlowMonitor::new();
        mon.record_publish("u", &sid(), &Message::data("x"));
        mon.clear();
        assert!(mon.is_empty());
        assert!(mon.participants().is_empty());
    }
}
