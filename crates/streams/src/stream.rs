//! The stream itself: an append-only, tagged, replayable message log.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::StreamError;
use crate::message::Message;
use crate::tag::Tag;
use crate::Result;

/// Identifies a stream within the store.
///
/// By convention identifiers are hierarchical, colon-separated paths scoped
/// under a session, e.g. `session:42:user` or `session:42:profile:criteria`
/// — mirroring the paper's `SESSION:ID:PROFILE` scoping (§V-E).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(String);

impl StreamId {
    /// Creates a stream id from a path-like name.
    pub fn new(name: impl Into<String>) -> Self {
        StreamId(name.into())
    }

    /// The full textual id.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if this id is scoped under the given prefix, respecting the
    /// colon hierarchy (`session:1` matches `session:1:user` but not
    /// `session:10:user`).
    pub fn is_scoped_under(&self, prefix: &str) -> bool {
        if self.0 == prefix {
            return true;
        }
        self.0.len() > prefix.len()
            && self.0.starts_with(prefix)
            && self.0.as_bytes()[prefix.len()] == b':'
    }

    /// Extends the id with a child segment.
    pub fn child(&self, segment: &str) -> StreamId {
        StreamId(format!("{}:{}", self.0, segment))
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for StreamId {
    fn from(s: &str) -> Self {
        StreamId::new(s)
    }
}

impl From<String> for StreamId {
    fn from(s: String) -> Self {
        StreamId::new(s)
    }
}

/// Lifecycle state of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamState {
    /// Accepting messages.
    Open,
    /// Closed by an EOS marker or explicitly; append is rejected.
    Closed,
}

/// An append-only log of messages with metadata.
///
/// Streams are first-class data resources: they persist every message so any
/// late subscriber (or an observability tool) can replay from the beginning.
#[derive(Debug)]
pub struct Stream {
    id: StreamId,
    tags: BTreeSet<Tag>,
    state: StreamState,
    log: Vec<Arc<Message>>,
    created_at_micros: u64,
}

impl Stream {
    /// Creates a new open stream.
    pub fn new<I, T>(id: StreamId, tags: I, created_at_micros: u64) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Tag>,
    {
        Stream {
            id,
            tags: tags.into_iter().map(Into::into).collect(),
            state: StreamState::Open,
            log: Vec::new(),
            created_at_micros,
        }
    }

    /// The stream's identifier.
    pub fn id(&self) -> &StreamId {
        &self.id
    }

    /// Tags attached to the stream itself.
    pub fn tags(&self) -> &BTreeSet<Tag> {
        &self.tags
    }

    /// Adds a tag to the stream (streams may be re-tagged as a workflow
    /// evolves, e.g. the Agentic Employer tagging a query stream `NLQ`).
    pub fn add_tag(&mut self, tag: impl Into<Tag>) {
        self.tags.insert(tag.into());
    }

    /// Current lifecycle state.
    pub fn state(&self) -> StreamState {
        self.state
    }

    /// Creation time on the simulated clock.
    pub fn created_at_micros(&self) -> u64 {
        self.created_at_micros
    }

    /// Number of messages in the log.
    pub fn len(&self) -> u64 {
        self.log.len() as u64
    }

    /// True if no messages have been appended.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Appends a message, assigning its sequence number.
    ///
    /// Returns the stored `Arc<Message>`. Appending an EOS marker closes the
    /// stream; appending to a closed stream is an error.
    pub fn append(&mut self, mut msg: Message) -> Result<Arc<Message>> {
        if self.state == StreamState::Closed {
            return Err(StreamError::Closed(self.id.clone()));
        }
        msg.seq = self.log.len() as u64;
        if msg.is_eos() {
            self.state = StreamState::Closed;
        }
        let arc = Arc::new(msg);
        self.log.push(Arc::clone(&arc));
        Ok(arc)
    }

    /// Reads messages starting from sequence number `from` (inclusive).
    pub fn read_from(&self, from: u64) -> Vec<Arc<Message>> {
        let from = from.min(self.log.len() as u64) as usize;
        self.log[from..].to_vec()
    }

    /// Returns the message at `seq`, if present.
    pub fn get(&self, seq: u64) -> Option<Arc<Message>> {
        self.log.get(seq as usize).cloned()
    }

    /// The most recent message, if any.
    pub fn last(&self) -> Option<Arc<Message>> {
        self.log.last().cloned()
    }

    /// Closes the stream without an EOS marker.
    pub fn close(&mut self) {
        self.state = StreamState::Closed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;

    fn mk() -> Stream {
        Stream::new(StreamId::new("session:1:user"), ["user-text"], 0)
    }

    #[test]
    fn scoping_respects_hierarchy() {
        let id = StreamId::new("session:1:user");
        assert!(id.is_scoped_under("session:1"));
        assert!(id.is_scoped_under("session:1:user"));
        assert!(!id.is_scoped_under("session:10"));
        assert!(!id.is_scoped_under("session:1:use"));
        assert!(!id.is_scoped_under("session:2"));
    }

    #[test]
    fn child_extends_path() {
        let id = StreamId::new("session:1");
        assert_eq!(id.child("profile").as_str(), "session:1:profile");
    }

    #[test]
    fn append_assigns_sequence_numbers() {
        let mut s = mk();
        let a = s.append(Message::data("a")).unwrap();
        let b = s.append(Message::data("b")).unwrap();
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 1);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn eos_closes_stream() {
        let mut s = mk();
        s.append(Message::data("a")).unwrap();
        let eos = s.append(Message::eos()).unwrap();
        assert_eq!(eos.kind, MessageKind::Eos);
        assert_eq!(s.state(), StreamState::Closed);
        let err = s.append(Message::data("late")).unwrap_err();
        assert!(matches!(err, StreamError::Closed(_)));
    }

    #[test]
    fn explicit_close_rejects_append() {
        let mut s = mk();
        s.close();
        assert!(s.append(Message::data("x")).is_err());
    }

    #[test]
    fn read_from_replays_suffix() {
        let mut s = mk();
        for i in 0..5 {
            s.append(Message::data(format!("m{i}"))).unwrap();
        }
        let tail = s.read_from(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].text(), Some("m3"));
        // Reading past the end yields nothing rather than panicking.
        assert!(s.read_from(99).is_empty());
    }

    #[test]
    fn get_and_last() {
        let mut s = mk();
        assert!(s.last().is_none());
        s.append(Message::data("a")).unwrap();
        s.append(Message::data("b")).unwrap();
        assert_eq!(s.get(0).unwrap().text(), Some("a"));
        assert!(s.get(5).is_none());
        assert_eq!(s.last().unwrap().text(), Some("b"));
    }

    #[test]
    fn add_tag_retags_stream() {
        let mut s = mk();
        s.add_tag("NLQ");
        assert!(s.tags().contains(&Tag::new("nlq")));
        assert!(s.tags().contains(&Tag::new("user-text")));
    }
}
