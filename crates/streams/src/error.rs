//! Error type for stream operations.

use std::fmt;

use crate::stream::StreamId;

/// Errors raised by the streams subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The referenced stream does not exist in the store.
    NotFound(StreamId),
    /// A stream with this identifier already exists.
    Duplicate(StreamId),
    /// The stream has been closed; no further messages may be appended.
    Closed(StreamId),
    /// The subscription channel was disconnected (subscriber dropped).
    Disconnected,
    /// No message was available within the requested timeout.
    Timeout,
    /// A malformed identifier or payload was supplied.
    Invalid(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::NotFound(id) => write!(f, "stream not found: {id}"),
            StreamError::Duplicate(id) => write!(f, "stream already exists: {id}"),
            StreamError::Closed(id) => write!(f, "stream is closed: {id}"),
            StreamError::Disconnected => write!(f, "subscription disconnected"),
            StreamError::Timeout => write!(f, "timed out waiting for message"),
            StreamError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        let id = StreamId::new("s1");
        assert_eq!(
            StreamError::NotFound(id.clone()).to_string(),
            "stream not found: s1"
        );
        assert_eq!(
            StreamError::Duplicate(id.clone()).to_string(),
            "stream already exists: s1"
        );
        assert_eq!(StreamError::Closed(id).to_string(), "stream is closed: s1");
        assert_eq!(
            StreamError::Disconnected.to_string(),
            "subscription disconnected"
        );
        assert_eq!(
            StreamError::Timeout.to_string(),
            "timed out waiting for message"
        );
        assert_eq!(
            StreamError::Invalid("x".into()).to_string(),
            "invalid argument: x"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&StreamError::Disconnected);
    }
}
