//! Property-based tests for core stream invariants.

use blueprint_streams::{Message, Selector, StreamStore, Tag, TagFilter};
use proptest::prelude::*;

fn tag_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "sql".to_string(),
        "nlq".to_string(),
        "plan".to_string(),
        "summary".to_string(),
        "ui-event".to_string(),
    ])
}

proptest! {
    /// Sequence numbers on a stream are always dense: 0..n.
    #[test]
    fn seq_numbers_are_dense(payloads in prop::collection::vec(".{0,16}", 0..50)) {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        for p in &payloads {
            store.publish(&id, Message::data(p.clone())).unwrap();
        }
        let history = store.read(&id, 0).unwrap();
        prop_assert_eq!(history.len(), payloads.len());
        for (i, m) in history.iter().enumerate() {
            prop_assert_eq!(m.seq, i as u64);
        }
    }

    /// A subscriber receives exactly the messages its filter matches, in order.
    #[test]
    fn filter_delivery_is_exact_and_ordered(
        msgs in prop::collection::vec((tag_strategy(), ".{0,8}"), 0..60),
        wanted in tag_strategy(),
    ) {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        let sub = store
            .subscribe(Selector::Stream(id.clone()), TagFilter::any_of([wanted.as_str()]))
            .unwrap();
        let mut expected = Vec::new();
        for (tag, text) in &msgs {
            store
                .publish(&id, Message::data(text.clone()).with_tag(tag.as_str()))
                .unwrap();
            if tag == &wanted {
                expected.push(text.clone());
            }
        }
        let got: Vec<String> = sub
            .drain()
            .into_iter()
            .map(|m| m.text().unwrap().to_string())
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Exclusion always wins over inclusion.
    #[test]
    fn exclusion_dominates(include in tag_strategy(), exclude in tag_strategy()) {
        let filter = TagFilter::any_of([include.as_str()]).excluding([exclude.as_str()]);
        let msg = Message::data("x").with_tag(include.as_str()).with_tag(exclude.as_str());
        prop_assert!(!filter.matches(&msg));
    }

    /// Replay returns the same history regardless of read offset stitching.
    #[test]
    fn replay_is_prefix_consistent(n in 0u64..40, split in 0u64..40) {
        let store = StreamStore::new();
        let id = store.create_stream("s", Vec::<Tag>::new()).unwrap();
        for i in 0..n {
            store.publish(&id, Message::data(format!("{i}"))).unwrap();
        }
        let full = store.read(&id, 0).unwrap();
        let head = store.read(&id, 0).unwrap();
        let split = split.min(n);
        let stitched: Vec<_> = head
            .iter()
            .take(split as usize)
            .chain(store.read(&id, split).unwrap().iter())
            .map(|m| m.id)
            .collect();
        let full_ids: Vec<_> = full.iter().map(|m| m.id).collect();
        prop_assert_eq!(stitched, full_ids);
    }

    /// Global message ids strictly increase across streams.
    #[test]
    fn global_ids_strictly_increase(n in 1usize..30) {
        let store = StreamStore::new();
        let a = store.create_stream("a", Vec::<Tag>::new()).unwrap();
        let b = store.create_stream("b", Vec::<Tag>::new()).unwrap();
        let mut last = 0u64;
        for i in 0..n {
            let target = if i % 2 == 0 { &a } else { &b };
            let m = store.publish(target, Message::data("x")).unwrap();
            prop_assert!(m.id.0 > last);
            last = m.id.0;
        }
    }

    /// Scope selectors never leak across sessions.
    #[test]
    fn scope_never_leaks(session_a in 0u32..50, session_b in 0u32..50) {
        prop_assume!(session_a != session_b);
        let store = StreamStore::new();
        let a = store
            .create_stream(format!("session:{session_a}:user"), Vec::<Tag>::new())
            .unwrap();
        let b = store
            .create_stream(format!("session:{session_b}:user"), Vec::<Tag>::new())
            .unwrap();
        let sub = store
            .subscribe(Selector::Scope(format!("session:{session_a}")), TagFilter::all())
            .unwrap();
        store.publish(&a, Message::data("mine")).unwrap();
        store.publish(&b, Message::data("theirs")).unwrap();
        let got = sub.drain();
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(got[0].text(), Some("mine"));
    }
}
