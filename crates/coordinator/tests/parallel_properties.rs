//! Property-based equivalence of the parallel scheduler and the sequential
//! reference execution.
//!
//! For randomly generated DAGs of deterministic agents, the parallel
//! ready-set scheduler must produce byte-identical final outputs, identical
//! per-node results merged in topological order, and identical total cost
//! accounting. All charges are dyadic rationals (multiples of 0.125) and
//! every accuracy is exactly 1.0, so the f64 sums and products are exact
//! under any completion order — equality is bitwise, not approximate.
//!
//! Latency is excluded from the equivalence claim: agents measure latency as
//! elapsed time on the *shared* simulated clock, so overlapping invocations
//! observe each other's clock advances and parallel runs deliberately
//! over-count per-node latency (a conservative budget). Cost and accuracy
//! are per-invocation accumulators and must match exactly.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use serde_json::json;

use blueprint_agents::{
    AgentContext, AgentFactory, AgentSpec, CostProfile, DataType, FnProcessor, Inputs, Outputs,
    ParamSpec, Processor,
};
use blueprint_coordinator::{ExecutionReport, MemoCache, Outcome, SchedulerMode, TaskCoordinator};
use blueprint_optimizer::QosConstraints;
use blueprint_planner::{InputBinding, PlanNode, TaskPlan};
use blueprint_registry::AgentRegistry;
use blueprint_streams::StreamStore;

/// Registers `join-{arity}`: a pure function that uppercases and joins its
/// `in_0..in_{arity-1}` inputs. Costs are dyadic and scale with the arity so
/// cost accounting is sensitive to which agent ran.
fn register_join(factory: &AgentFactory, registry: &AgentRegistry, arity: usize) {
    let params = arity.max(1);
    let mut spec = AgentSpec::new(
        format!("join-{arity}"),
        format!("joins {params} upstream value(s)"),
    )
    .with_output(ParamSpec::required("out", "joined text", DataType::Text))
    .with_profile(CostProfile::new(
        0.125 * (arity + 1) as f64,
        1_000 * (arity + 1) as u64,
        1.0,
    ));
    for k in 0..params {
        spec = spec.with_input(ParamSpec::required(
            format!("in_{k}"),
            "upstream value",
            DataType::Text,
        ));
    }
    let cost = 0.125 * (arity + 1) as f64;
    let latency = 1_000 * (arity + 1) as u64;
    let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
        move |inputs: &Inputs, ctx: &AgentContext| {
            let mut parts = Vec::with_capacity(params);
            for k in 0..params {
                parts.push(inputs.require_str(&format!("in_{k}"))?.to_uppercase());
            }
            ctx.charge_cost(cost);
            ctx.charge_latency_micros(latency);
            let joined = parts.join("+");
            Ok(Outputs::new().with("out", json!(format!("{}#{}", joined, joined.len()))))
        },
    ));
    factory.register(spec.clone(), proc).unwrap();
    registry.register(spec).unwrap();
    factory
        .spawn(&format!("join-{arity}"), "session:1")
        .unwrap();
}

/// Maps raw generator output to a DAG: node `i` depends on up to two
/// distinct earlier nodes (`raw % i`), which guarantees acyclicity.
fn build_plan(raw_deps: &[Vec<usize>]) -> TaskPlan {
    let mut plan = TaskPlan::new("t-prop", "the user utterance");
    for (i, raw) in raw_deps.iter().enumerate() {
        let mut deps: Vec<usize> = if i == 0 {
            Vec::new()
        } else {
            raw.iter().map(|r| r % i).collect()
        };
        deps.sort_unstable();
        deps.dedup();
        let mut inputs = BTreeMap::new();
        if deps.is_empty() {
            inputs.insert("in_0".to_string(), InputBinding::FromUser);
        } else {
            for (k, &j) in deps.iter().enumerate() {
                inputs.insert(
                    format!("in_{k}"),
                    InputBinding::FromNode {
                        node: format!("n{j}"),
                        output: "out".to_string(),
                    },
                );
            }
        }
        let arity = deps.len();
        plan.push(PlanNode {
            id: format!("n{i}"),
            agent: format!("join-{arity}"),
            task: format!("step {i}"),
            inputs,
            profile: CostProfile::new(0.125 * (arity + 1) as f64, 1_000 * (arity + 1) as u64, 1.0),
        });
    }
    plan
}

/// Executes the generated plan on a fresh runtime under the given scheduler.
fn run(raw_deps: &[Vec<usize>], mode: SchedulerMode, memo: bool) -> ExecutionReport {
    let store = StreamStore::new();
    let factory = AgentFactory::new(store.clone());
    let registry = Arc::new(AgentRegistry::new());
    for arity in 0..3 {
        register_join(&factory, &registry, arity);
    }
    let mut coordinator = TaskCoordinator::new(store, "session:1", registry)
        .with_report_timeout(Duration::from_secs(10))
        .with_scheduler(mode);
    if memo {
        coordinator = coordinator.with_memoization(Arc::new(MemoCache::new(256)));
    }
    let plan = build_plan(raw_deps);
    coordinator.execute(&plan, QosConstraints::none()).unwrap()
}

fn final_output(report: &ExecutionReport) -> String {
    match &report.outcome {
        Outcome::Completed { output } => serde_json::to_string(output).unwrap(),
        other => panic!("unexpected outcome: {other:?}"),
    }
}

/// Node results with the latency field normalized away (see module docs).
fn without_latency(report: &ExecutionReport) -> Vec<blueprint_coordinator::NodeResult> {
    report
        .node_results
        .iter()
        .cloned()
        .map(|mut r| {
            r.latency_micros = 0;
            r
        })
        .collect()
}

/// Raw dependency material: 1..8 nodes, each with 0..=2 raw dep picks.
fn deps_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    (1usize..8)
        .prop_flat_map(|n| prop::collection::vec(prop::collection::vec(0usize..1000, 0..3), n))
}

proptest! {
    /// The parallel scheduler is observationally identical to the sequential
    /// reference: same outputs byte for byte, same node results in the same
    /// (topological) order, and bitwise-identical cost accounting.
    #[test]
    fn parallel_execution_matches_sequential_reference(raw_deps in deps_strategy()) {
        let seq = run(&raw_deps, SchedulerMode::Sequential, false);
        let par = run(&raw_deps, SchedulerMode::Parallel { max_in_flight: 0 }, false);

        prop_assert!(seq.outcome.succeeded(), "sequential: {:?}", seq.outcome);
        prop_assert!(par.outcome.succeeded(), "parallel: {:?}", par.outcome);
        prop_assert_eq!(final_output(&seq), final_output(&par));
        prop_assert_eq!(without_latency(&seq), without_latency(&par));
        prop_assert_eq!(
            seq.budget.spent_cost.to_bits(),
            par.budget.spent_cost.to_bits()
        );
        prop_assert_eq!(
            seq.budget.accuracy_so_far.to_bits(),
            par.budget.accuracy_so_far.to_bits()
        );
        prop_assert_eq!(seq.cache.hits, 0);
        prop_assert_eq!(par.cache.hits, 0);
    }

    /// A bounded ready set changes only wall-clock concurrency, not results.
    #[test]
    fn bounded_parallelism_matches_sequential_reference(raw_deps in deps_strategy()) {
        let seq = run(&raw_deps, SchedulerMode::Sequential, false);
        let par = run(&raw_deps, SchedulerMode::Parallel { max_in_flight: 2 }, false);
        prop_assert_eq!(final_output(&seq), final_output(&par));
        prop_assert_eq!(without_latency(&seq), without_latency(&par));
        prop_assert_eq!(
            seq.budget.spent_cost.to_bits(),
            par.budget.spent_cost.to_bits()
        );
    }
}

proptest! {
    /// Memoization changes cost, not answers: a memoized parallel run yields
    /// the same outputs as the uncached sequential reference, and repeated
    /// nodes (same agent + same inputs) hit the cache at zero marginal cost.
    #[test]
    fn memoized_runs_preserve_outputs(raw_deps in deps_strategy()) {
        let seq = run(&raw_deps, SchedulerMode::Sequential, false);
        let memoized = run(&raw_deps, SchedulerMode::Parallel { max_in_flight: 0 }, true);
        prop_assert_eq!(final_output(&seq), final_output(&memoized));
        let cached: u64 = memoized
            .node_results
            .iter()
            .filter(|r| r.cached)
            .count() as u64;
        prop_assert_eq!(memoized.cache.hits, cached);
    }
}
