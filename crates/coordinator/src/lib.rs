//! # blueprint-coordinator
//!
//! The task coordinator (§V-H): receives a [`TaskPlan`](blueprint_planner::TaskPlan) DAG with an initial
//! budget and projected costs, initiates agents by streaming instruction
//! messages to them, monitors execution, applies input transformations
//! (invoking the data planner for `FromData` bindings and text→criteria
//! extraction), updates the [`Budget`](blueprint_optimizer::Budget) with actual costs from agent
//! reports, and aborts or replans when thresholds are exceeded.
//!
//! Execution happens over the unified [`PlanIr`](blueprint_planner::PlanIr):
//! `execute(TaskPlan)` is a lowering shim over `execute_ir`, and with
//! [`AdaptiveConfig`] the coordinator folds observed actuals into registry
//! EWMA statistics and re-optimizes the pending IR suffix when observed
//! spend drifts past the configured factor of the estimate.

pub mod coordinator;
pub mod daemon;
pub mod memo;

pub use coordinator::{
    AdaptiveConfig, CacheSavings, ExecutionError, ExecutionReport, NodeResult, Outcome,
    OverrunPolicy, ReoptimizationNote, SchedulerMode, TaskCoordinator,
};
pub use daemon::CoordinatorDaemon;
pub use memo::{MemoCache, MemoEntry, MemoStats};
