//! # blueprint-coordinator
//!
//! The task coordinator (§V-H): receives a [`TaskPlan`](blueprint_planner::TaskPlan) DAG with an initial
//! budget and projected costs, initiates agents by streaming instruction
//! messages to them, monitors execution, applies input transformations
//! (invoking the data planner for `FromData` bindings and text→criteria
//! extraction), updates the [`Budget`](blueprint_optimizer::Budget) with actual costs from agent
//! reports, and aborts or replans when thresholds are exceeded.

pub mod coordinator;
pub mod daemon;
pub mod memo;

pub use coordinator::{
    CacheSavings, ExecutionError, ExecutionReport, NodeResult, Outcome, OverrunPolicy,
    SchedulerMode, TaskCoordinator,
};
pub use daemon::CoordinatorDaemon;
pub use memo::{MemoCache, MemoEntry, MemoStats};
