//! Memoization of deterministic agent invocations.
//!
//! The simulated LLM — and every processor built on it — is a pure function
//! of its inputs, so repeated sub-queries across conversation turns and
//! sessions (Fig 8/10 flows re-ask the same extraction and lookup steps)
//! recompute identical answers at full cost. The coordinator can instead
//! consult a [`MemoCache`] keyed by `(agent, canonical input hash)`: on a
//! hit it replays the recorded outputs onto the node's output stream and
//! charges nothing, recording the avoided cost and latency in the execution
//! report.
//!
//! Memoization is **opt-in**: only enable it when every registered agent is
//! deterministic (true for the whole simulated runtime, false the moment a
//! processor reads a clock or external service). Only successful primary
//! invocations are cached — failures, fallbacks, and fault-injected runs
//! never populate the cache.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;
use serde_json::Value;

use blueprint_agents::Inputs;

/// A recorded successful invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoEntry {
    /// The outputs the agent produced (JSON object keyed by output param).
    pub outputs: Value,
    /// Cost the original invocation charged.
    pub cost: f64,
    /// Latency the original invocation charged (µs).
    pub latency_micros: u64,
}

/// Cumulative cache counters (across every execution sharing the cache).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Total cost avoided by hits.
    pub cost_saved: f64,
    /// Total latency avoided by hits (µs).
    pub latency_saved_micros: u64,
}

struct MemoInner {
    map: HashMap<String, MemoEntry>,
    /// Insertion order for FIFO eviction once `capacity` is reached.
    order: VecDeque<String>,
    stats: MemoStats,
}

/// A bounded, thread-safe cache of deterministic agent invocations, shared
/// by every coordinator of a runtime (hits work across sessions).
pub struct MemoCache {
    capacity: usize,
    inner: Mutex<MemoInner>,
}

impl MemoCache {
    /// Creates a cache holding at most `capacity` entries (FIFO eviction).
    /// A zero capacity is rounded up to one.
    pub fn new(capacity: usize) -> Self {
        MemoCache {
            capacity: capacity.max(1),
            inner: Mutex::new(MemoInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                stats: MemoStats::default(),
            }),
        }
    }

    /// Canonical cache key: the agent name plus the inputs serialized with
    /// sorted parameter names ([`Inputs`] is `BTreeMap`-backed, so the JSON
    /// form is already canonical at the top level). The full serialization
    /// is used rather than a digest so key collisions are impossible.
    pub fn key(agent: &str, inputs: &Inputs) -> String {
        let canon = serde_json::to_string(inputs).unwrap_or_default();
        format!("{agent}\u{1}{canon}")
    }

    /// Looks up a key, counting a hit (with its savings) or a miss.
    pub fn lookup(&self, key: &str) -> Option<MemoEntry> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).cloned() {
            Some(entry) => {
                inner.stats.hits += 1;
                inner.stats.cost_saved += entry.cost;
                inner.stats.latency_saved_micros += entry.latency_micros;
                Some(entry)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Records a successful invocation, evicting the oldest entry when full.
    /// Racing inserts of the same key are benign: the agent is deterministic,
    /// so both writers carry the same value.
    pub fn insert(&self, key: String, entry: MemoEntry) {
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            } else {
                break;
            }
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, entry);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> MemoStats {
        self.inner.lock().stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept). Use when agents are
    /// re-registered with new processors and recorded answers may be stale.
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn entry(cost: f64) -> MemoEntry {
        MemoEntry {
            outputs: json!({"out": "X"}),
            cost,
            latency_micros: 100,
        }
    }

    #[test]
    fn key_is_canonical_over_param_order() {
        let a = Inputs::new().with("x", json!(1)).with("y", json!(2));
        let b = Inputs::new().with("y", json!(2)).with("x", json!(1));
        assert_eq!(MemoCache::key("agent", &a), MemoCache::key("agent", &b));
        assert_ne!(MemoCache::key("agent", &a), MemoCache::key("other", &a));
    }

    #[test]
    fn hit_records_savings() {
        let cache = MemoCache::new(8);
        let key = MemoCache::key("a", &Inputs::new());
        assert!(cache.lookup(&key).is_none());
        cache.insert(key.clone(), entry(0.5));
        let hit = cache.lookup(&key).unwrap();
        assert_eq!(hit.cost, 0.5);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.cost_saved - 0.5).abs() < 1e-9);
        assert_eq!(stats.latency_saved_micros, 100);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = MemoCache::new(2);
        cache.insert("k1".into(), entry(0.1));
        cache.insert("k2".into(), entry(0.2));
        cache.insert("k3".into(), entry(0.3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("k1").is_none());
        assert!(cache.lookup("k3").is_some());
    }

    #[test]
    fn invalidate_clears_entries() {
        let cache = MemoCache::new(4);
        cache.insert("k".into(), entry(0.1));
        cache.invalidate();
        assert!(cache.is_empty());
        assert!(cache.lookup("k").is_none());
    }
}
