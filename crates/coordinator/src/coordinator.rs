//! The task coordinator's execution engine.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use serde_json::{json, Value};

use blueprint_agents::{AgentReport, DataType, ExecuteAgent, Inputs};
use blueprint_observability::{Counter, Gauge, MetricsSnapshot, Observability, SpanId};
use blueprint_optimizer::{Budget, BudgetStatus, QosConstraints, SharedBudget};
use blueprint_planner::{DataPlanner, IrBinding, IrNode, PlanIr, TaskPlan, TaskPlanner};
use blueprint_registry::AgentRegistry;
use blueprint_resilience::{BreakerRegistry, DegradationLadder, DegradationNote, RetryPolicy};
use blueprint_streams::{DeadLetterQueue, Message, Selector, StreamStore, Tag, TagFilter};

use crate::memo::{MemoCache, MemoEntry};

/// Hard failures of the coordination machinery itself (stream plumbing);
/// task-level problems are reported through [`Outcome`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionError(pub String);

impl std::fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "coordination failed: {}", self.0)
    }
}

impl std::error::Error for ExecutionError {}

/// What to do when the projected budget exceeds the constraints (§V-H:
/// "abort the current plan ... trigger the task planner to replan ... or
/// prompt the user to confirm").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverrunPolicy {
    /// Continue executing (the "user confirmed" path).
    Continue,
    /// Abort the plan.
    #[default]
    Abort,
    /// Ask the task planner for a cheaper plan once, then continue.
    Replan,
}

/// How the coordinator walks the plan DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// One node at a time in topological order — the reference execution
    /// that the parallel scheduler is proven equivalent to.
    Sequential,
    /// Dependency-counted ready-set scheduling: every node whose inputs are
    /// satisfied is dispatched concurrently (§V: independent plan branches
    /// run on the agents' worker pools in parallel), reports are correlated
    /// out of order, and results are merged back into topological order.
    Parallel {
        /// Concurrency cap; `0` means unbounded.
        max_in_flight: usize,
    },
}

impl Default for SchedulerMode {
    fn default() -> Self {
        SchedulerMode::Parallel { max_in_flight: 0 }
    }
}

/// Configuration for adaptive re-optimization: when the observed cost or
/// latency of completed nodes drifts past `drift_threshold` × the estimate,
/// the coordinator pauses admission, re-selects the implementation of data
/// operators owned by not-yet-dispatched nodes against the *remaining*
/// budget, and resumes. Observed per-agent actuals are also folded into the
/// registry as EWMA statistics (deterministically, in topological order) so
/// later plans start from calibrated estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Re-optimize when observed/estimated exceeds this factor (> 1.0).
    pub drift_threshold: f64,
    /// EWMA smoothing factor for registry observation folding (0..=1).
    pub ewma_alpha: f64,
    /// Upper bound on mid-flight re-optimization passes per execution.
    pub max_reoptimizations: u32,
}

impl AdaptiveConfig {
    /// Adaptive replanning at the given drift threshold with the default
    /// smoothing (α = 0.3) and a single bounded re-optimization pass.
    pub fn with_threshold(drift_threshold: f64) -> Self {
        AdaptiveConfig {
            drift_threshold,
            ewma_alpha: 0.3,
            max_reoptimizations: 1,
        }
    }
}

/// Record of one mid-flight tier switch applied by adaptive
/// re-optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptimizationNote {
    /// The IR node whose implementation changed.
    pub node: String,
    /// Tier before the switch.
    pub from_tier: String,
    /// Tier after the switch.
    pub to_tier: String,
    /// Why the coordinator re-optimized.
    pub reason: String,
}

/// Per-execution memoization savings (Σ over cache hits of the cost and
/// latency the original invocations charged).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheSavings {
    /// Nodes answered from the cache.
    pub hits: u64,
    /// Cost avoided.
    pub cost_saved: f64,
    /// Latency avoided (µs).
    pub latency_saved_micros: u64,
}

/// Per-node execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeResult {
    /// Plan node id.
    pub node: String,
    /// Executing agent.
    pub agent: String,
    /// Whether the agent reported success.
    pub ok: bool,
    /// Actual cost charged.
    pub cost: f64,
    /// Actual latency charged (µs).
    pub latency_micros: u64,
    /// Error text on failure.
    pub error: Option<String>,
    /// How many invocation attempts the node took (0 when it never ran:
    /// skipped under pressure, served from the memo cache, or rejected by an
    /// open circuit).
    pub attempts: u32,
    /// True when the node was answered from the memoization cache without
    /// invoking the agent.
    pub cached: bool,
}

/// Terminal state of a task execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every node ran; `output` is the final node's outputs.
    Completed {
        /// The final node's outputs (JSON object keyed by output param).
        output: Value,
    },
    /// The budget was exceeded (actuals or projection under `Abort`).
    Aborted {
        /// Human-readable reason.
        reason: String,
    },
    /// A node failed and no replan was possible.
    Failed {
        /// The failing node id.
        node: String,
        /// The failure.
        error: String,
    },
    /// The plan was replaced mid-flight; `inner` is the replacement's report.
    Replanned {
        /// Why the coordinator replanned.
        reason: String,
        /// The replacement execution.
        inner: Box<ExecutionReport>,
    },
}

impl Outcome {
    /// True for `Completed` (directly or through replans).
    pub fn succeeded(&self) -> bool {
        match self {
            Outcome::Completed { .. } => true,
            Outcome::Replanned { inner, .. } => inner.outcome.succeeded(),
            _ => false,
        }
    }
}

/// Full record of one task execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// The executed plan's task id.
    pub task_id: String,
    /// Terminal state.
    pub outcome: Outcome,
    /// The final budget ledger.
    pub budget: Budget,
    /// Per-node records, merged back into topological order (the parallel
    /// scheduler completes nodes out of order; the report is deterministic).
    pub node_results: Vec<NodeResult>,
    /// Degradation decisions taken during execution (fallbacks, skips).
    pub degradations: Vec<DegradationNote>,
    /// Memoization savings realized during this execution.
    pub cache: CacheSavings,
    /// Mid-flight tier switches applied by adaptive re-optimization.
    pub reoptimizations: Vec<ReoptimizationNote>,
    /// Readout of every `blueprint.*` instrument, attached to the top-level
    /// report when metrics are armed (None otherwise, and on the nested
    /// reports of replanned executions).
    pub metrics: Option<MetricsSnapshot>,
}

/// Executes task plans over the streams fabric.
pub struct TaskCoordinator {
    store: StreamStore,
    scope: String,
    instr_scope: Option<String>,
    registry: Arc<AgentRegistry>,
    data_planner: Option<Arc<DataPlanner>>,
    task_planner: Option<Arc<TaskPlanner>>,
    policy: OverrunPolicy,
    report_timeout: Duration,
    retry: RetryPolicy,
    breakers: Option<Arc<BreakerRegistry>>,
    ladder: DegradationLadder,
    scheduler: SchedulerMode,
    memo: Option<Arc<MemoCache>>,
    adaptive: Option<AdaptiveConfig>,
    epoch: std::time::Instant,
    obs: Observability,
    instruments: CoordInstruments,
}

/// Named instruments the coordinator reports into, resolved once in
/// [`TaskCoordinator::with_observability`] so the scheduler's hot loop pays
/// one atomic op per event. Defaults to disarmed no-ops.
#[derive(Clone, Default)]
struct CoordInstruments {
    dispatches: Counter,
    memo_hits: Counter,
    retries: Counter,
    queue_depth: Gauge,
    in_flight: Gauge,
}

/// Outcome of driving one node, possibly across several attempts.
struct NodeAttempt {
    /// The last report received (None on timeout or open circuit).
    report: Option<AgentReport>,
    /// Attempts consumed.
    attempts: u32,
    /// Set when the node ultimately failed.
    error: Option<String>,
}

impl TaskCoordinator {
    /// The session scope this coordinator serves.
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// Creates a coordinator for a session scope.
    pub fn new(store: StreamStore, scope: impl Into<String>, registry: Arc<AgentRegistry>) -> Self {
        TaskCoordinator {
            store,
            scope: scope.into(),
            instr_scope: None,
            registry,
            data_planner: None,
            task_planner: None,
            policy: OverrunPolicy::default(),
            report_timeout: Duration::from_secs(5),
            retry: RetryPolicy::none(),
            breakers: None,
            ladder: DegradationLadder::new(),
            scheduler: SchedulerMode::default(),
            memo: None,
            adaptive: None,
            epoch: std::time::Instant::now(),
            obs: Observability::disarmed(),
            instruments: CoordInstruments::default(),
        }
    }

    /// Routes agent instructions (and the matching report subscription) to a
    /// different scope than the session's — the serving runtime points every
    /// session's coordinator at one shared agent-pool scope while task
    /// output/status streams stay under the session. Defaults to the session
    /// scope itself.
    pub fn with_instruction_scope(mut self, scope: impl Into<String>) -> Self {
        self.instr_scope = Some(scope.into());
        self
    }

    /// The scope agents listen on for instructions and publish reports to.
    pub fn instruction_scope(&self) -> &str {
        self.instr_scope.as_deref().unwrap_or(&self.scope)
    }

    /// Attaches observability: executions record a `task:<task_id>` root
    /// span with one child span per plan node (parented along plan-DAG
    /// edges), report into the `blueprint.coordinator.*` and
    /// `blueprint.resilience.retries` instruments, and attach a
    /// [`MetricsSnapshot`] to the top-level [`ExecutionReport`].
    pub fn with_observability(mut self, obs: Observability) -> Self {
        self.instruments = CoordInstruments {
            dispatches: obs.metrics.counter("blueprint.coordinator.dispatches"),
            memo_hits: obs.metrics.counter("blueprint.coordinator.memo_hits"),
            retries: obs.metrics.counter("blueprint.resilience.retries"),
            queue_depth: obs.metrics.gauge("blueprint.coordinator.queue_depth"),
            in_flight: obs.metrics.gauge("blueprint.coordinator.in_flight"),
        };
        self.obs = obs;
        self
    }

    /// Attaches the data planner (enables `FromData` bindings and input
    /// transformations).
    pub fn with_data_planner(mut self, dp: Arc<DataPlanner>) -> Self {
        self.data_planner = Some(dp);
        self
    }

    /// Attaches the task planner (enables replanning).
    pub fn with_task_planner(mut self, tp: Arc<TaskPlanner>) -> Self {
        self.task_planner = Some(tp);
        self
    }

    /// Sets the overrun policy.
    pub fn with_policy(mut self, policy: OverrunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets how long to wait for each agent report.
    pub fn with_report_timeout(mut self, timeout: Duration) -> Self {
        self.report_timeout = timeout;
        self
    }

    /// Sets the retry policy for failed or timed-out agent invocations.
    /// Backoff delays are debited from the task's latency budget.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches per-agent circuit breakers: open circuits fail fast and are
    /// excluded from replans.
    pub fn with_breakers(mut self, breakers: Arc<BreakerRegistry>) -> Self {
        self.breakers = Some(breakers);
        self
    }

    /// Attaches a degradation ladder: failed agents fall back to cheaper
    /// substitutes at a recorded accuracy penalty, and skippable nodes are
    /// dropped under budget pressure.
    pub fn with_degradation(mut self, ladder: DegradationLadder) -> Self {
        self.ladder = ladder;
        self
    }

    /// Selects how the plan DAG is walked (parallel ready-set scheduling by
    /// default; [`SchedulerMode::Sequential`] is the reference execution).
    pub fn with_scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Attaches a memoization cache for deterministic agent invocations.
    /// Share one cache across coordinators to get cross-session hits; only
    /// enable when every registered agent is a pure function of its inputs.
    pub fn with_memoization(mut self, cache: Arc<MemoCache>) -> Self {
        self.memo = Some(cache);
        self
    }

    /// Enables adaptive cost feedback: observed per-agent actuals fold into
    /// the registry as EWMA statistics, and when observed cost/latency
    /// drifts past the configured factor of the estimate the coordinator
    /// re-optimizes the not-yet-dispatched suffix of the plan IR against
    /// the remaining budget (bounded by `max_reoptimizations`).
    pub fn with_adaptive(mut self, config: AdaptiveConfig) -> Self {
        self.adaptive = Some(config);
        self
    }

    /// Micros since this coordinator was built (drives breaker cooldowns).
    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Executes a task plan under the given constraints. This is a lowering
    /// shim over [`TaskCoordinator::execute_ir`]: the plan is lowered into
    /// the unified IR (port types filled from the registry) and executed
    /// there — one DAG representation reaches the optimizer and the
    /// coordinator.
    pub fn execute(
        &self,
        plan: &TaskPlan,
        constraints: QosConstraints,
    ) -> Result<ExecutionReport, ExecutionError> {
        plan.validate().map_err(|e| ExecutionError(e.to_string()))?;
        let ir = PlanIr::lower_typed(plan, &self.registry);
        self.execute_ir(&ir, constraints)
    }

    /// Executes a unified plan IR under the given constraints. Spliced data
    /// operators are executed through the data planner when their owning
    /// node resolves inputs; `FromData` bindings still un-spliced are routed
    /// at resolution time exactly as before.
    pub fn execute_ir(
        &self,
        ir: &PlanIr,
        constraints: QosConstraints,
    ) -> Result<ExecutionReport, ExecutionError> {
        let mut budget = Budget::new(constraints);
        budget.set_projection(&ir.projected_profile());
        // One root span per task; node spans hang off it along plan-DAG
        // edges. Replanned inner executions nest under the same root.
        let mut task_span = self
            .obs
            .tracer
            .span("coordinator", format!("task:{}", ir.task_id));
        task_span.attr("utterance", ir.goal.clone());
        let result = self.execute_inner(ir.clone(), budget, 0, task_span.id());
        task_span.end();
        result.map(|mut report| {
            if let Some(cfg) = &self.adaptive {
                self.fold_observations(&report, cfg.ewma_alpha);
            }
            if self.obs.metrics.is_armed() {
                report.metrics = Some(self.obs.metrics.snapshot());
            }
            report
        })
    }

    /// Folds observed per-agent actuals into the registry's EWMA statistics.
    /// Node results are already merged into topological order (and nested
    /// replans fold after their parent), so the fold sequence — and the
    /// resulting statistics — are deterministic under any completion order.
    fn fold_observations(&self, report: &ExecutionReport, alpha: f64) {
        for nr in &report.node_results {
            if nr.ok && nr.attempts > 0 && !nr.cached {
                let accuracy = self
                    .registry
                    .get_spec(&nr.agent)
                    .map(|s| s.profile.accuracy)
                    .unwrap_or(1.0);
                let _ = self.registry.fold_observation(
                    &nr.agent,
                    nr.cost,
                    nr.latency_micros,
                    accuracy,
                    alpha,
                );
            }
        }
        if let Outcome::Replanned { inner, .. } = &report.outcome {
            self.fold_observations(inner, alpha);
        }
    }

    fn execute_inner(
        &self,
        mut ir: PlanIr,
        budget: Budget,
        depth: u8,
        task_span: Option<SpanId>,
    ) -> Result<ExecutionReport, ExecutionError> {
        ir.validate().map_err(|e| ExecutionError(e.to_string()))?;
        let order = ir.topo_order().map_err(|e| ExecutionError(e.to_string()))?;
        let n = order.len();

        // Dependency counts and adjacency, indexed by topological position.
        // `ir.edges()` emits one edge per `FromNode` binding, so duplicate
        // edges appear symmetrically in `children` and `indegree`.
        let position: HashMap<&str, usize> = order
            .iter()
            .enumerate()
            .map(|(i, id)| (id.as_str(), i))
            .collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree: Vec<usize> = vec![0; n];
        for edge in ir.edges() {
            let from = position[edge.from.as_str()];
            let to = position[edge.to.as_str()];
            children[from].push(to);
            parents[to].push(from);
            indegree[to] += 1;
        }

        let cap = match self.scheduler {
            SchedulerMode::Sequential => 1,
            SchedulerMode::Parallel { max_in_flight: 0 } => usize::MAX,
            SchedulerMode::Parallel { max_in_flight } => max_in_flight,
        };

        // All accounting goes through a shared ledger so concurrent drivers
        // (charges, retry backoff debits, degradation decisions) stay exact
        // under any completion order.
        let shared = SharedBudget::new(budget).with_metrics(&self.obs.metrics);

        // Results land in per-position slots so the report merges back into
        // topological order no matter when each node completes.
        let mut result_slots: Vec<Option<NodeResult>> = vec![None; n];
        let mut note_slots: Vec<Option<DegradationNote>> = vec![None; n];
        let mut output_slots: Vec<Option<Value>> = vec![None; n];
        let mut cache = CacheSavings::default();
        // Kept sorted ascending: among simultaneously ready nodes the
        // earliest topological position dispatches first, which makes
        // `max_in_flight == 1` exactly the sequential reference execution.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut halt: Option<Halt> = None;
        // Span ids per position, recorded at dispatch so children can parent
        // under the earliest dependency's span. Dispatch happens on this
        // single scheduler thread in sorted-ready order, so span ids are
        // allocated deterministically even under parallel completion.
        let mut span_ids: Vec<Option<SpanId>> = vec![None; n];
        // Adaptive drift tracking: estimated vs observed totals of completed
        // (actually invoked) nodes, and the re-optimizations applied.
        let mut est_drift = (0.0f64, 0u64);
        let mut obs_drift = (0.0f64, 0u64);
        let mut reopt_passes: u32 = 0;
        let mut reoptimizations: Vec<ReoptimizationNote> = Vec::new();

        loop {
            let ir_ref = &ir;
            std::thread::scope(|scope| -> Result<(), ExecutionError> {
                let (done_tx, done_rx) =
                    crossbeam::channel::unbounded::<(usize, Result<Driven, ExecutionError>)>();
                let mut in_flight = 0usize;
                loop {
                    // Dispatch every ready node (up to the cap) unless a
                    // terminal condition stopped admission.
                    while halt.is_none() && in_flight < cap && !ready.is_empty() {
                        let i = ready.remove(0);
                        let node_id = order[i].as_str();
                        let node = ir_ref
                            .node(node_id)
                            .expect("topo order references ir nodes");
                        let agent_name = node.agent().expect("scheduled nodes are agents").0;

                        // Graceful degradation: a skippable node (e.g. an
                        // optional guardrail check) is dropped outright once
                        // the budget is under pressure, trading its
                        // contribution for headroom.
                        if self.ladder.is_skippable(agent_name)
                            && shared.status() != BudgetStatus::Healthy
                        {
                            shared.consume_projection(&node.qos.profile);
                            note_slots[i] = Some(DegradationNote {
                                from: agent_name.to_string(),
                                to: None,
                                accuracy_penalty: 0.0,
                                reason: format!("skipped node {node_id} under budget pressure"),
                            });
                            self.publish_status(
                                &ir_ref.task_id,
                                "node-skipped",
                                json!({"node": node_id, "agent": agent_name}),
                            );
                            self.obs.tracer.instant(
                                "coordinator",
                                format!("skip:{node_id}"),
                                task_span,
                            );
                            result_slots[i] = Some(NodeResult {
                                node: node_id.to_string(),
                                agent: agent_name.to_string(),
                                ok: true,
                                cost: 0.0,
                                latency_micros: 0,
                                error: None,
                                attempts: 0,
                                cached: false,
                            });
                            for &c in &children[i] {
                                indegree[c] -= 1;
                                if indegree[c] == 0 {
                                    insert_sorted(&mut ready, c);
                                }
                            }
                            continue;
                        }

                        // The node span is opened here on the scheduler
                        // thread (deterministic id order) and closed by the
                        // driver when the node reaches a terminal state. It
                        // parents under the earliest dependency's span, so
                        // the trace tree mirrors the plan DAG.
                        let parent = parents[i]
                            .iter()
                            .min()
                            .and_then(|&p| span_ids[p])
                            .or(task_span);
                        let mut node_span = match parent {
                            Some(pid) => self.obs.tracer.child_span(
                                "coordinator",
                                format!("node:{node_id}"),
                                pid,
                            ),
                            None => self
                                .obs
                                .tracer
                                .span("coordinator", format!("node:{node_id}")),
                        };
                        node_span.attr("agent", agent_name.to_string());
                        span_ids[i] = node_span.id();
                        self.instruments.dispatches.inc();

                        let tx = done_tx.clone();
                        let node_budget = shared.clone();
                        scope.spawn(move || {
                            let outcome =
                                self.drive_node(ir_ref, node, &node_budget, node_span.id());
                            if let Ok(Driven::Done { node_result, .. }) = &outcome {
                                node_span.attr("ok", if node_result.ok { "true" } else { "false" });
                                if node_result.cached {
                                    node_span.attr("cached", "true");
                                }
                                if node_result.attempts > 1 {
                                    node_span.attr("attempts", node_result.attempts.to_string());
                                }
                            }
                            // Record the span before signalling completion so
                            // the scheduler (and any snapshot it takes) never
                            // observes a finished node with an open span.
                            drop(node_span);
                            let _ = tx.send((i, outcome));
                        });
                        in_flight += 1;
                    }
                    self.instruments.queue_depth.set(ready.len() as i64);
                    self.instruments.in_flight.set(in_flight as i64);

                    if in_flight == 0 {
                        // Nothing running and nothing admissible: leave the
                        // scope so replan decisions happen with no driver
                        // threads live.
                        return Ok(());
                    }

                    // Correlate the next completion, whatever its order.
                    let (i, outcome) = done_rx
                        .recv()
                        .expect("driver threads outlive the dispatch loop");
                    in_flight -= 1;
                    match outcome? {
                        Driven::ResolutionFailed(reason) => {
                            raise_failure(&mut halt, i, reason, true);
                        }
                        Driven::Done {
                            node_result,
                            degradation,
                            outputs,
                            saved,
                        } => {
                            let failed = !node_result.ok;
                            let error = node_result.error.clone();
                            if let Some((cost, latency)) = saved {
                                cache.hits += 1;
                                cache.cost_saved += cost;
                                cache.latency_saved_micros += latency;
                            }
                            if degradation.is_some() {
                                note_slots[i] = degradation;
                            }
                            // Drift accounting for adaptive re-optimization:
                            // only actually-invoked successes count (skips
                            // and cache hits carry no observation).
                            if node_result.ok && !node_result.cached && node_result.attempts > 0 {
                                let est = &ir_ref
                                    .node(order[i].as_str())
                                    .expect("completed node is in the ir")
                                    .qos
                                    .profile;
                                est_drift.0 += est.cost_per_call;
                                est_drift.1 += est.latency_micros;
                                obs_drift.0 += node_result.cost;
                                obs_drift.1 += node_result.latency_micros;
                            }
                            result_slots[i] = Some(node_result);
                            if failed {
                                raise_failure(
                                    &mut halt,
                                    i,
                                    error.unwrap_or_else(|| "agent failed".into()),
                                    false,
                                );
                                continue;
                            }
                            if outputs.is_object() {
                                output_slots[i] = Some(outputs);
                            }
                            for &c in &children[i] {
                                indegree[c] -= 1;
                                if indegree[c] == 0 {
                                    insert_sorted(&mut ready, c);
                                }
                            }
                            // Budget checkpoint — the same decision ladder as
                            // the sequential reference, evaluated on
                            // completion events.
                            if halt.is_none() {
                                halt = match shared.status() {
                                    BudgetStatus::Healthy => None,
                                    BudgetStatus::Exceeded => Some(Halt::Exceeded),
                                    BudgetStatus::ProjectedOverrun => match self.policy {
                                        OverrunPolicy::Continue => None,
                                        OverrunPolicy::Abort => Some(Halt::ProjectedAbort),
                                        OverrunPolicy::Replan => {
                                            if depth == 0 && self.task_planner.is_some() {
                                                Some(Halt::ReplanOverrun)
                                            } else {
                                                // Cannot replan: keep going
                                                // under protest.
                                                None
                                            }
                                        }
                                    },
                                };
                            }
                            // Adaptive checkpoint: when observed spend has
                            // drifted past the configured factor of the
                            // estimate, pause admission and re-optimize the
                            // not-yet-dispatched suffix (bounded passes).
                            if halt.is_none() {
                                if let Some(cfg) = &self.adaptive {
                                    if reopt_passes < cfg.max_reoptimizations {
                                        let cost_drifted = est_drift.0 > 0.0
                                            && obs_drift.0 > cfg.drift_threshold * est_drift.0;
                                        let latency_drifted = est_drift.1 > 0
                                            && obs_drift.1 as f64
                                                > cfg.drift_threshold * est_drift.1 as f64;
                                        if cost_drifted || latency_drifted {
                                            halt = Some(Halt::Reoptimize);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            })?;

            // A drift-triggered re-optimization is resolved here, with no
            // drivers live: re-select the implementation of data operators
            // owned by still-pending nodes against the *remaining* budget,
            // then resume scheduling. Nodes already executed are never
            // touched, and passes are bounded by the configuration.
            if matches!(halt, Some(Halt::Reoptimize)) {
                halt = None;
                reopt_passes += 1;
                let cfg = self.adaptive.as_ref().expect("reoptimize requires config");
                let pending: HashSet<String> = order
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| result_slots[*i].is_none())
                    .map(|(_, id)| id.clone())
                    .collect();
                let objective = ir.objective;
                let remaining = shared.snapshot().remaining_constraints();
                let switches = ir.reoptimize_pending(&pending, objective, &remaining);
                for s in &switches {
                    self.publish_status(
                        &ir.task_id,
                        "node-reoptimized",
                        json!({"node": s.node, "from": s.from, "to": s.to}),
                    );
                    self.obs.tracer.instant(
                        "coordinator",
                        format!("reopt:{}:{}->{}", s.node, s.from, s.to),
                        task_span,
                    );
                    reoptimizations.push(ReoptimizationNote {
                        node: s.node.clone(),
                        from_tier: s.from.clone(),
                        to_tier: s.to.clone(),
                        reason: format!(
                            "observed spend drifted past {}x the estimate",
                            cfg.drift_threshold
                        ),
                    });
                }
                continue;
            }

            // The scope is drained. A projected overrun under the Replan
            // policy is resolved here, with no drivers live: ask the task
            // planner for the same decomposition minus the most expensive
            // agent (§V-H). When no cheaper plan exists, clear the halt and
            // resume under protest, exactly like the sequential reference.
            if matches!(halt, Some(Halt::ReplanOverrun)) {
                let subtasks: Vec<String> = ir
                    .agent_nodes()
                    .map(|n| n.agent().expect("agent node").1.to_string())
                    .collect();
                let replacement = self.task_planner.as_ref().and_then(|tp| {
                    tp.plan_subtasks(&ir.goal, &subtasks, &[most_expensive(&ir)])
                        .ok()
                });
                if let Some(new_plan) = replacement {
                    let new_ir = PlanIr::lower_typed(&new_plan, &self.registry);
                    let inner =
                        self.execute_inner(new_ir, shared.snapshot(), depth + 1, task_span)?;
                    return Ok(ExecutionReport {
                        task_id: ir.task_id.clone(),
                        outcome: Outcome::Replanned {
                            reason: "projected overrun".into(),
                            inner: Box::new(inner),
                        },
                        budget: shared.snapshot(),
                        node_results: result_slots.into_iter().flatten().collect(),
                        degradations: note_slots.into_iter().flatten().collect(),
                        cache,
                        reoptimizations,
                        metrics: None,
                    });
                }
                halt = None;
                continue;
            }
            break;
        }

        let node_results: Vec<NodeResult> = result_slots.into_iter().flatten().collect();
        let degradations: Vec<DegradationNote> = note_slots.into_iter().flatten().collect();
        let budget = shared.snapshot();

        match halt {
            None => {
                // Deterministic final output: the last output-producing node
                // in topological order, regardless of completion order.
                let final_output = output_slots
                    .into_iter()
                    .flatten()
                    .next_back()
                    .unwrap_or(Value::Null);
                self.publish_status(&ir.task_id, "task-completed", json!({"task": ir.task_id}));
                Ok(ExecutionReport {
                    task_id: ir.task_id.clone(),
                    outcome: Outcome::Completed {
                        output: final_output,
                    },
                    budget,
                    node_results,
                    degradations,
                    cache,
                    reoptimizations,
                    metrics: None,
                })
            }
            Some(Halt::Failure {
                pos,
                error,
                resolution,
            }) => {
                let node_id = order[pos].as_str();
                // Replan once, excluding the failed agent and every agent
                // whose circuit is currently open (§V-H). Input-resolution
                // failures skip straight to Failed: no instruction was
                // issued, so reassigning agents cannot help.
                if !resolution && depth == 0 {
                    if let Some(tp) = &self.task_planner {
                        let failed_agent = ir
                            .node(node_id)
                            .and_then(|n| n.agent())
                            .map(|(a, _)| a.to_string())
                            .expect("failure references an agent node");
                        let subtasks: Vec<String> = ir
                            .agent_nodes()
                            .map(|n| n.agent().expect("agent node").1.to_string())
                            .collect();
                        let mut excluded = vec![failed_agent.clone()];
                        if let Some(b) = &self.breakers {
                            for open in b.open_circuits() {
                                if !excluded.contains(&open) {
                                    excluded.push(open);
                                }
                            }
                        }
                        if let Ok(new_plan) = tp.plan_subtasks(&ir.goal, &subtasks, &excluded) {
                            let new_ir = PlanIr::lower_typed(&new_plan, &self.registry);
                            let inner =
                                self.execute_inner(new_ir, budget.clone(), depth + 1, task_span)?;
                            return Ok(ExecutionReport {
                                task_id: ir.task_id.clone(),
                                outcome: Outcome::Replanned {
                                    reason: format!("agent {failed_agent} failed: {error}"),
                                    inner: Box::new(inner),
                                },
                                budget,
                                node_results,
                                degradations,
                                cache,
                                reoptimizations,
                                metrics: None,
                            });
                        }
                    }
                }
                self.finish_failed(
                    &ir.task_id,
                    budget,
                    node_results,
                    degradations,
                    cache,
                    reoptimizations,
                    node_id,
                    error,
                )
            }
            Some(Halt::Exceeded) => self.finish_aborted(
                &ir.task_id,
                budget,
                node_results,
                degradations,
                cache,
                reoptimizations,
                "budget exceeded by actual costs".into(),
            ),
            Some(Halt::ProjectedAbort) => self.finish_aborted(
                &ir.task_id,
                budget,
                node_results,
                degradations,
                cache,
                reoptimizations,
                "projected costs exceed the budget".into(),
            ),
            Some(Halt::ReplanOverrun) | Some(Halt::Reoptimize) => {
                unreachable!("resolved before leaving the scheduler")
            }
        }
    }

    /// Drives one node end-to-end on the calling thread: input resolution,
    /// memo-cache lookup, breaker-gated invocation with retries, fallback
    /// down the degradation ladder, and quarantine on exhaustion. Every
    /// charge goes through the shared ledger.
    fn drive_node(
        &self,
        ir: &PlanIr,
        node: &IrNode,
        budget: &SharedBudget,
        span: Option<SpanId>,
    ) -> Result<Driven, ExecutionError> {
        let node_id = node.id.as_str();
        let agent = node.agent().expect("driven nodes are agents").0.to_string();
        // Subscribe to this task's agent reports before issuing any
        // instruction so none can be missed. Agents always report to
        // `<their scope>:reports`, so watching that one stream (instead of
        // every stream) keeps the subscription on the reports stream's own
        // shard. Each driver holds its own subscription; reports are
        // correlated by `task:`/node tags, so concurrent drivers never
        // cross wires.
        let report_sub = self
            .store
            .subscribe(
                Selector::Stream(format!("{}:reports", self.instruction_scope()).into()),
                TagFilter::any_of([format!("task:{}", ir.task_id)]),
            )
            .map_err(|e| ExecutionError(e.to_string()))?;

        // Resolve inputs, applying transformations.
        let mut inputs = Inputs::new();
        for (param, binding) in &node.inputs {
            match self.resolve_input(ir, node, param, binding, budget) {
                Ok(v) => {
                    inputs.insert(param.clone(), v);
                }
                Err(reason) => return Ok(Driven::ResolutionFailed(reason)),
            }
        }

        // Deterministic agents answer repeated inputs from the memo cache:
        // the recorded outputs replay onto the node's output stream (so
        // downstream bindings still resolve) at zero cost, and the savings
        // are credited to the execution report.
        let memo_key = self.memo.as_ref().map(|_| MemoCache::key(&agent, &inputs));
        if let (Some(memo), Some(key)) = (&self.memo, &memo_key) {
            if let Some(entry) = memo.lookup(key) {
                self.instruments.memo_hits.inc();
                self.replay_cached_outputs(&ir.task_id, node_id, &agent, &entry);
                budget.charge(0.0, 0, node.qos.profile.accuracy);
                budget.consume_projection(&node.qos.profile);
                self.publish_status(
                    &ir.task_id,
                    "node-cached",
                    json!({"node": node_id, "agent": agent}),
                );
                return Ok(Driven::Done {
                    node_result: NodeResult {
                        node: node.id.clone(),
                        agent: agent.clone(),
                        ok: true,
                        cost: 0.0,
                        latency_micros: 0,
                        error: None,
                        attempts: 0,
                        cached: true,
                    },
                    degradation: None,
                    outputs: entry.outputs.clone(),
                    saved: Some((entry.cost, entry.latency_micros)),
                });
            }
        }

        // Drive the node: breaker gate, instruction publish, report await,
        // retries with budget-debited backoff.
        let mut attempt = self.run_node(
            &ir.task_id,
            node_id,
            &agent,
            &inputs,
            &report_sub,
            budget,
            span,
        )?;
        let mut executing_agent = agent.clone();
        let mut degradation = None;

        // Graceful degradation: a failed agent falls back once to its
        // configured substitute at a recorded accuracy penalty.
        if attempt.error.is_some() {
            if let Some((fallback, penalty)) = self.ladder.fallback_for(&agent) {
                let fallback = fallback.to_string();
                if self.registry.get_spec(&fallback).is_ok() {
                    self.obs.tracer.instant(
                        "coordinator",
                        format!("fallback:{agent}->{fallback}"),
                        span,
                    );
                    let second = self.run_node(
                        &ir.task_id,
                        node_id,
                        &fallback,
                        &inputs,
                        &report_sub,
                        budget,
                        span,
                    )?;
                    if second.error.is_none() {
                        degradation = Some(DegradationNote {
                            from: agent.clone(),
                            to: Some(fallback.clone()),
                            accuracy_penalty: penalty,
                            reason: attempt
                                .error
                                .clone()
                                .unwrap_or_else(|| "primary agent failed".into()),
                        });
                        self.publish_status(
                            &ir.task_id,
                            "node-degraded",
                            json!({"node": node_id, "from": agent, "to": fallback}),
                        );
                        // The fallback answers with degraded quality.
                        budget.charge(0.0, 0, 1.0 - penalty);
                        executing_agent = fallback;
                        attempt = NodeAttempt {
                            attempts: attempt.attempts + second.attempts,
                            ..second
                        };
                    }
                }
            }
        }

        let attempts = attempt.attempts;
        if let Some(error) = attempt.error {
            // Charge whatever the final failed attempt reported.
            let (cost, latency) = attempt
                .report
                .as_ref()
                .map(|r| (r.cost, r.latency_micros))
                .unwrap_or((0.0, 0));
            budget.charge(cost, latency, node.qos.profile.accuracy);
            budget.consume_projection(&node.qos.profile);

            // Quarantine the instruction that exhausted its attempts so
            // operators can inspect and replay it once the fault clears.
            self.quarantine_instruction(&ir.task_id, node_id, &agent, &inputs, &error, attempts);

            return Ok(Driven::Done {
                node_result: NodeResult {
                    node: node.id.clone(),
                    agent: agent.clone(),
                    ok: false,
                    cost,
                    latency_micros: latency,
                    error: Some(error),
                    attempts,
                    cached: false,
                },
                degradation,
                outputs: Value::Null,
                saved: None,
            });
        }

        let report = attempt.report.expect("successful attempt carries a report");
        budget.charge(
            report.cost,
            report.latency_micros,
            node.qos.profile.accuracy,
        );
        budget.consume_projection(&node.qos.profile);

        // Only primary successes populate the cache: fallback answers carry
        // degraded quality, and caching them would hide the degradation on
        // replay.
        if let (Some(memo), Some(key)) = (&self.memo, memo_key) {
            if executing_agent == agent && report.outputs.is_object() {
                memo.insert(
                    key,
                    MemoEntry {
                        outputs: report.outputs.clone(),
                        cost: report.cost,
                        latency_micros: report.latency_micros,
                    },
                );
            }
        }

        Ok(Driven::Done {
            node_result: NodeResult {
                node: node.id.clone(),
                agent: executing_agent,
                ok: true,
                cost: report.cost,
                latency_micros: report.latency_micros,
                error: None,
                attempts,
                cached: false,
            },
            degradation,
            outputs: report.outputs,
            saved: None,
        })
    }

    /// Republishes a cached node's outputs onto its output stream so
    /// downstream `FromNode` bindings resolve exactly as if the agent ran.
    fn replay_cached_outputs(&self, task_id: &str, node_id: &str, agent: &str, entry: &MemoEntry) {
        let Some(outputs) = entry.outputs.as_object() else {
            return;
        };
        let stream = format!("{}:task:{}:{}", self.scope, task_id, node_id);
        let tags: Vec<Tag> = self
            .registry
            .get_spec(agent)
            .map(|spec| spec.output_tags.iter().map(Tag::new).collect())
            .unwrap_or_default();
        for (param, value) in outputs {
            let msg = Message::data_json(value.clone())
                .with_tag(param.as_str())
                .with_tags(tags.iter().cloned())
                .from_producer(format!("memo:{agent}"));
            let _ = self
                .store
                .publish_to(stream.clone(), Vec::<Tag>::new(), msg);
        }
    }

    /// Drives one node to a terminal attempt outcome: checks the circuit
    /// breaker, publishes the instruction, awaits the report, and retries
    /// per the retry policy with backoff debited from the latency budget.
    #[allow(clippy::too_many_arguments)]
    fn run_node(
        &self,
        task_id: &str,
        node_id: &str,
        agent: &str,
        inputs: &Inputs,
        report_sub: &blueprint_streams::Subscription,
        budget: &SharedBudget,
        span: Option<SpanId>,
    ) -> Result<NodeAttempt, ExecutionError> {
        // An open circuit fails fast: no instruction is issued, so the
        // struggling agent gets no more traffic until its cooldown elapses.
        if let Some(b) = &self.breakers {
            if !b.allow(agent, self.now_micros()) {
                return Ok(NodeAttempt {
                    report: None,
                    attempts: 0,
                    error: Some(format!("circuit open for agent {agent}")),
                });
            }
        }

        let mut attempts: u32 = 0;
        let mut spent_delay: u64 = 0;
        loop {
            attempts += 1;
            let instruction = ExecuteAgent {
                agent: agent.to_string(),
                inputs: inputs.clone(),
                output_stream: format!("{}:task:{}:{}", self.scope, task_id, node_id),
                task_id: task_id.to_string(),
                node_id: node_id.to_string(),
                span: span.map(|s| s.0),
            };
            self.store
                .publish_to(
                    format!("{}:instructions", self.instruction_scope()),
                    ["instructions"],
                    instruction.into_message().from_producer("task-coordinator"),
                )
                .map_err(|e| ExecutionError(e.to_string()))?;

            let report = self.await_report(report_sub, task_id, node_id);
            let ok = report.as_ref().is_some_and(|r| r.ok);
            if let Some(b) = &self.breakers {
                b.record(agent, ok, self.now_micros());
            }
            if ok {
                return Ok(NodeAttempt {
                    report,
                    attempts,
                    error: None,
                });
            }

            let error = report
                .as_ref()
                .map(|r| r.error.clone().unwrap_or_else(|| "agent failed".into()))
                .unwrap_or_else(|| format!("timed out waiting for agent {agent}"));

            // Retrying against a tripped breaker is pointless; otherwise ask
            // the policy whether another attempt fits the retry budget.
            let circuit_open = self
                .breakers
                .as_ref()
                .is_some_and(|b| !b.allow(agent, self.now_micros()));
            if !circuit_open {
                if let Some(delay) = self.retry.delay_before(attempts, spent_delay) {
                    self.instruments.retries.inc();
                    self.obs.tracer.instant(
                        "coordinator",
                        format!("retry:{agent}#{attempts}"),
                        span,
                    );
                    // The failed attempt's cost and the backoff are real
                    // spend the caller experienced (accuracy-neutral: the
                    // retry supersedes the failed answer).
                    if let Some(r) = &report {
                        budget.charge(r.cost, r.latency_micros, 1.0);
                    }
                    budget.charge(0.0, delay, 1.0);
                    spent_delay += delay;
                    std::thread::sleep(Duration::from_micros(delay.min(100_000)));
                    continue;
                }
            }
            return Ok(NodeAttempt {
                report,
                attempts,
                error: Some(error),
            });
        }
    }

    /// Best-effort quarantine of a failed instruction onto the scope's
    /// dead-letter stream; failure to quarantine never masks the original
    /// error.
    fn quarantine_instruction(
        &self,
        task_id: &str,
        node_id: &str,
        agent: &str,
        inputs: &Inputs,
        error: &str,
        attempts: u32,
    ) {
        let Ok(dlq) = DeadLetterQueue::for_scope(&self.store, &self.scope) else {
            return;
        };
        let instruction = ExecuteAgent {
            agent: agent.to_string(),
            inputs: inputs.clone(),
            output_stream: format!("{}:task:{}:{}", self.scope, task_id, node_id),
            task_id: task_id.to_string(),
            node_id: node_id.to_string(),
            span: None,
        };
        let _ = dlq.quarantine(
            &instruction.into_message().from_producer("task-coordinator"),
            error,
            u64::from(attempts),
            "task-coordinator",
        );
    }

    /// Resolves one input binding, charging any data-plan costs to the
    /// budget. Errors are task-level (node failure), not machinery-level.
    fn resolve_input(
        &self,
        ir: &PlanIr,
        node: &IrNode,
        param: &str,
        binding: &IrBinding,
        budget: &SharedBudget,
    ) -> Result<Value, String> {
        match binding {
            IrBinding::Literal(v) => Ok(v.clone()),
            IrBinding::FromUser => {
                // Transformation (§V-H): a JSON-typed input fed from raw user
                // text goes through the data planner's extract operator
                // (PROFILER.CRITERIA ← USER.TEXT).
                let agent = node.agent().map(|(a, _)| a).unwrap_or_default();
                let wants_json = self
                    .registry
                    .get_spec(agent)
                    .ok()
                    .and_then(|s| s.input(param).map(|p| p.data_type == DataType::Json));
                if wants_json == Some(true) {
                    if let Some(dp) = &self.data_planner {
                        let extract_plan = dp.plan_extract(&ir.goal);
                        let executed = dp.execute(&extract_plan).map_err(|e| e.to_string())?;
                        budget.charge(
                            executed.actual.cost_per_call,
                            executed.actual.latency_micros,
                            executed.actual.accuracy,
                        );
                        return Ok(executed.value);
                    }
                }
                Ok(Value::String(ir.goal.clone()))
            }
            IrBinding::FromNode { node: from, output } => {
                // The producing node has already run (topological order);
                // read its recorded output from the reports stream? We keep
                // them in-memory via the outputs map owned by the caller —
                // but resolve_input has no access; instead re-read from the
                // producing node's report output stream.
                let stream = blueprint_streams::StreamId::new(format!(
                    "{}:task:{}:{}",
                    self.scope, ir.task_id, from
                ));
                let history = self
                    .store
                    .read(&stream, 0)
                    .map_err(|e| format!("missing upstream output stream: {e}"))?;
                for msg in history.iter().rev() {
                    if msg.has_tag(&Tag::new(output.as_str())) {
                        return Ok(msg.payload.clone());
                    }
                }
                Err(format!("upstream {from}.{output} produced no value"))
            }
            IrBinding::FromData { query } => {
                let dp = self
                    .data_planner
                    .as_ref()
                    .ok_or_else(|| format!("no data planner to satisfy: {query}"))?;
                let executed = dp.satisfy(query, &ir.goal).map_err(|e| e.to_string())?;
                budget.charge(
                    executed.actual.cost_per_call,
                    executed.actual.latency_micros,
                    executed.actual.accuracy,
                );
                Ok(executed.value)
            }
            IrBinding::Spliced { .. } => {
                // The data plan was inlined into the IR at lowering time
                // (and possibly re-optimized mid-flight); reconstruct the
                // owned sub-plan and execute it through the data planner.
                let dp = self
                    .data_planner
                    .as_ref()
                    .ok_or_else(|| "no data planner for spliced binding".to_string())?;
                let sub = ir
                    .data_subplan(&node.id, param)
                    .ok_or_else(|| format!("spliced binding {}.{param} has no subplan", node.id))?;
                let executed = dp.execute(&sub).map_err(|e| e.to_string())?;
                budget.charge(
                    executed.actual.cost_per_call,
                    executed.actual.latency_micros,
                    executed.actual.accuracy,
                );
                Ok(executed.value)
            }
        }
    }

    fn await_report(
        &self,
        sub: &blueprint_streams::Subscription,
        task_id: &str,
        node_id: &str,
    ) -> Option<AgentReport> {
        let deadline = std::time::Instant::now() + self.report_timeout;
        loop {
            // Drain already-queued messages before any deadline arithmetic:
            // a report that arrived in time must not be lost just because
            // the deadline has since passed (nor with a zero timeout, where
            // `checked_duration_since` is None from the very first loop).
            while let Ok(Some(msg)) = sub.try_recv() {
                if let Some(report) = Self::matching_report(&msg, task_id, node_id) {
                    return Some(report);
                }
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let msg = sub.recv_timeout(remaining).ok()?;
            if let Some(report) = Self::matching_report(&msg, task_id, node_id) {
                return Some(report);
            }
        }
    }

    fn matching_report(msg: &Message, task_id: &str, node_id: &str) -> Option<AgentReport> {
        AgentReport::from_message(msg).filter(|r| r.task_id == task_id && r.node_id == node_id)
    }

    fn publish_status(&self, task_id: &str, op: &str, args: Value) {
        let _ = self.store.publish_to(
            format!("{}:task:{}:status", self.scope, task_id),
            ["task-status"],
            Message::control(op, args)
                .with_tag("task-status")
                .from_producer("task-coordinator"),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_aborted(
        &self,
        task_id: &str,
        budget: Budget,
        node_results: Vec<NodeResult>,
        degradations: Vec<DegradationNote>,
        cache: CacheSavings,
        reoptimizations: Vec<ReoptimizationNote>,
        reason: String,
    ) -> Result<ExecutionReport, ExecutionError> {
        self.publish_status(task_id, "task-aborted", json!({"reason": reason}));
        Ok(ExecutionReport {
            task_id: task_id.to_string(),
            outcome: Outcome::Aborted { reason },
            budget,
            node_results,
            degradations,
            cache,
            reoptimizations,
            metrics: None,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_failed(
        &self,
        task_id: &str,
        budget: Budget,
        node_results: Vec<NodeResult>,
        degradations: Vec<DegradationNote>,
        cache: CacheSavings,
        reoptimizations: Vec<ReoptimizationNote>,
        node_id: &str,
        error: String,
    ) -> Result<ExecutionReport, ExecutionError> {
        self.publish_status(
            task_id,
            "task-failed",
            json!({"node": node_id, "error": error}),
        );
        Ok(ExecutionReport {
            task_id: task_id.to_string(),
            outcome: Outcome::Failed {
                node: node_id.to_string(),
                error,
            },
            budget,
            node_results,
            degradations,
            cache,
            reoptimizations,
            metrics: None,
        })
    }
}

/// What one node driver produced. One lives per in-flight node, briefly, on
/// the completion channel — not worth boxing the large variant.
#[allow(clippy::large_enum_variant)]
enum Driven {
    /// An input binding could not be resolved; no instruction was issued,
    /// so there is no node result and nothing to quarantine.
    ResolutionFailed(String),
    /// The node reached a terminal state: success, cache hit, or failure
    /// after exhausting retries and fallbacks.
    Done {
        node_result: NodeResult,
        degradation: Option<DegradationNote>,
        outputs: Value,
        /// Cost and latency the memo cache avoided (hits only).
        saved: Option<(f64, u64)>,
    },
}

/// Why the scheduler stopped admitting new nodes.
enum Halt {
    /// A node failed. `resolution` marks input-resolution failures, where
    /// the agent was never invoked.
    Failure {
        pos: usize,
        error: String,
        resolution: bool,
    },
    /// Actual spend exceeded the constraints.
    Exceeded,
    /// Projection exceeded the constraints under [`OverrunPolicy::Abort`].
    ProjectedAbort,
    /// Projection exceeded the constraints under [`OverrunPolicy::Replan`].
    ReplanOverrun,
    /// Observed spend drifted past the adaptive threshold; the pending IR
    /// suffix is re-optimized once the in-flight drivers drain.
    Reoptimize,
}

/// Records a node failure. The earliest topological position wins so the
/// reported failing node is deterministic under any completion order, and
/// abort decisions already taken stand.
fn raise_failure(halt: &mut Option<Halt>, pos: usize, error: String, resolution: bool) {
    match halt {
        Some(Halt::Failure { pos: existing, .. }) if *existing <= pos => {}
        Some(Halt::Exceeded) | Some(Halt::ProjectedAbort) => {}
        _ => {
            *halt = Some(Halt::Failure {
                pos,
                error,
                resolution,
            });
        }
    }
}

/// Inserts a position into the sorted ready list.
fn insert_sorted(ready: &mut Vec<usize>, value: usize) {
    let at = ready.partition_point(|&x| x < value);
    ready.insert(at, value);
}

/// Name of the plan's most expensive agent (replan exclusion heuristic).
fn most_expensive(ir: &PlanIr) -> String {
    ir.agent_nodes()
        .max_by(|a, b| {
            a.qos
                .profile
                .cost_per_call
                .partial_cmp(&b.qos.profile.cost_per_call)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .and_then(|n| n.agent().map(|(a, _)| a.to_string()))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_agents::{
        AgentContext, AgentFactory, AgentSpec, CostProfile, FnProcessor, Outputs, ParamSpec,
        Processor,
    };
    use blueprint_planner::{InputBinding, PlanNode};
    use std::collections::BTreeMap;

    fn upper_agent(factory: &AgentFactory, name: &str, cost: f64) {
        let spec = AgentSpec::new(name, format!("{name} uppercases text"))
            .with_input(ParamSpec::required("text", "input text", DataType::Text))
            .with_output(ParamSpec::required("out", "uppercased", DataType::Text))
            .with_profile(CostProfile::new(cost, 1_000, 0.95));
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let text = inputs.require_str("text")?;
                ctx.charge_cost(0.5);
                ctx.charge_latency_micros(1_000);
                Ok(Outputs::new().with("out", json!(text.to_uppercase())))
            },
        ));
        factory.register(spec, proc).unwrap();
    }

    fn chain_plan(task_id: &str, agents: &[&str]) -> TaskPlan {
        chain_plan_with_cost(task_id, agents, 1.0)
    }

    fn chain_plan_with_cost(task_id: &str, agents: &[&str], est_cost: f64) -> TaskPlan {
        let mut plan = TaskPlan::new(task_id, "hello world");
        for (i, agent) in agents.iter().enumerate() {
            let mut inputs = BTreeMap::new();
            if i == 0 {
                inputs.insert("text".to_string(), InputBinding::FromUser);
            } else {
                inputs.insert(
                    "text".to_string(),
                    InputBinding::FromNode {
                        node: format!("n{i}"),
                        output: "out".to_string(),
                    },
                );
            }
            plan.push(PlanNode {
                id: format!("n{}", i + 1),
                agent: agent.to_string(),
                task: format!("step {i}"),
                inputs,
                profile: CostProfile::new(est_cost, 1_000, 0.95),
            });
        }
        plan
    }

    fn setup(agents: &[&str]) -> (AgentFactory, TaskCoordinator, Arc<AgentRegistry>) {
        let store = StreamStore::new();
        let factory = AgentFactory::new(store.clone());
        let registry = Arc::new(AgentRegistry::new());
        for a in agents {
            upper_agent(&factory, a, 1.0);
            registry
                .register(
                    AgentSpec::new(*a, format!("{a} uppercases text"))
                        .with_input(ParamSpec::required("text", "input", DataType::Text))
                        .with_output(ParamSpec::required("out", "output", DataType::Text))
                        .with_profile(CostProfile::new(1.0, 1_000, 0.95)),
                )
                .unwrap();
            factory.spawn(a, "session:1").unwrap();
        }
        let coordinator = TaskCoordinator::new(store, "session:1", registry.clone())
            .with_report_timeout(Duration::from_secs(5));
        (factory, coordinator, registry)
    }

    #[test]
    fn executes_chain_and_tracks_budget() {
        let (_factory, coordinator, _) = setup(&["alpha", "beta"]);
        let plan = chain_plan("t1", &["alpha", "beta"]);
        let report = coordinator
            .execute(&plan, QosConstraints::none().with_max_cost(10.0))
            .unwrap();
        assert!(report.outcome.succeeded());
        match &report.outcome {
            Outcome::Completed { output } => {
                assert_eq!(output["out"], json!("HELLO WORLD"));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(report.node_results.len(), 2);
        assert!(report.node_results.iter().all(|n| n.ok));
        // Each agent charged 0.5 cost and 1ms latency.
        assert!((report.budget.spent_cost - 1.0).abs() < 1e-9);
        assert_eq!(report.budget.spent_latency_micros, 2_000);
        assert_eq!(report.budget.status(), BudgetStatus::Healthy);
    }

    #[test]
    fn aborts_when_actual_cost_exceeds_budget() {
        let (_factory, coordinator, _) = setup(&["alpha", "beta", "gamma"]);
        // Estimated cost is zero, so no projected-overrun fires; each step
        // actually charges 0.5, so the second step pushes actuals past 0.8.
        let plan = chain_plan_with_cost("t2", &["alpha", "beta", "gamma"], 0.0);
        let report = coordinator
            .execute(&plan, QosConstraints::none().with_max_cost(0.8))
            .unwrap();
        match &report.outcome {
            Outcome::Aborted { reason } => assert!(reason.contains("exceeded")),
            other => panic!("unexpected outcome: {other:?}"),
        }
        // Aborted before the third node ran.
        assert!(report.node_results.len() < 3);
    }

    #[test]
    fn projected_overrun_aborts_under_default_policy() {
        let (_factory, coordinator, _) = setup(&["alpha", "beta"]);
        let plan = chain_plan("t3", &["alpha", "beta"]);
        // Projection: latencies are estimated at 1ms per node; spent adds
        // actual 1ms each. Cap total latency at 2.5ms: after node 1 (spent
        // 1ms + projected 1ms = 2ms) healthy; actuals stay under, so this
        // completes. Instead cap cost: projected 2.0, spend 0.5/node, cap
        // 1.2 → after node 1: spent 0.5 + projected 1.0 = 1.5 > 1.2.
        let report = coordinator
            .execute(&plan, QosConstraints::none().with_max_cost(1.2))
            .unwrap();
        match &report.outcome {
            Outcome::Aborted { reason } => assert!(reason.contains("projected")),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn continue_policy_pushes_through_overrun() {
        let (factory, _, registry) = setup(&["alpha", "beta"]);
        let coordinator = TaskCoordinator::new(factory.store().clone(), "session:1", registry)
            .with_policy(OverrunPolicy::Continue);
        let plan = chain_plan("t4", &["alpha", "beta"]);
        let report = coordinator
            .execute(&plan, QosConstraints::none().with_max_cost(1.2))
            .unwrap();
        assert!(report.outcome.succeeded());
    }

    #[test]
    fn missing_agent_times_out_to_failure() {
        let (_factory, coordinator, _) = setup(&["alpha"]);
        let coordinator = coordinator.with_report_timeout(Duration::from_millis(200));
        let plan = chain_plan("t5", &["ghost-agent"]);
        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        match &report.outcome {
            Outcome::Failed { node, error } => {
                assert_eq!(node, "n1");
                assert!(error.contains("timed out"));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn invalid_plan_is_machinery_error() {
        let (_factory, coordinator, _) = setup(&["alpha"]);
        let mut plan = chain_plan("t6", &["alpha"]);
        plan.nodes[0].inputs.insert(
            "text".into(),
            InputBinding::FromNode {
                node: "ghost".into(),
                output: "out".into(),
            },
        );
        assert!(coordinator.execute(&plan, QosConstraints::none()).is_err());
    }

    #[test]
    fn from_data_without_data_planner_fails_node() {
        let (_factory, coordinator, _) = setup(&["alpha"]);
        let mut plan = chain_plan("t7", &["alpha"]);
        plan.nodes[0].inputs.insert(
            "text".into(),
            InputBinding::FromData {
                query: "job listings".into(),
            },
        );
        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        assert!(matches!(report.outcome, Outcome::Failed { .. }));
    }

    #[test]
    fn status_messages_are_published() {
        let (factory, coordinator, _) = setup(&["alpha"]);
        let sub = factory
            .store()
            .subscribe(Selector::AllStreams, TagFilter::any_of(["task-status"]))
            .unwrap();
        let plan = chain_plan("t8", &["alpha"]);
        coordinator.execute(&plan, QosConstraints::none()).unwrap();
        let msg = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.control_op(), Some("task-completed"));
    }

    #[test]
    fn replans_around_failed_agent() {
        // A failing primary and a healthy backup with the same description:
        // the coordinator replans, excluding the primary.
        let store = StreamStore::new();
        let factory = AgentFactory::new(store.clone());
        let registry = Arc::new(AgentRegistry::new());

        let fail_spec = AgentSpec::new("flaky-upper", "uppercase text transformer service")
            .with_input(ParamSpec::required("text", "input", DataType::Text))
            .with_output(ParamSpec::required("out", "output", DataType::Text))
            .with_profile(CostProfile::new(1.0, 1_000, 0.95));
        let fail_proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            |_: &Inputs, _: &AgentContext| -> blueprint_agents::Result<Outputs> {
                Err(blueprint_agents::AgentError::ProcessorFailed(
                    "service unavailable".into(),
                ))
            },
        ));
        factory.register(fail_spec.clone(), fail_proc).unwrap();
        registry.register(fail_spec).unwrap();
        upper_agent(&factory, "backup-upper", 1.0);
        registry
            .register(
                AgentSpec::new("backup-upper", "uppercase text transformer service")
                    .with_input(ParamSpec::required("text", "input", DataType::Text))
                    .with_output(ParamSpec::required("out", "output", DataType::Text))
                    .with_profile(CostProfile::new(1.0, 1_000, 0.95)),
            )
            .unwrap();
        factory.spawn("flaky-upper", "session:1").unwrap();
        factory.spawn("backup-upper", "session:1").unwrap();

        let llm = Arc::new(blueprint_llmsim::SimLlm::new(
            blueprint_llmsim::ModelProfile::large(),
        ));
        let task_planner = Arc::new(TaskPlanner::new(registry.clone(), llm));
        // Boost flaky-upper so the planner picks it first.
        registry
            .record_usage("flaky-upper", "uppercase text transformer service")
            .unwrap();

        let coordinator = TaskCoordinator::new(store, "session:1", registry.clone())
            .with_task_planner(task_planner.clone());

        let plan = task_planner
            .plan_subtasks(
                "please uppercase this",
                &["uppercase text transformer service".to_string()],
                &[],
            )
            .unwrap();
        assert_eq!(plan.nodes[0].agent, "flaky-upper");

        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        match &report.outcome {
            Outcome::Replanned { reason, inner } => {
                assert!(reason.contains("flaky-upper"));
                assert!(inner.outcome.succeeded());
                assert_eq!(inner.node_results[0].agent, "backup-upper");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert!(report.outcome.succeeded());
    }

    #[test]
    fn projected_overrun_replans_onto_cheaper_agent() {
        // Two interchangeable services; the planner initially assigns the
        // expensive one. Under a cost cap with the Replan policy, the
        // coordinator swaps to the economical service mid-flight (§V-H:
        // "trigger the task planner to replan").
        let store = StreamStore::new();
        let factory = blueprint_agents::AgentFactory::new(store.clone());
        let registry = Arc::new(AgentRegistry::new());
        for (name, est_cost) in [("premium-echo", 5.0), ("budget-echo", 0.1)] {
            let spec = AgentSpec::new(name, "echo the text back to the caller")
                .with_input(ParamSpec::required("text", "t", DataType::Text))
                .with_output(ParamSpec::required("out", "o", DataType::Text))
                .with_profile(CostProfile::new(est_cost, 1_000, 0.95));
            let proc: Arc<dyn Processor> =
                Arc::new(FnProcessor::new(|inputs: &Inputs, ctx: &AgentContext| {
                    ctx.charge_cost(0.05);
                    Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
                }));
            factory.register(spec.clone(), proc).unwrap();
            registry.register(spec).unwrap();
            factory.spawn(name, "session:1").unwrap();
        }
        // Bias planning toward the premium agent.
        registry
            .record_usage("premium-echo", "echo the text back to the caller")
            .unwrap();
        let llm = Arc::new(blueprint_llmsim::SimLlm::new(
            blueprint_llmsim::ModelProfile::large(),
        ));
        let planner = Arc::new(TaskPlanner::new(Arc::clone(&registry), llm));
        let coordinator = TaskCoordinator::new(store, "session:1", registry)
            .with_task_planner(Arc::clone(&planner))
            .with_policy(OverrunPolicy::Replan);

        // A two-step plan over the premium agent: projected cost 10.0.
        let plan = planner
            .plan_subtasks(
                "echo twice",
                &[
                    "echo the text back to the caller".to_string(),
                    "echo the text back to the caller".to_string(),
                ],
                &[],
            )
            .unwrap();
        assert!(plan.nodes.iter().all(|n| n.agent == "premium-echo"));

        // Cap at 4.0: the remaining projection exceeds it after step 1,
        // triggering the replan path.
        let report = coordinator
            .execute(&plan, QosConstraints::none().with_max_cost(4.0))
            .unwrap();
        match &report.outcome {
            Outcome::Replanned { reason, inner } => {
                assert!(reason.contains("overrun"));
                assert!(inner.outcome.succeeded());
                assert!(inner.node_results.iter().all(|n| n.agent == "budget-echo"));
            }
            other => panic!("expected replan, got {other:?}"),
        }
        assert!(report.outcome.succeeded());
    }

    fn failing_agent(factory: &AgentFactory, registry: &AgentRegistry, name: &str) {
        let spec = AgentSpec::new(name, format!("{name} uppercases text"))
            .with_input(ParamSpec::required("text", "input", DataType::Text))
            .with_output(ParamSpec::required("out", "output", DataType::Text))
            .with_profile(CostProfile::new(1.0, 1_000, 0.95));
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            |_: &Inputs, ctx: &AgentContext| -> blueprint_agents::Result<Outputs> {
                ctx.charge_latency_micros(1_000);
                Err(blueprint_agents::AgentError::ProcessorFailed(
                    "service down".into(),
                ))
            },
        ));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn(name, "session:1").unwrap();
    }

    #[test]
    fn await_report_sees_report_queued_at_exact_deadline() {
        // Regression: a zero report timeout puts the deadline exactly at
        // "now", so the old deadline-first arithmetic returned None without
        // ever looking at the subscription — losing reports that had
        // already arrived in time.
        let (factory, coordinator, _) = setup(&["alpha"]);
        let coordinator = coordinator.with_report_timeout(Duration::from_millis(0));
        let sub = factory
            .store()
            .subscribe(Selector::AllStreams, TagFilter::any_of(["task:tz"]))
            .unwrap();
        let queued = AgentReport {
            agent: "alpha".into(),
            task_id: "tz".into(),
            node_id: "n1".into(),
            ok: true,
            error: None,
            cost: 0.1,
            latency_micros: 10,
            outputs: json!({"out": "X"}),
        };
        factory
            .store()
            .publish_to(
                "session:1:reports",
                ["agent-report"],
                queued.into_message().from_producer("alpha"),
            )
            .unwrap();
        let got = coordinator.await_report(&sub, "tz", "n1");
        assert!(got.is_some_and(|r| r.ok && r.node_id == "n1"));
    }

    #[test]
    fn await_report_zero_timeout_returns_none_when_nothing_queued() {
        // The zero-timeout path must still terminate immediately (no hang)
        // when no report has arrived.
        let (factory, coordinator, _) = setup(&["alpha"]);
        let coordinator = coordinator.with_report_timeout(Duration::from_millis(0));
        let sub = factory
            .store()
            .subscribe(Selector::AllStreams, TagFilter::any_of(["task:tq"]))
            .unwrap();
        assert!(coordinator.await_report(&sub, "tq", "n1").is_none());
    }

    #[test]
    fn retries_transient_failure_until_success() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let (factory, coordinator, registry) = setup(&["alpha"]);
        // An agent that fails its first two calls, then recovers.
        let spec = AgentSpec::new("flaky-up", "flaky uppercaser")
            .with_input(ParamSpec::required("text", "input", DataType::Text))
            .with_output(ParamSpec::required("out", "output", DataType::Text))
            .with_profile(CostProfile::new(1.0, 1_000, 0.95));
        let calls = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&calls);
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                ctx.charge_latency_micros(1_000);
                if counter.fetch_add(1, Ordering::SeqCst) < 2 {
                    return Err(blueprint_agents::AgentError::ProcessorFailed(
                        "transient glitch".into(),
                    ));
                }
                Ok(Outputs::new().with("out", json!(inputs.require_str("text")?.to_uppercase())))
            },
        ));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn("flaky-up", "session:1").unwrap();

        let coordinator = coordinator.with_retry_policy(RetryPolicy::standard(7));
        let plan = chain_plan("tr", &["flaky-up"]);
        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        assert!(report.outcome.succeeded());
        assert_eq!(report.node_results[0].attempts, 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        // Two backoff delays (~5ms and ~10ms, ±10% jitter) were debited
        // from the latency budget on top of the per-attempt agent latency.
        assert!(
            report.budget.spent_latency_micros >= 13_000,
            "backoff not charged: {}",
            report.budget.spent_latency_micros
        );
    }

    #[test]
    fn open_circuit_fails_fast_and_quarantines_to_dead_letter() {
        use blueprint_resilience::BreakerConfig;

        let (factory, coordinator, registry) = setup(&["alpha"]);
        failing_agent(&factory, &registry, "always-down");
        let breakers = Arc::new(BreakerRegistry::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown_micros: 600_000_000, // stays open for the whole test
            half_open_probes: 1,
        }));
        let coordinator = coordinator.with_breakers(Arc::clone(&breakers));

        // Two failing executions trip the breaker ...
        for task in ["tc1", "tc2"] {
            let plan = chain_plan(task, &["always-down"]);
            let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
            assert!(matches!(report.outcome, Outcome::Failed { .. }));
            assert_eq!(report.node_results[0].attempts, 1);
        }
        assert!(breakers.is_open("always-down"));

        // ... so the third fails fast without ever invoking the agent.
        let plan = chain_plan("tc3", &["always-down"]);
        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        match &report.outcome {
            Outcome::Failed { error, .. } => assert!(error.contains("circuit open")),
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(report.node_results[0].attempts, 0);

        // Every exhausted instruction was quarantined with metadata.
        let dlq = DeadLetterQueue::for_scope(factory.store(), "session:1").unwrap();
        let entries = dlq.entries().unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().all(|e| e.source == "task-coordinator"));
        assert!(entries[2].reason.contains("circuit open"));
    }

    #[test]
    fn failed_agent_falls_back_down_the_degradation_ladder() {
        let (factory, coordinator, registry) = setup(&["econ-up"]);
        failing_agent(&factory, &registry, "premium-up");
        let coordinator = coordinator.with_degradation(DegradationLadder::new().with_fallback(
            "premium-up",
            "econ-up",
            0.1,
        ));
        let plan = chain_plan("tf", &["premium-up"]);
        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        match &report.outcome {
            Outcome::Completed { output } => assert_eq!(output["out"], json!("HELLO WORLD")),
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(report.node_results[0].agent, "econ-up");
        assert_eq!(report.node_results[0].attempts, 2); // primary + fallback
        assert_eq!(report.degradations.len(), 1);
        assert_eq!(report.degradations[0].from, "premium-up");
        assert_eq!(report.degradations[0].to.as_deref(), Some("econ-up"));
        assert!((report.degradations[0].accuracy_penalty - 0.1).abs() < 1e-9);
    }

    #[test]
    fn skippable_node_is_dropped_under_budget_pressure() {
        let (_factory, coordinator, _) = setup(&["alpha", "guardrail"]);
        let coordinator = coordinator
            .with_policy(OverrunPolicy::Continue)
            .with_degradation(DegradationLadder::new().with_skippable("guardrail"));
        let plan = chain_plan("tg", &["alpha", "guardrail"]);
        // Cap 1.2 with 1.0 projected per node: after node 1 the projection
        // overruns, so the optional guardrail node is skipped.
        let report = coordinator
            .execute(&plan, QosConstraints::none().with_max_cost(1.2))
            .unwrap();
        assert!(report.outcome.succeeded());
        assert_eq!(report.node_results.len(), 2);
        assert!(report.node_results[1].ok);
        assert_eq!(report.node_results[1].attempts, 0);
        assert_eq!(report.degradations.len(), 1);
        assert_eq!(report.degradations[0].from, "guardrail");
        assert_eq!(report.degradations[0].to, None);
    }

    #[test]
    fn from_data_binding_is_satisfied_by_data_planner() {
        use blueprint_datastore::{RelationalDb, RelationalSource};
        use blueprint_llmsim::{ModelProfile, ParametricSource, SimLlm};
        use blueprint_registry::DataRegistry;

        let store = StreamStore::new();
        let factory = AgentFactory::new(store.clone());
        let registry = Arc::new(AgentRegistry::new());

        // A matcher agent that counts the jobs it was handed.
        let spec = AgentSpec::new("counter", "count the jobs handed to it")
            .with_input(ParamSpec::required("jobs", "job listings", DataType::Table))
            .with_output(ParamSpec::required("count", "job count", DataType::Number))
            .with_profile(CostProfile::new(0.1, 100, 1.0));
        let proc: Arc<dyn Processor> =
            Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
                let n = inputs
                    .require("jobs")?
                    .as_array()
                    .map(Vec::len)
                    .unwrap_or(0);
                Ok(Outputs::new().with("count", json!(n)))
            }));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn("counter", "session:1").unwrap();

        // Data planner over a jobs table + parametric source.
        let db = Arc::new(RelationalDb::new());
        db.execute("CREATE TABLE jobs (id INT, title TEXT, city TEXT)")
            .unwrap();
        db.execute(
            "INSERT INTO jobs VALUES (1, 'data scientist', 'san francisco'), \
             (2, 'data scientist', 'new york'), (3, 'recruiter', 'oakland')",
        )
        .unwrap();
        let llm = Arc::new(SimLlm::new(ModelProfile::large()));
        let mut dp = DataPlanner::new(Arc::new(DataRegistry::new()), Arc::clone(&llm));
        dp.add_source(Arc::new(RelationalSource::new("hr-db", db)));
        dp.add_source(Arc::new(ParametricSource::new("gpt", llm)));

        let coordinator =
            TaskCoordinator::new(store, "session:1", registry).with_data_planner(Arc::new(dp));

        let mut plan = TaskPlan::new(
            "t9",
            "I am looking for a data scientist position in SF bay area.",
        );
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "jobs".to_string(),
            InputBinding::FromData {
                query: "available job listings".into(),
            },
        );
        plan.push(PlanNode {
            id: "n1".into(),
            agent: "counter".into(),
            task: "count".into(),
            inputs,
            profile: CostProfile::new(0.1, 100, 1.0),
        });

        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        match &report.outcome {
            Outcome::Completed { output } => {
                // Only job 1 is a data scientist in a bay-area city.
                assert_eq!(output["count"], json!(1));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        // The data plan's LLM cost was charged to the budget.
        assert!(report.budget.spent_cost > 0.0);
    }

    fn sleep_agent(factory: &AgentFactory, registry: &AgentRegistry, name: &str, millis: u64) {
        let spec = AgentSpec::new(name, format!("{name} sleeps then answers"))
            .with_input(ParamSpec::required("text", "input text", DataType::Text))
            .with_output(ParamSpec::required("out", "answer", DataType::Text))
            .with_profile(CostProfile::new(1.0, 1_000, 0.95));
        let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                std::thread::sleep(Duration::from_millis(millis));
                let text = inputs.require_str("text")?;
                ctx.charge_cost(0.25);
                ctx.charge_latency_micros(1_000);
                Ok(Outputs::new().with("out", json!(text.to_uppercase())))
            },
        ));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn(name, "session:1").unwrap();
    }

    fn fanout_plan(task_id: &str, agents: &[String]) -> TaskPlan {
        let mut plan = TaskPlan::new(task_id, "hello world");
        for (i, agent) in agents.iter().enumerate() {
            let mut inputs = BTreeMap::new();
            inputs.insert("text".to_string(), InputBinding::FromUser);
            plan.push(PlanNode {
                id: format!("n{}", i + 1),
                agent: agent.clone(),
                task: format!("branch {i}"),
                inputs,
                profile: CostProfile::new(1.0, 1_000, 0.95),
            });
        }
        plan
    }

    fn sleepy_coordinator(
        branches: usize,
        millis: u64,
    ) -> (AgentFactory, TaskCoordinator, Vec<String>) {
        let agents: Vec<String> = (0..branches).map(|i| format!("sleep-{i}")).collect();
        let store = StreamStore::new();
        let factory = AgentFactory::new(store.clone());
        let registry = Arc::new(AgentRegistry::new());
        for name in &agents {
            sleep_agent(&factory, &registry, name, millis);
        }
        let coordinator = TaskCoordinator::new(store, "session:1", registry);
        (factory, coordinator, agents)
    }

    #[test]
    fn parallel_scheduler_overlaps_independent_branches() {
        let (_factory, coordinator, agents) = sleepy_coordinator(6, 40);
        let plan = fanout_plan("t-fan", &agents);
        let start = std::time::Instant::now();
        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        let elapsed = start.elapsed();
        assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
        // Results merge back into topological order even though the branches
        // complete in arbitrary order.
        let ids: Vec<&str> = report
            .node_results
            .iter()
            .map(|r| r.node.as_str())
            .collect();
        assert_eq!(ids, ["n1", "n2", "n3", "n4", "n5", "n6"]);
        assert!((report.budget.spent_cost - 6.0 * 0.25).abs() < 1e-9);
        // Six 40 ms branches overlap; a sequential walk needs at least 240 ms.
        assert!(elapsed < Duration::from_millis(200), "took {elapsed:?}");
    }

    #[test]
    fn sequential_mode_walks_one_node_at_a_time() {
        let (_factory, coordinator, agents) = sleepy_coordinator(4, 30);
        let coordinator = coordinator.with_scheduler(SchedulerMode::Sequential);
        let plan = fanout_plan("t-seq", &agents);
        let start = std::time::Instant::now();
        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
        assert!(start.elapsed() >= Duration::from_millis(120));
    }

    #[test]
    fn bounded_parallelism_caps_in_flight_nodes() {
        let (_factory, coordinator, agents) = sleepy_coordinator(6, 30);
        let coordinator = coordinator.with_scheduler(SchedulerMode::Parallel { max_in_flight: 2 });
        let plan = fanout_plan("t-cap", &agents);
        let start = std::time::Instant::now();
        let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
        // Six 30 ms branches two at a time: at least three full waves.
        assert!(start.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn memo_cache_replays_repeated_chain_at_zero_cost() {
        let (_factory, coordinator, _registry) = setup(&["echo-1", "echo-2"]);
        let coordinator = coordinator.with_memoization(Arc::new(MemoCache::new(64)));
        let plan = chain_plan("t-memo", &["echo-1", "echo-2"]);

        let first = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        assert!(first.outcome.succeeded(), "outcome: {:?}", first.outcome);
        assert_eq!(first.cache.hits, 0);
        assert!(first.node_results.iter().all(|r| !r.cached));
        let spent = first.budget.spent_cost;
        assert!(spent > 0.0);

        // The same plan again: every node is a hit, nothing is charged, and
        // the replayed outputs flow through downstream bindings unchanged.
        let second = coordinator.execute(&plan, QosConstraints::none()).unwrap();
        assert!(second.outcome.succeeded(), "outcome: {:?}", second.outcome);
        assert_eq!(second.cache.hits, 2);
        assert!(second
            .node_results
            .iter()
            .all(|r| r.cached && r.attempts == 0 && r.cost == 0.0));
        assert_eq!(second.budget.spent_cost, 0.0);
        assert!((second.cache.cost_saved - spent).abs() < 1e-9);
        assert!(second.cache.latency_saved_micros > 0);
        let output = |report: &ExecutionReport| match &report.outcome {
            Outcome::Completed { output } => output.clone(),
            other => panic!("unexpected outcome: {other:?}"),
        };
        assert_eq!(output(&first), output(&second));
    }
}
