//! The coordinator as a stream participant.
//!
//! In the case study (Fig 9) the Task Coordinator is itself an agent:
//! "Task Coordinator agent (TC) listening to any stream with a plan unrolls
//! the plan and emits a Control Message to execute \[the\] agent". The
//! [`CoordinatorDaemon`] subscribes to `task-plan` messages anywhere in its
//! scope and executes each arriving plan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use blueprint_optimizer::QosConstraints;
use blueprint_planner::TaskPlan;
use blueprint_streams::{Selector, StreamStore, TagFilter};

use crate::coordinator::TaskCoordinator;

/// Runs a [`TaskCoordinator`] as a background plan-listener.
pub struct CoordinatorDaemon {
    handle: Option<JoinHandle<()>>,
    stop_tx: Option<crossbeam::channel::Sender<()>>,
    executed: Arc<AtomicU64>,
}

impl CoordinatorDaemon {
    /// Spawns the daemon: every `task-plan` message within the
    /// coordinator's session scope is executed under `constraints`. Plans
    /// from other sessions are another daemon's responsibility.
    pub fn spawn(
        coordinator: Arc<TaskCoordinator>,
        store: StreamStore,
        constraints: QosConstraints,
    ) -> blueprint_streams::Result<Self> {
        let sub = store.subscribe(
            Selector::Scope(coordinator.scope().to_string()),
            TagFilter::any_of(["task-plan"]),
        )?;
        let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
        let executed = Arc::new(AtomicU64::new(0));
        let executed2 = Arc::clone(&executed);
        let handle = std::thread::Builder::new()
            .name("task-coordinator".into())
            .spawn(move || loop {
                crossbeam::channel::select! {
                    recv(stop_rx) -> _ => break,
                    recv(sub.receiver()) -> msg => {
                        let Ok(msg) = msg else { break };
                        if let Some(plan) = TaskPlan::from_message(&msg) {
                            let _ = coordinator.execute(&plan, constraints);
                            executed2.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
            .expect("spawn coordinator daemon");
        Ok(CoordinatorDaemon {
            handle: Some(handle),
            stop_tx: Some(stop_tx),
            executed,
        })
    }

    /// Number of plans executed so far.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Stops the daemon.
    pub fn stop(&mut self) {
        if let Some(tx) = self.stop_tx.take() {
            let _ = tx.send(());
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CoordinatorDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_agents::{
        AgentContext, AgentFactory, AgentSpec, CostProfile, DataType, FnProcessor, Inputs, Outputs,
        ParamSpec, Processor,
    };
    use blueprint_planner::{InputBinding, PlanNode};
    use blueprint_registry::AgentRegistry;
    use serde_json::json;
    use std::collections::BTreeMap;
    use std::time::Duration;

    #[test]
    fn daemon_executes_published_plans() {
        let store = StreamStore::new();
        let factory = AgentFactory::new(store.clone());
        let registry = Arc::new(AgentRegistry::new());
        let spec = AgentSpec::new("echo", "echoes")
            .with_input(ParamSpec::required("text", "t", DataType::Text))
            .with_output(ParamSpec::required("out", "o", DataType::Text))
            .with_profile(CostProfile::new(0.1, 100, 1.0));
        let proc: Arc<dyn Processor> =
            Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
                Ok(Outputs::new().with("out", json!(inputs.require_str("text")?)))
            }));
        factory.register(spec.clone(), proc).unwrap();
        registry.register(spec).unwrap();
        factory.spawn("echo", "session:1").unwrap();

        let coordinator = Arc::new(TaskCoordinator::new(store.clone(), "session:1", registry));
        let mut daemon =
            CoordinatorDaemon::spawn(coordinator, store.clone(), QosConstraints::none()).unwrap();

        // Publish a plan message; the daemon should run it end to end.
        let mut plan = TaskPlan::new("t1", "ping");
        let mut inputs = BTreeMap::new();
        inputs.insert("text".to_string(), InputBinding::FromUser);
        plan.push(PlanNode {
            id: "n1".into(),
            agent: "echo".into(),
            task: "echo".into(),
            inputs,
            profile: CostProfile::new(0.1, 100, 1.0),
        });
        let status_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["task-status"]))
            .unwrap();
        store
            .publish_to(
                "session:1:plans",
                ["plans"],
                plan.into_message().from_producer("agentic-employer"),
            )
            .unwrap();

        let status = status_sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(status.control_op(), Some("task-completed"));
        for _ in 0..100 {
            if daemon.executed() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(daemon.executed(), 1);
        daemon.stop();
    }

    #[test]
    fn stop_is_idempotent() {
        let store = StreamStore::new();
        let registry = Arc::new(AgentRegistry::new());
        let coordinator = Arc::new(TaskCoordinator::new(store.clone(), "s", registry));
        let mut daemon =
            CoordinatorDaemon::spawn(coordinator, store, QosConstraints::none()).unwrap();
        daemon.stop();
        daemon.stop();
        assert_eq!(daemon.executed(), 0);
    }
}
