//! # blueprint-session
//!
//! Sessions define "the context and scope for agents' collaborative work"
//! (§V-E). A [`Session`] owns a scope prefix (`session:<id>`), a *session
//! stream* on which agents signal entry/exit and announce new output
//! streams, and helpers for nested scoping (`SESSION:ID:PROFILE`) analogous
//! to scoping in programming languages. A [`SessionManager`] mints sessions
//! with unique ids over a shared [`StreamStore`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde_json::json;

use blueprint_streams::{
    Message, Selector, StreamError, StreamId, StreamStore, Subscription, Tag, TagFilter,
};

pub mod router;

pub use router::{
    DispatchRecord, Disposition, JobOutcome, RouterError, ServingConfig, SessionJob, SessionReport,
    SessionRouter, TaskCompletion,
};

/// Result alias for session operations.
pub type Result<T> = std::result::Result<T, StreamError>;

/// Control ops published on the session stream.
pub mod ops {
    /// An agent joined the session.
    pub const AGENT_ENTER: &str = "agent-enter";
    /// An agent left the session.
    pub const AGENT_EXIT: &str = "agent-exit";
    /// A component announced a new output stream within the session.
    pub const STREAM_CREATED: &str = "stream-created";
}

/// A scoped collaboration context.
#[derive(Clone)]
pub struct Session {
    store: StreamStore,
    id: u64,
    scope: String,
    /// The root session stream (shared by nested scopes).
    session_stream: StreamId,
    participants: Arc<RwLock<Vec<String>>>,
}

impl Session {
    /// Creates a session with the given id, establishing its session stream.
    pub fn create(store: StreamStore, id: u64) -> Result<Self> {
        let scope = format!("session:{id}");
        let session_stream = store.ensure_stream(format!("{scope}:session"), ["session"])?;
        Ok(Session {
            store,
            id,
            scope,
            session_stream,
            participants: Arc::new(RwLock::new(Vec::new())),
        })
    }

    /// The numeric session id (shared by nested scopes).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The scope prefix (`session:<id>`).
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// The underlying store.
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// The root session stream's id (shared by nested scopes).
    pub fn session_stream(&self) -> StreamId {
        self.session_stream.clone()
    }

    /// Extends the context with a nested scope segment
    /// (`SESSION:ID:PROFILE` style). Nested scopes share the session stream.
    pub fn nested(&self, segment: &str) -> Session {
        Session {
            store: self.store.clone(),
            id: self.id,
            scope: format!("{}:{}", self.scope, segment.to_ascii_lowercase()),
            session_stream: self.session_stream.clone(),
            participants: Arc::clone(&self.participants),
        }
    }

    /// Registers an agent in the session, signalling `agent-enter` on the
    /// session stream. Duplicate entries are ignored.
    pub fn add_agent(&self, agent: &str) -> Result<()> {
        {
            let mut parts = self.participants.write();
            if parts.iter().any(|p| p == agent) {
                return Ok(());
            }
            parts.push(agent.to_string());
        }
        self.store.publish(
            &self.session_stream(),
            Message::control(
                ops::AGENT_ENTER,
                json!({"agent": agent, "scope": self.scope}),
            )
            .from_producer(agent.to_string()),
        )?;
        Ok(())
    }

    /// Removes an agent, signalling `agent-exit`.
    pub fn remove_agent(&self, agent: &str) -> Result<()> {
        {
            let mut parts = self.participants.write();
            let before = parts.len();
            parts.retain(|p| p != agent);
            if parts.len() == before {
                return Ok(());
            }
        }
        self.store.publish(
            &self.session_stream(),
            Message::control(
                ops::AGENT_EXIT,
                json!({"agent": agent, "scope": self.scope}),
            )
            .from_producer(agent.to_string()),
        )?;
        Ok(())
    }

    /// Current participants in join order.
    pub fn participants(&self) -> Vec<String> {
        self.participants.read().clone()
    }

    /// Creates (or reuses) a stream scoped under this session and announces
    /// it on the session stream. Returns the full stream id.
    pub fn create_stream<I, T>(&self, segment: &str, tags: I, creator: &str) -> Result<StreamId>
    where
        I: IntoIterator<Item = T>,
        T: Into<Tag>,
    {
        let id = self
            .store
            .ensure_stream(format!("{}:{}", self.scope, segment), tags)?;
        self.store.publish(
            &self.session_stream(),
            Message::control(
                ops::STREAM_CREATED,
                json!({"stream": id.as_str(), "creator": creator}),
            )
            .from_producer(creator.to_string()),
        )?;
        Ok(id)
    }

    /// Publishes a message onto a scoped stream (creating it if needed).
    pub fn publish(&self, segment: &str, msg: Message) -> Result<()> {
        let id = self
            .store
            .ensure_stream(format!("{}:{}", self.scope, segment), Vec::<Tag>::new())?;
        self.store.publish(&id, msg)?;
        Ok(())
    }

    /// Subscribes to every stream in this session's scope.
    pub fn subscribe_all(&self, filter: TagFilter) -> Result<Subscription> {
        self.store
            .subscribe(Selector::Scope(self.scope.clone()), filter)
    }

    /// All stream ids under this session's scope.
    pub fn streams(&self) -> Vec<StreamId> {
        self.store.list_streams(Some(&self.scope))
    }

    /// Renders the session's activity (entries/exits/streams) from the
    /// session stream — the observability view of §V-E.
    pub fn activity(&self) -> Vec<String> {
        self.store
            .read(&self.session_stream(), 0)
            .unwrap_or_default()
            .iter()
            .filter_map(|m| {
                let op = m.control_op()?;
                let args = m.control_args()?;
                match op {
                    ops::AGENT_ENTER => Some(format!("enter {}", args["agent"].as_str()?)),
                    ops::AGENT_EXIT => Some(format!("exit {}", args["agent"].as_str()?)),
                    ops::STREAM_CREATED => Some(format!("stream {}", args["stream"].as_str()?)),
                    _ => None,
                }
            })
            .collect()
    }
}

/// Bookkeeping for one live session.
struct LiveSession {
    scope: String,
    last_active_micros: u64,
}

/// Mints sessions with unique ids and reaps retired/expired ones.
///
/// Every started session is tracked until [`SessionManager::retire`] (or a
/// TTL sweep via [`SessionManager::reap_expired`]) removes its streams from
/// the store — without reaping, a long-lived serving process would
/// accumulate stream state for every session it ever served.
pub struct SessionManager {
    store: StreamStore,
    next_id: AtomicU64,
    live: RwLock<HashMap<u64, LiveSession>>,
}

impl SessionManager {
    /// Creates a manager over a store.
    pub fn new(store: StreamStore) -> Self {
        SessionManager {
            store,
            next_id: AtomicU64::new(1),
            live: RwLock::new(HashMap::new()),
        }
    }

    /// Starts a new session and tracks it as live.
    pub fn start(&self) -> Result<Session> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Session::create(self.store.clone(), id)?;
        self.live.write().insert(
            id,
            LiveSession {
                scope: session.scope().to_string(),
                last_active_micros: self.store.clock().now_micros(),
            },
        );
        Ok(session)
    }

    /// Marks a session as recently active (resets its TTL clock).
    pub fn touch(&self, id: u64) {
        if let Some(live) = self.live.write().get_mut(&id) {
            live.last_active_micros = self.store.clock().now_micros();
        }
    }

    /// Retires a session: removes every stream under its scope from the
    /// store and stops tracking it. Returns the number of streams reaped.
    /// Idempotent — retiring an unknown or already-retired id reaps nothing.
    pub fn retire(&self, id: u64) -> usize {
        let scope = match self.live.write().remove(&id) {
            Some(live) => live.scope,
            None => return 0,
        };
        self.store.remove_scope(&scope)
    }

    /// Reaps every live session idle for at least `ttl_micros` on the
    /// store's clock, removing their streams. Returns the reaped ids.
    pub fn reap_expired(&self, ttl_micros: u64) -> Vec<u64> {
        let now = self.store.clock().now_micros();
        let expired: Vec<u64> = self
            .live
            .read()
            .iter()
            .filter(|(_, s)| now.saturating_sub(s.last_active_micros) >= ttl_micros)
            .map(|(id, _)| *id)
            .collect();
        let mut reaped: Vec<u64> = expired
            .into_iter()
            .filter(|id| {
                self.retire(*id);
                true
            })
            .collect();
        reaped.sort_unstable();
        reaped
    }

    /// Ids of sessions currently tracked as live, ascending.
    pub fn live_sessions(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.live.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The shared store.
    pub fn store(&self) -> &StreamStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::create(StreamStore::new(), 7).unwrap()
    }

    #[test]
    fn create_establishes_session_stream() {
        let s = session();
        assert_eq!(s.scope(), "session:7");
        assert!(s.store().contains(&s.session_stream()));
    }

    #[test]
    fn agents_enter_and_exit_with_signals() {
        let s = session();
        s.add_agent("profiler").unwrap();
        s.add_agent("job-matcher").unwrap();
        s.add_agent("profiler").unwrap(); // duplicate ignored
        assert_eq!(s.participants(), ["profiler", "job-matcher"]);
        s.remove_agent("profiler").unwrap();
        s.remove_agent("ghost").unwrap(); // unknown ignored
        assert_eq!(s.participants(), ["job-matcher"]);
        assert_eq!(
            s.activity(),
            ["enter profiler", "enter job-matcher", "exit profiler"]
        );
    }

    #[test]
    fn nested_scope_extends_prefix_and_shares_participants() {
        let s = session();
        s.add_agent("profiler").unwrap();
        let nested = s.nested("PROFILE");
        assert_eq!(nested.scope(), "session:7:profile");
        assert_eq!(nested.participants(), ["profiler"]);
        // Nested scope signals still land on the shared session stream.
        nested.add_agent("extractor").unwrap();
        assert!(s.activity().contains(&"enter extractor".to_string()));
    }

    #[test]
    fn create_stream_announces() {
        let s = session();
        let id = s.create_stream("user", ["user-text"], "ui").unwrap();
        assert_eq!(id.as_str(), "session:7:user");
        assert!(s.activity().contains(&"stream session:7:user".to_string()));
        // Re-creating is idempotent.
        s.create_stream("user", ["user-text"], "ui").unwrap();
    }

    #[test]
    fn publish_and_subscribe_within_scope() {
        let s = session();
        let sub = s.subscribe_all(TagFilter::all()).unwrap();
        s.publish("user", Message::data("hi").from_producer("user"))
            .unwrap();
        let m = sub.recv().unwrap();
        assert_eq!(m.text(), Some("hi"));
    }

    #[test]
    fn streams_lists_scope_only() {
        let store = StreamStore::new();
        let s1 = Session::create(store.clone(), 1).unwrap();
        let s2 = Session::create(store, 2).unwrap();
        s1.publish("a", Message::data("x")).unwrap();
        s2.publish("b", Message::data("y")).unwrap();
        let ids: Vec<String> = s1
            .streams()
            .iter()
            .map(|i| i.as_str().to_string())
            .collect();
        assert!(ids.contains(&"session:1:a".to_string()));
        assert!(!ids.iter().any(|i| i.starts_with("session:2")));
    }

    #[test]
    fn subscribe_all_sees_nested_scope_traffic() {
        let s = session();
        let sub = s.subscribe_all(TagFilter::all()).unwrap();
        let nested = s.nested("profile");
        nested
            .publish("criteria", Message::data("remote only"))
            .unwrap();
        let m = sub.recv().unwrap();
        assert_eq!(m.text(), Some("remote only"));
    }

    #[test]
    fn nested_subscription_excludes_parent_traffic() {
        let s = session();
        let nested = s.nested("profile");
        let sub = nested.subscribe_all(TagFilter::all()).unwrap();
        s.publish("user", Message::data("outer")).unwrap();
        nested.publish("criteria", Message::data("inner")).unwrap();
        let got = sub.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].text(), Some("inner"));
    }

    #[test]
    fn activity_filter_ignores_data_messages() {
        let s = session();
        // Raw data published directly to the session stream is not activity.
        s.store()
            .publish(&s.session_stream(), Message::data("noise"))
            .unwrap();
        s.add_agent("profiler").unwrap();
        assert_eq!(s.activity(), ["enter profiler"]);
    }

    #[test]
    fn tagged_session_stream_is_discoverable() {
        let s = session();
        let sub = s
            .store()
            .subscribe(
                Selector::StreamTagged(Tag::new("session")),
                TagFilter::all(),
            )
            .unwrap();
        s.add_agent("x").unwrap();
        assert!(sub.recv().unwrap().control_op().is_some());
    }

    #[test]
    fn manager_mints_unique_ids() {
        let mgr = SessionManager::new(StreamStore::new());
        let a = mgr.start().unwrap();
        let b = mgr.start().unwrap();
        assert_ne!(a.scope(), b.scope());
        assert!(mgr.store().contains(&a.session_stream()));
        assert_eq!(mgr.live_sessions(), [a.id(), b.id()]);
    }

    #[test]
    fn retire_reaps_session_streams_from_store() {
        // Regression: retired sessions used to leak their streams for the
        // life of the process.
        let mgr = SessionManager::new(StreamStore::new());
        let a = mgr.start().unwrap();
        let b = mgr.start().unwrap();
        a.publish("user", Message::data("hi")).unwrap();
        a.publish("task:0:n1", Message::data("out")).unwrap();
        b.publish("user", Message::data("yo")).unwrap();
        assert!(!mgr.store().list_streams(Some(a.scope())).is_empty());
        let reaped = mgr.retire(a.id());
        assert_eq!(reaped, 3, "session stream + two published streams");
        assert!(mgr.store().list_streams(Some(a.scope())).is_empty());
        // Sibling session untouched; retiring again is a no-op.
        assert_eq!(mgr.store().list_streams(Some(b.scope())).len(), 2);
        assert_eq!(mgr.retire(a.id()), 0);
        assert_eq!(mgr.live_sessions(), [b.id()]);
    }

    #[test]
    fn reap_expired_sweeps_idle_sessions_only() {
        let mgr = SessionManager::new(StreamStore::new());
        let old = mgr.start().unwrap();
        old.publish("user", Message::data("stale")).unwrap();
        mgr.store().clock().advance_micros(10_000);
        let fresh = mgr.start().unwrap();
        fresh.publish("user", Message::data("live")).unwrap();
        let reaped = mgr.reap_expired(5_000);
        assert_eq!(reaped, [old.id()]);
        assert!(mgr.store().list_streams(Some(old.scope())).is_empty());
        assert!(!mgr.store().list_streams(Some(fresh.scope())).is_empty());
        // Touch resets the TTL clock.
        mgr.store().clock().advance_micros(10_000);
        mgr.touch(fresh.id());
        assert!(mgr.reap_expired(5_000).is_empty());
        assert_eq!(mgr.live_sessions(), [fresh.id()]);
    }
}
