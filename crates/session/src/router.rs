//! The session router: the serving-side admission and dispatch layer.
//!
//! Enterprise serving means many concurrent sessions over one shared
//! blueprint. The [`SessionRouter`] admits tasks from up to `max_sessions`
//! sessions, serializes each session's tasks (a session is a conversation —
//! its turns happen in order), enforces per-session budget/QoS isolation via
//! the optimizer's [`SharedBudget`], and dispatches across sessions fairly:
//! a bounded pool of `max_in_flight` workers drains a round-robin ready
//! queue, so no session can starve its siblings no matter how much work it
//! enqueues.
//!
//! The router is deliberately agnostic to *what* a task does: a task is a
//! boxed job returning a [`JobOutcome`] (the serving runtime in
//! `blueprint-core` wraps `TaskCoordinator::execute` into one). This keeps
//! the router reusable — and keeps the crate graph acyclic, since the
//! coordinator itself depends on this crate.
//!
//! # Isolation guarantees
//!
//! - **Budget**: each session charges only its own [`SharedBudget`]; a
//!   session whose budget is `Exceeded` has its remaining tasks *rejected*
//!   (drained without running) while sibling sessions proceed untouched.
//! - **Ordering**: at most one task per session is in flight, so a session's
//!   tasks run in submission order — per-session results are deterministic
//!   regardless of how sessions interleave.
//! - **Fairness**: a session re-enters the ready queue at the tail after
//!   each completed task, giving strict round-robin among sessions with
//!   pending work.

// The router blocks dispatch workers on a Condvar, which the project's
// parking_lot build does not provide — std's Condvar only pairs with std's
// Mutex, so this module opts out of the workspace-wide parking_lot rule.
#![allow(clippy::disallowed_types)]

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use serde_json::Value;

use blueprint_observability::{Counter, Gauge, Histogram, MetricsRegistry};
use blueprint_optimizer::{Budget, BudgetStatus, QosConstraints, SharedBudget};

/// Serving-layer knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServingConfig {
    /// Maximum concurrently open sessions (admission control).
    pub max_sessions: usize,
    /// Worker threads draining the ready queue: the global bound on tasks
    /// executing at once, across all sessions.
    pub max_in_flight: usize,
    /// Per-session budget template applied to each newly opened session
    /// (override per session with [`SessionRouter::open_session_with`]).
    pub session_constraints: QosConstraints,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            max_sessions: 64,
            max_in_flight: 4,
            session_constraints: QosConstraints::none(),
        }
    }
}

/// What one executed job reports back: charged to the session's budget and
/// recorded on its completion log.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Whether the task reached a successful terminal state.
    pub ok: bool,
    /// Actual cost incurred.
    pub cost: f64,
    /// Actual latency incurred (µs).
    pub latency_micros: u64,
    /// Accuracy of the result (1.0 when not applicable).
    pub accuracy: f64,
    /// Task output (JSON), kept for isolation/golden assertions.
    pub output: Value,
}

/// A queued unit of session work.
pub type SessionJob = Box<dyn FnOnce() -> JobOutcome + Send + 'static>;

/// Terminal disposition of one submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The job ran and reported success.
    Completed,
    /// The job ran and reported failure.
    Failed,
    /// The job never ran: the session's budget was already exceeded.
    Rejected,
}

/// Record of one submitted task's fate, in per-session submission order.
#[derive(Debug, Clone)]
pub struct TaskCompletion {
    /// Owning session id.
    pub session: u64,
    /// Caller-chosen label (e.g. the task id or utterance).
    pub label: String,
    /// How the task ended.
    pub disposition: Disposition,
    /// Cost charged to the session budget.
    pub cost: f64,
    /// Latency recorded (µs).
    pub latency_micros: u64,
    /// The job's output (Null for rejected tasks).
    pub output: Value,
}

/// Per-session summary returned by [`SessionRouter::close_session`].
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The session id.
    pub session: u64,
    /// Every submitted task's fate, in submission order.
    pub completions: Vec<TaskCompletion>,
    /// Final budget ledger of the session.
    pub budget: Budget,
    /// Tasks rejected because the budget was exhausted.
    pub rejected: u64,
}

/// One entry of the dispatch log: which session's task a worker picked up,
/// in global dispatch order. Tests assert round-robin fairness bounds on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchRecord {
    /// Session whose task was dispatched.
    pub session: u64,
    /// The task's label.
    pub label: String,
}

/// Errors surfaced by the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterError {
    /// `max_sessions` sessions are already open.
    AtCapacity(usize),
    /// No open session with that id.
    UnknownSession(u64),
    /// The router has been shut down.
    ShutDown,
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::AtCapacity(max) => {
                write!(f, "session admission refused: {max} sessions already open")
            }
            RouterError::UnknownSession(id) => write!(f, "unknown session {id}"),
            RouterError::ShutDown => write!(f, "router is shut down"),
        }
    }
}

impl std::error::Error for RouterError {}

struct Lane {
    budget: SharedBudget,
    queue: VecDeque<(String, SessionJob)>,
    /// True while a worker is executing this lane's task (per-session
    /// serialization).
    in_flight: bool,
    /// True while the lane sits in the ready queue.
    enqueued: bool,
    completions: Vec<TaskCompletion>,
    rejected: u64,
}

#[derive(Default)]
struct State {
    lanes: HashMap<u64, Lane>,
    /// Round-robin queue of session ids with pending, not-in-flight work.
    ready: VecDeque<u64>,
    /// Tasks queued across all lanes (not yet picked up).
    pending: usize,
    /// Tasks currently executing.
    running: usize,
}

struct Inner {
    cfg: ServingConfig,
    state: Mutex<State>,
    /// Workers wait here for ready work.
    work_cv: Condvar,
    /// `wait_idle`/`close_session` wait here for drains.
    idle_cv: Condvar,
    shutdown: AtomicBool,
    metrics: MetricsRegistry,
    active: Gauge,
    queue_depth: Gauge,
    dispatches: Counter,
    rejections: Counter,
    task_latency: Histogram,
    dispatch_log: Mutex<Vec<DispatchRecord>>,
}

/// Admits, queues, and fairly dispatches tasks from many concurrent
/// sessions. See the module docs for the isolation guarantees.
pub struct SessionRouter {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Inner {
    /// Locks the router state, recovering from poisoning (jobs run outside
    /// the lock and are panic-contained, so the state is never left
    /// mid-mutation).
    fn state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl SessionRouter {
    /// Builds a router and spawns its `max_in_flight` worker threads.
    /// Instruments land in `metrics` under `blueprint.session.*`.
    pub fn new(cfg: ServingConfig, metrics: &MetricsRegistry) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: metrics.clone(),
            active: metrics.gauge("blueprint.session.active"),
            queue_depth: metrics.gauge("blueprint.session.queue_depth"),
            dispatches: metrics.counter("blueprint.session.dispatches"),
            rejections: metrics.counter("blueprint.session.rejections"),
            task_latency: metrics.histogram("blueprint.session.task_latency_micros"),
            dispatch_log: Mutex::new(Vec::new()),
            cfg,
        });
        let workers = (0..cfg.max_in_flight.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        SessionRouter { inner, workers }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.inner.cfg
    }

    /// Opens a lane for a session under the configured per-session budget.
    pub fn open_session(&self, session: u64) -> Result<(), RouterError> {
        self.open_session_with(session, self.inner.cfg.session_constraints)
    }

    /// Opens a lane for a session with explicit QoS constraints. Fails when
    /// `max_sessions` lanes are already open (admission control) or the id
    /// is already in use.
    pub fn open_session_with(
        &self,
        session: u64,
        constraints: QosConstraints,
    ) -> Result<(), RouterError> {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return Err(RouterError::ShutDown);
        }
        let mut state = self.inner.state();
        if state.lanes.len() >= self.inner.cfg.max_sessions {
            return Err(RouterError::AtCapacity(self.inner.cfg.max_sessions));
        }
        if state.lanes.contains_key(&session) {
            return Err(RouterError::AtCapacity(self.inner.cfg.max_sessions));
        }
        let budget = SharedBudget::new(Budget::new(constraints)).with_metrics(&self.inner.metrics);
        state.lanes.insert(
            session,
            Lane {
                budget,
                queue: VecDeque::new(),
                in_flight: false,
                enqueued: false,
                completions: Vec::new(),
                rejected: 0,
            },
        );
        self.inner.active.set(state.lanes.len() as i64);
        Ok(())
    }

    /// The session's shared budget (charge points for out-of-band work).
    pub fn session_budget(&self, session: u64) -> Result<SharedBudget, RouterError> {
        let state = self.inner.state();
        state
            .lanes
            .get(&session)
            .map(|l| l.budget.clone())
            .ok_or(RouterError::UnknownSession(session))
    }

    /// Queues one task on a session's lane. The job runs on a router worker;
    /// its outcome is charged to the session budget and recorded. Tasks of
    /// one session run serially in submission order.
    pub fn submit(
        &self,
        session: u64,
        label: impl Into<String>,
        job: SessionJob,
    ) -> Result<(), RouterError> {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return Err(RouterError::ShutDown);
        }
        let mut state = self.inner.state();
        let lane = state
            .lanes
            .get_mut(&session)
            .ok_or(RouterError::UnknownSession(session))?;
        lane.queue.push_back((label.into(), job));
        let wake = !lane.in_flight && !lane.enqueued;
        if wake {
            lane.enqueued = true;
        }
        state.pending += 1;
        self.inner.queue_depth.set(state.pending as i64);
        if wake {
            state.ready.push_back(session);
            self.inner.work_cv.notify_one();
        }
        Ok(())
    }

    /// Blocks until every queued task of every session has completed.
    pub fn wait_idle(&self) {
        let mut state = self.inner.state();
        while state.pending > 0 || state.running > 0 {
            state = self
                .inner
                .idle_cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Waits for the session's lane to drain, then closes it and returns its
    /// report (completions in submission order + final budget ledger). The
    /// session's streams are *not* touched — reaping them is the
    /// [`SessionManager`](crate::SessionManager)'s job.
    pub fn close_session(&self, session: u64) -> Result<SessionReport, RouterError> {
        let mut state = self.inner.state();
        loop {
            let lane = state
                .lanes
                .get(&session)
                .ok_or(RouterError::UnknownSession(session))?;
            if lane.queue.is_empty() && !lane.in_flight {
                break;
            }
            state = self
                .inner
                .idle_cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        let lane = state
            .lanes
            .remove(&session)
            .ok_or(RouterError::UnknownSession(session))?;
        self.inner.active.set(state.lanes.len() as i64);
        Ok(SessionReport {
            session,
            completions: lane.completions,
            budget: lane.budget.snapshot(),
            rejected: lane.rejected,
        })
    }

    /// Global dispatch order so far (for fairness assertions).
    pub fn dispatch_log(&self) -> Vec<DispatchRecord> {
        self.inner
            .dispatch_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Open lanes right now.
    pub fn active_sessions(&self) -> usize {
        self.inner.state().lanes.len()
    }

    /// Stops the workers after in-flight tasks finish; queued tasks are
    /// dropped. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SessionRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        // Pick the next ready session (round-robin) and take its head task.
        let (session, label, job, budget) = {
            let mut state = inner.state();
            loop {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(session) = state.ready.pop_front() {
                    // A lane is only ever in the ready queue with pending
                    // work and no task in flight.
                    let pending = state.pending - 1;
                    let lane = state.lanes.get_mut(&session).expect("ready lane exists");
                    lane.enqueued = false;
                    let (label, job) = lane.queue.pop_front().expect("ready lane has work");
                    lane.in_flight = true;
                    let budget = lane.budget.clone();
                    state.pending = pending;
                    state.running += 1;
                    inner.queue_depth.set(pending as i64);
                    break (session, label, job, budget);
                }
                state = inner.work_cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };

        // QoS isolation: a session that exhausted its budget gets its tasks
        // rejected (drained without running) — it cannot consume worker time
        // that sibling sessions are entitled to.
        let completion = if matches!(budget.status(), BudgetStatus::Exceeded) {
            inner.rejections.inc();
            TaskCompletion {
                session,
                label,
                disposition: Disposition::Rejected,
                cost: 0.0,
                latency_micros: 0,
                output: Value::Null,
            }
        } else {
            inner.dispatches.inc();
            inner
                .dispatch_log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(DispatchRecord {
                    session,
                    label: label.clone(),
                });
            // Panic containment: a job that panics (e.g. under fault
            // injection) is recorded as failed; the worker, the lane, and
            // sibling sessions keep going.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                .unwrap_or_else(|_| JobOutcome {
                    ok: false,
                    cost: 0.0,
                    latency_micros: 0,
                    accuracy: 0.0,
                    output: Value::String("job panicked".into()),
                });
            budget.charge(outcome.cost, outcome.latency_micros, outcome.accuracy);
            inner.task_latency.record(outcome.latency_micros);
            TaskCompletion {
                session,
                label,
                disposition: if outcome.ok {
                    Disposition::Completed
                } else {
                    Disposition::Failed
                },
                cost: outcome.cost,
                latency_micros: outcome.latency_micros,
                output: outcome.output,
            }
        };

        let mut state = inner.state();
        let rejected = completion.disposition == Disposition::Rejected;
        let lane = state
            .lanes
            .get_mut(&session)
            .expect("lane open while its task runs");
        if rejected {
            lane.rejected += 1;
        }
        lane.completions.push(completion);
        lane.in_flight = false;
        let more = !lane.queue.is_empty();
        if more {
            lane.enqueued = true;
        }
        state.running -= 1;
        if more {
            // Tail re-entry: strict round robin among sessions with work.
            state.ready.push_back(session);
            inner.work_cv.notify_one();
        }
        // Wake drain-waiters on every completion: wait_idle and
        // close_session re-check their conditions.
        inner.idle_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn job(ok: bool, cost: f64, latency: u64, out: Value) -> SessionJob {
        Box::new(move || JobOutcome {
            ok,
            cost,
            latency_micros: latency,
            accuracy: 1.0,
            output: out,
        })
    }

    fn router(max_sessions: usize, max_in_flight: usize) -> SessionRouter {
        SessionRouter::new(
            ServingConfig {
                max_sessions,
                max_in_flight,
                session_constraints: QosConstraints::none(),
            },
            &MetricsRegistry::new(),
        )
    }

    #[test]
    fn tasks_of_one_session_run_in_submission_order() {
        let r = router(4, 4);
        r.open_session(1).unwrap();
        for i in 0..10 {
            r.submit(1, format!("t{i}"), job(true, 1.0, 10, json!(i)))
                .unwrap();
        }
        r.wait_idle();
        let report = r.close_session(1).unwrap();
        let labels: Vec<&str> = report
            .completions
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        assert_eq!(
            labels,
            (0..10).map(|i| format!("t{i}")).collect::<Vec<_>>(),
            "per-session completions out of submission order"
        );
        assert!((report.budget.actual().cost_per_call - 10.0).abs() < 1e-9);
    }

    #[test]
    fn admission_control_caps_open_sessions() {
        let r = router(2, 1);
        r.open_session(1).unwrap();
        r.open_session(2).unwrap();
        assert_eq!(r.open_session(3), Err(RouterError::AtCapacity(2)));
        r.close_session(1).unwrap();
        r.open_session(3).unwrap();
    }

    #[test]
    fn exceeded_budget_rejects_followup_tasks_but_not_siblings() {
        let r = SessionRouter::new(
            ServingConfig {
                max_sessions: 4,
                max_in_flight: 1,
                session_constraints: QosConstraints::none().with_max_cost(5.0),
            },
            &MetricsRegistry::new(),
        );
        r.open_session(1).unwrap();
        r.open_session(2).unwrap();
        // Session 1 blows its budget on the first task; later tasks must be
        // rejected. Session 2 keeps completing.
        r.submit(1, "big", job(true, 10.0, 5, json!("x"))).unwrap();
        for i in 0..3 {
            r.submit(1, format!("after{i}"), job(true, 1.0, 5, json!(i)))
                .unwrap();
            r.submit(2, format!("ok{i}"), job(true, 1.0, 5, json!(i)))
                .unwrap();
        }
        r.wait_idle();
        let one = r.close_session(1).unwrap();
        let two = r.close_session(2).unwrap();
        assert_eq!(one.rejected, 3);
        assert!(one.completions[1..]
            .iter()
            .all(|c| c.disposition == Disposition::Rejected));
        assert_eq!(two.rejected, 0);
        assert!(two
            .completions
            .iter()
            .all(|c| c.disposition == Disposition::Completed));
    }

    #[test]
    fn round_robin_dispatch_is_fair() {
        // One worker, three sessions, three tasks each, all queued before
        // the worker can drain: dispatches must cycle 1,2,3,1,2,3,...
        let r = router(8, 1);
        // Stall the worker with a task that waits for the gate, so the
        // queues fill before round-robin starts.
        let gate = Arc::new(AtomicBool::new(false));
        r.open_session(1).unwrap();
        let g = Arc::clone(&gate);
        r.submit(
            1,
            "gate",
            Box::new(move || {
                while !g.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
                JobOutcome {
                    ok: true,
                    cost: 0.0,
                    latency_micros: 0,
                    accuracy: 1.0,
                    output: Value::Null,
                }
            }),
        )
        .unwrap();
        r.open_session(2).unwrap();
        r.open_session(3).unwrap();
        for i in 0..3 {
            for s in [1u64, 2, 3] {
                r.submit(s, format!("s{s}t{i}"), job(true, 1.0, 1, json!(i)))
                    .unwrap();
            }
        }
        gate.store(true, Ordering::Relaxed);
        r.wait_idle();
        let log = r.dispatch_log();
        let order: Vec<u64> = log.iter().skip(1).map(|d| d.session).collect();
        assert_eq!(order.len(), 9);
        // Strict round robin: every window of three dispatches covers every
        // session exactly once (the cycle's phase depends on when session 1
        // re-queued after the gate task).
        for window in order.chunks(3) {
            let mut sorted = window.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, [1, 2, 3], "unfair dispatch order: {order:?}");
        }
    }

    #[test]
    fn metrics_count_dispatches_and_depth_returns_to_zero() {
        let metrics = MetricsRegistry::new();
        let r = SessionRouter::new(
            ServingConfig {
                max_sessions: 4,
                max_in_flight: 2,
                session_constraints: QosConstraints::none(),
            },
            &metrics,
        );
        r.open_session(1).unwrap();
        r.open_session(2).unwrap();
        for i in 0..4 {
            r.submit(1, format!("a{i}"), job(true, 1.0, 100, json!(i)))
                .unwrap();
            r.submit(2, format!("b{i}"), job(true, 1.0, 100, json!(i)))
                .unwrap();
        }
        r.wait_idle();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("blueprint.session.dispatches"), 8);
        assert_eq!(snap.gauge("blueprint.session.queue_depth"), 0);
        assert_eq!(snap.gauge("blueprint.session.active"), 2);
        assert_eq!(
            snap.histograms["blueprint.session.task_latency_micros"].count,
            8
        );
        r.close_session(1).unwrap();
        r.close_session(2).unwrap();
        assert_eq!(metrics.snapshot().gauge("blueprint.session.active"), 0);
    }

    #[test]
    fn submit_to_unknown_or_closed_session_errors() {
        let r = router(2, 1);
        assert_eq!(
            r.submit(9, "x", job(true, 0.0, 0, Value::Null)),
            Err(RouterError::UnknownSession(9))
        );
        r.open_session(1).unwrap();
        r.close_session(1).unwrap();
        assert_eq!(
            r.submit(1, "x", job(true, 0.0, 0, Value::Null)),
            Err(RouterError::UnknownSession(1))
        );
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let mut r = router(2, 1);
        r.open_session(1).unwrap();
        r.shutdown();
        assert_eq!(r.open_session(2), Err(RouterError::ShutDown));
        assert_eq!(
            r.submit(1, "x", job(true, 0.0, 0, Value::Null)),
            Err(RouterError::ShutDown)
        );
    }
}
