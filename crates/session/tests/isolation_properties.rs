//! Property-based session-isolation battery for the serving runtime's
//! substrate: for ANY mix of concurrent sessions pushed through one
//! [`SessionRouter`] over one sharded [`StreamStore`], every session's
//! observable behaviour — completion records, budget debits, rejections, and
//! the byte-content of its streams — is identical to running that session
//! ALONE on a fresh store and router. No message ever crosses a session
//! boundary.
//!
//! Comparisons are on payload bytes, sequence numbers, producers, and exact
//! f64 bit patterns (all charges are dyadic multiples of 0.25, so sums are
//! exact under any completion order). Store-assigned message ids and
//! publication timestamps are *excluded*: they are global coordinates, not
//! session-observable state.
//!
//! Run with `PROPTEST_CASES=256` for the acceptance bar (CI's serving job
//! does; the default is 64 for a fast local loop).

use proptest::prelude::*;
use serde_json::json;

use blueprint_observability::MetricsRegistry;
use blueprint_optimizer::QosConstraints;
use blueprint_session::{
    Disposition, JobOutcome, ServingConfig, SessionJob, SessionReport, SessionRouter,
};
use blueprint_streams::{Message, StreamId, StreamStore};

/// One deterministic synthetic task: publishes `messages` payloads onto its
/// session's output stream and charges a dyadic cost.
#[derive(Clone, Copy, Debug)]
struct TaskSpec {
    /// 0..=3 → cost = 0.25 * weight, latency = 100 * weight.
    weight: u8,
    /// 1..=3 messages published to `session:<id>:out`.
    messages: u8,
}

/// A session's whole workload plus its budget cap (in 0.25-units; 255 = no
/// cap, small values force deterministic rejections).
#[derive(Clone, Debug)]
struct SessionScript {
    tasks: Vec<TaskSpec>,
    cap_quarters: u8,
}

fn session_constraints(script: &SessionScript) -> QosConstraints {
    if script.cap_quarters == u8::MAX {
        QosConstraints::none()
    } else {
        QosConstraints::none().with_max_cost(0.25 * script.cap_quarters as f64)
    }
}

/// The job for task `t` of session `sid`: a pure function of its arguments
/// (plus the store handle), so solo and mixed runs replay identical work.
fn make_job(store: &StreamStore, sid: u64, t: usize, spec: TaskSpec) -> SessionJob {
    let store = store.clone();
    Box::new(move || {
        let stream = StreamId::new(format!("session:{sid}:out"));
        store.ensure_stream(stream.clone(), ["out"]).unwrap();
        for k in 0..spec.messages {
            store
                .publish(
                    &stream,
                    Message::data(format!("s{sid}:t{t}:m{k}"))
                        .from_producer(format!("agent-s{sid}")),
                )
                .unwrap();
        }
        JobOutcome {
            ok: true,
            cost: 0.25 * spec.weight as f64,
            latency_micros: 100 * spec.weight as u64,
            accuracy: 1.0,
            output: json!({ "session": sid, "task": t, "messages": spec.messages }),
        }
    })
}

/// What a session can observe of itself: completions (label, disposition,
/// exact cost bits, latency, output), final budget ledger, rejection count,
/// and its streams' byte-content in sequence order.
/// `(seq, producer, payload-json)` triples of one stream, in sequence order.
type StreamDump = Vec<(u64, String, String)>;

#[derive(Debug, PartialEq)]
struct SessionView {
    completions: Vec<(String, String, u64, u64, String)>,
    spent_cost_bits: u64,
    spent_latency: u64,
    rejected: u64,
    streams: Vec<(String, StreamDump)>,
}

fn view(store: &StreamStore, report: &SessionReport) -> SessionView {
    let completions = report
        .completions
        .iter()
        .map(|c| {
            (
                c.label.clone(),
                format!("{:?}", c.disposition),
                c.cost.to_bits(),
                c.latency_micros,
                serde_json::to_string(&c.output).unwrap(),
            )
        })
        .collect();
    let scope = format!("session:{}", report.session);
    let mut streams = Vec::new();
    for id in store.list_streams(Some(&scope)) {
        let msgs = store
            .read(&id, 0)
            .unwrap()
            .iter()
            .map(|m| {
                (
                    m.seq,
                    m.producer.clone(),
                    serde_json::to_string(&m.payload).unwrap(),
                )
            })
            .collect();
        streams.push((id.as_str().to_string(), msgs));
    }
    SessionView {
        completions,
        spent_cost_bits: report.budget.spent_cost.to_bits(),
        spent_latency: report.budget.spent_latency_micros,
        rejected: report.rejected,
        streams,
    }
}

fn router(store_sessions: usize, max_in_flight: usize) -> (StreamStore, SessionRouter) {
    let store = StreamStore::new();
    let router = SessionRouter::new(
        ServingConfig {
            max_sessions: store_sessions,
            max_in_flight,
            session_constraints: QosConstraints::none(),
        },
        &MetricsRegistry::disarmed(),
    );
    (store, router)
}

/// Runs one session alone on a fresh store + router.
fn run_solo(sid: u64, script: &SessionScript, max_in_flight: usize) -> SessionView {
    let (store, router) = router(1, max_in_flight);
    router
        .open_session_with(sid, session_constraints(script))
        .unwrap();
    for (t, &spec) in script.tasks.iter().enumerate() {
        router
            .submit(sid, format!("s{sid}t{t}"), make_job(&store, sid, t, spec))
            .unwrap();
    }
    router.wait_idle();
    let report = router.close_session(sid).unwrap();
    view(&store, &report)
}

/// Runs every session concurrently on one shared store + router, submitting
/// in the proptest-chosen interleaving.
fn run_mixed(
    scripts: &[SessionScript],
    interleave: &[usize],
    max_in_flight: usize,
) -> (StreamStore, Vec<SessionView>) {
    let (store, router) = router(scripts.len(), max_in_flight);
    for (sid, script) in scripts.iter().enumerate() {
        router
            .open_session_with(sid as u64, session_constraints(script))
            .unwrap();
    }
    // Interleaved submission: each pick advances one session's cursor; any
    // leftover picks wrap over the sessions still holding unsubmitted tasks.
    let mut cursors = vec![0usize; scripts.len()];
    let submit = |sid: usize, cursors: &mut Vec<usize>| {
        let t = cursors[sid];
        if t < scripts[sid].tasks.len() {
            cursors[sid] += 1;
            router
                .submit(
                    sid as u64,
                    format!("s{sid}t{t}"),
                    make_job(&store, sid as u64, t, scripts[sid].tasks[t]),
                )
                .unwrap();
        }
    };
    for &raw in interleave {
        submit(raw % scripts.len(), &mut cursors);
    }
    for sid in 0..scripts.len() {
        while cursors[sid] < scripts[sid].tasks.len() {
            submit(sid, &mut cursors);
        }
    }
    router.wait_idle();
    let views = (0..scripts.len())
        .map(|sid| {
            let report = router.close_session(sid as u64).unwrap();
            view(&store, &report)
        })
        .collect();
    (store, views)
}

fn task_strategy() -> impl Strategy<Value = TaskSpec> {
    (0u8..=3, 1u8..=3).prop_map(|(weight, messages)| TaskSpec { weight, messages })
}

fn script_strategy() -> impl Strategy<Value = SessionScript> {
    // Caps 0..=4 quarters force deterministic rejections in half the cases;
    // the other half (mapped to u8::MAX) run uncapped.
    (prop::collection::vec(task_strategy(), 1..5), 0u8..=9).prop_map(|(tasks, raw_cap)| {
        SessionScript {
            tasks,
            cap_quarters: if raw_cap > 4 { u8::MAX } else { raw_cap },
        }
    })
}

fn battery_strategy() -> impl Strategy<Value = (Vec<SessionScript>, Vec<usize>, usize)> {
    (
        prop::collection::vec(script_strategy(), 2..5),
        prop::collection::vec(0usize..1000, 0..16),
        1usize..=4,
    )
}

proptest! {
    /// Per-session completions, budget debits, rejection counts, and stream
    /// byte-content in a concurrent mix equal the run-alone reference, for
    /// any session scripts, any submission interleaving, and any worker
    /// count — with rejections exercised via tight per-session caps.
    #[test]
    fn every_session_is_byte_identical_to_running_alone(
        (scripts, interleave, max_in_flight) in battery_strategy()
    ) {
        let (_store, mixed) = run_mixed(&scripts, &interleave, max_in_flight);
        for (sid, script) in scripts.iter().enumerate() {
            let solo = run_solo(sid as u64, script, max_in_flight);
            prop_assert_eq!(
                &solo, &mixed[sid],
                "session {} diverged under mix (cap {:?})",
                sid, script.cap_quarters
            );
        }
    }

    /// No message crosses a session boundary: everything under a session's
    /// scope names that session in both producer and payload, and sibling
    /// scopes never appear.
    #[test]
    fn no_message_crosses_session_boundaries(
        (scripts, interleave, max_in_flight) in battery_strategy()
    ) {
        let (store, _) = run_mixed(&scripts, &interleave, max_in_flight);
        for sid in 0..scripts.len() {
            let scope = format!("session:{sid}");
            for id in store.list_streams(Some(&scope)) {
                for msg in store.read(&id, 0).unwrap() {
                    prop_assert_eq!(&msg.producer, &format!("agent-s{sid}"));
                    let text = msg.payload.as_str().unwrap_or_default();
                    prop_assert!(
                        text.starts_with(&format!("s{sid}:")),
                        "foreign payload {:?} in {}", text, id
                    );
                }
            }
        }
    }

    /// The dispatch order respects per-session FIFO under any interleaving:
    /// the router's global dispatch log, filtered to one session, is exactly
    /// that session's submission order (rejected tasks never dispatch).
    #[test]
    fn dispatch_log_preserves_each_sessions_submission_order(
        (scripts, interleave, max_in_flight) in battery_strategy()
    ) {
        let (store, router) = router(scripts.len(), max_in_flight);
        for (sid, script) in scripts.iter().enumerate() {
            router.open_session_with(sid as u64, session_constraints(script)).unwrap();
        }
        let mut cursors = vec![0usize; scripts.len()];
        let order: Vec<usize> = interleave
            .iter()
            .map(|r| r % scripts.len())
            .chain((0..scripts.len()).flat_map(|s| std::iter::repeat_n(s, 4)))
            .collect();
        for sid in order {
            let t = cursors[sid];
            if t < scripts[sid].tasks.len() {
                cursors[sid] += 1;
                router
                    .submit(sid as u64, format!("s{sid}t{t}"), make_job(&store, sid as u64, t, scripts[sid].tasks[t]))
                    .unwrap();
            }
        }
        router.wait_idle();
        for sid in 0..scripts.len() {
            let dispatched: Vec<String> = router
                .dispatch_log()
                .into_iter()
                .filter(|r| r.session == sid as u64)
                .map(|r| r.label)
                .collect();
            let report = router.close_session(sid as u64).unwrap();
            let expected: Vec<String> = report
                .completions
                .iter()
                .filter(|c| c.disposition != Disposition::Rejected)
                .map(|c| c.label.clone())
                .collect();
            prop_assert_eq!(dispatched, expected, "session {}", sid);
        }
    }
}

/// Non-property regression: the same battery shape at fixed size, exercising
/// the Arc-job plumbing once without the proptest loop (fast smoke path).
#[test]
fn smoke_two_sessions_identical_solo_and_mixed() {
    let scripts = vec![
        SessionScript {
            tasks: vec![
                TaskSpec {
                    weight: 2,
                    messages: 2,
                },
                TaskSpec {
                    weight: 1,
                    messages: 1,
                },
            ],
            cap_quarters: u8::MAX,
        },
        SessionScript {
            tasks: vec![TaskSpec {
                weight: 3,
                messages: 3,
            }],
            cap_quarters: 2,
        },
    ];
    let (_store, mixed) = run_mixed(&scripts, &[0, 1, 0], 2);
    for (sid, script) in scripts.iter().enumerate() {
        let solo = run_solo(sid as u64, script, 2);
        assert_eq!(solo, mixed[sid], "session {sid}");
    }
}
