//! The assembled runtime.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use blueprint_agents::AgentFactory;
use blueprint_coordinator::{
    AdaptiveConfig, CoordinatorDaemon, ExecutionError, ExecutionReport, MemoCache, OverrunPolicy,
    SchedulerMode, TaskCoordinator,
};
use blueprint_datastore::{
    DataSource, DocumentSource, FaultInjectedSource, GraphSource, InstrumentedSource, KvSource,
    RelationalSource,
};
use blueprint_hrdomain::{register_guardrails, register_hr_agents, HrConfig, HrDataset};
use blueprint_llmsim::{ModelProfile, ParametricSource, SimLlm};
use blueprint_observability::{MetricsRegistry, MetricsSnapshot, Observability, Trace, Tracer};
use blueprint_optimizer::{Objective, QosConstraints};
use blueprint_planner::{DataPlanner, PlanError, TaskPlan, TaskPlanner};
use blueprint_registry::{AgentRegistry, DataRegistry};
use blueprint_resilience::{
    BreakerConfig, BreakerRegistry, DegradationLadder, FaultInjector, FaultPlan, RetryPolicy,
};
use blueprint_session::{Session, SessionManager};
use blueprint_streams::{Message, StreamStore};

/// Errors raised while assembling or driving the runtime.
#[derive(Debug)]
pub enum CoreError {
    /// Component wiring failed.
    Setup(String),
    /// Planning failed.
    Plan(PlanError),
    /// Coordination machinery failed.
    Execution(ExecutionError),
    /// Stream plumbing failed.
    Stream(blueprint_streams::StreamError),
    /// The serving runtime's session router refused an operation.
    Serving(blueprint_session::RouterError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Setup(msg) => write!(f, "setup failed: {msg}"),
            CoreError::Plan(e) => write!(f, "planning failed: {e}"),
            CoreError::Execution(e) => write!(f, "{e}"),
            CoreError::Stream(e) => write!(f, "stream error: {e}"),
            CoreError::Serving(e) => write!(f, "serving error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<PlanError> for CoreError {
    fn from(e: PlanError) -> Self {
        CoreError::Plan(e)
    }
}

impl From<ExecutionError> for CoreError {
    fn from(e: ExecutionError) -> Self {
        CoreError::Execution(e)
    }
}

impl From<blueprint_streams::StreamError> for CoreError {
    fn from(e: blueprint_streams::StreamError) -> Self {
        CoreError::Stream(e)
    }
}

impl From<blueprint_session::RouterError> for CoreError {
    fn from(e: blueprint_session::RouterError) -> Self {
        CoreError::Serving(e)
    }
}

/// Configures and assembles a [`Blueprint`].
pub struct BlueprintBuilder {
    hr_config: Option<HrConfig>,
    guardrails: bool,
    model: ModelProfile,
    extra_models: Vec<ModelProfile>,
    objective: Objective,
    constraints: QosConstraints,
    policy: OverrunPolicy,
    report_timeout: Duration,
    fault_plan: Option<FaultPlan>,
    retry: RetryPolicy,
    breaker_config: Option<BreakerConfig>,
    ladder: DegradationLadder,
    scheduler: SchedulerMode,
    memo_capacity: Option<usize>,
    adaptive: Option<AdaptiveConfig>,
    tracing: bool,
    metrics: bool,
    serving: Option<(usize, usize)>,
}

impl Default for BlueprintBuilder {
    fn default() -> Self {
        BlueprintBuilder {
            hr_config: None,
            guardrails: false,
            model: ModelProfile::large(),
            extra_models: Vec::new(),
            objective: Objective::balanced(),
            constraints: QosConstraints::none(),
            policy: OverrunPolicy::default(),
            report_timeout: Duration::from_secs(10),
            fault_plan: None,
            retry: RetryPolicy::none(),
            breaker_config: None,
            ladder: DegradationLadder::new(),
            scheduler: SchedulerMode::default(),
            memo_capacity: None,
            adaptive: None,
            tracing: false,
            metrics: false,
            serving: None,
        }
    }
}

impl BlueprintBuilder {
    /// Generates and wires the YourJourney HR domain (data + agents).
    pub fn with_hr_domain(mut self, config: HrConfig) -> Self {
        self.hr_config = Some(config);
        self
    }

    /// Registers the guardrail modules (content moderation + fact
    /// verification, §III-A) as discoverable agents.
    pub fn with_guardrails(mut self) -> Self {
        self.guardrails = true;
        self
    }

    /// Sets the primary model tier.
    pub fn with_model(mut self, model: ModelProfile) -> Self {
        self.model = model;
        self
    }

    /// Registers an additional model tier as another parametric data source
    /// (gives the optimizer a real choice).
    pub fn with_extra_model(mut self, model: ModelProfile) -> Self {
        self.extra_models.push(model);
        self
    }

    /// Sets the planning objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the default QoS constraints for task execution.
    pub fn with_constraints(mut self, constraints: QosConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the coordinator's overrun policy.
    pub fn with_policy(mut self, policy: OverrunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets how long the coordinator waits for each agent report.
    pub fn with_report_timeout(mut self, timeout: Duration) -> Self {
        self.report_timeout = timeout;
        self
    }

    /// Arms deterministic fault injection across the whole runtime: stream
    /// fan-out, agent processors, model calls, and data sources.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the coordinator's retry policy for failed agent invocations.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arms per-agent circuit breakers, shared by the factory (restart
    /// probing), the registry (routing), and every session's coordinator.
    pub fn with_circuit_breakers(mut self, config: BreakerConfig) -> Self {
        self.breaker_config = Some(config);
        self
    }

    /// Sets the degradation ladder (fallback agents, skippable nodes).
    pub fn with_degradation(mut self, ladder: DegradationLadder) -> Self {
        self.ladder = ladder;
        self
    }

    /// Selects how session coordinators walk plan DAGs (parallel ready-set
    /// scheduling by default; [`SchedulerMode::Sequential`] is the reference
    /// execution).
    pub fn with_scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables memoization of deterministic agent invocations, shared across
    /// every session (capacity = max cached invocations, FIFO eviction).
    /// Only enable when registered agents are pure functions of their inputs
    /// — true for the simulated runtime unless fault injection is armed.
    pub fn with_memoization(mut self, capacity: usize) -> Self {
        self.memo_capacity = Some(capacity);
        self
    }

    /// Enables adaptive cost feedback on every session's coordinator:
    /// observed per-agent actuals fold into the registry as seeded,
    /// deterministic EWMA statistics, and when observed spend drifts past
    /// `drift_threshold` × the estimate mid-flight, the coordinator
    /// re-optimizes the not-yet-dispatched suffix of the plan IR (e.g.
    /// downgrading a knowledge operator's model tier) against the remaining
    /// budget. One bounded re-optimization pass per execution.
    pub fn with_adaptive_replanning(mut self, drift_threshold: f64) -> Self {
        self.adaptive = Some(AdaptiveConfig::with_threshold(drift_threshold));
        self
    }

    /// Arms span tracing: every task execution records a trace tree stamped
    /// from the shared simulated clock (deterministic, byte-stable).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Configures the multi-session serving runtime: up to `max_sessions`
    /// concurrent sessions multiplexed over one shared agent pool, with at
    /// most `max_in_flight` tasks executing at once across all sessions.
    /// Obtain the runtime with [`Blueprint::serving`].
    pub fn with_serving(mut self, max_sessions: usize, max_in_flight: usize) -> Self {
        self.serving = Some((max_sessions, max_in_flight));
        self
    }

    /// Arms the metrics registry: named instruments meter stream publishes,
    /// agent invocations, retries, breaker trips, memo hits, budget debits,
    /// model calls, and data-source queries across the whole runtime.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Assembles the runtime.
    pub fn build(self) -> Result<Blueprint, CoreError> {
        let store = StreamStore::new();
        let factory = Arc::new(AgentFactory::new(store.clone()));
        let agent_registry = Arc::new(AgentRegistry::new());
        let data_registry = Arc::new(DataRegistry::new());

        // Tracing and metrics arm independently; spans are stamped from the
        // same simulated clock the streams database uses, so trace times line
        // up with message sequence times.
        let observability = Observability {
            tracer: if self.tracing {
                Tracer::new(store.clock().clone())
            } else {
                Tracer::disarmed()
            },
            metrics: if self.metrics {
                MetricsRegistry::new()
            } else {
                MetricsRegistry::disarmed()
            },
        };
        if observability.is_armed() {
            store.set_metrics(&observability.metrics);
            factory.set_observability(observability.clone());
        }

        let injector = self.fault_plan.map(|p| Arc::new(FaultInjector::new(p)));
        if let Some(inj) = &injector {
            store.set_fault_injector(Arc::clone(inj));
            factory.set_fault_injector(Arc::clone(inj));
        }
        let breakers = self
            .breaker_config
            .map(|cfg| Arc::new(BreakerRegistry::new(cfg)));
        if let Some(b) = &breakers {
            agent_registry.set_breakers(Arc::clone(b));
            factory.set_breakers(Arc::clone(b));
            if observability.metrics.is_armed() {
                b.set_metrics(&observability.metrics);
            }
        }
        // Storage-backed sources get their faults at the data-query site;
        // the primary model carries its own model-call faults. Metering
        // wraps outermost so injected outages count as query errors.
        let metrics = observability.metrics.clone();
        let wrap_source = |src: Arc<dyn DataSource>| -> Arc<dyn DataSource> {
            let src: Arc<dyn DataSource> = match &injector {
                Some(inj) => Arc::new(FaultInjectedSource::wrap(src, Arc::clone(inj))),
                None => src,
            };
            if metrics.is_armed() {
                Arc::new(InstrumentedSource::wrap(src, &metrics))
            } else {
                src
            }
        };

        let mut sim = SimLlm::new(self.model.clone());
        if let Some(inj) = &injector {
            sim = sim.with_faults(Arc::clone(inj));
        }
        if observability.metrics.is_armed() {
            sim.set_metrics(&observability.metrics);
        }
        let llm = Arc::new(sim);

        let mut data_planner = DataPlanner::new(Arc::clone(&data_registry), Arc::clone(&llm));
        data_planner.set_objective(self.objective);
        data_planner.set_constraints(self.constraints);

        let mut dataset = None;
        if let Some(config) = self.hr_config {
            let ds = Arc::new(HrDataset::generate(config));
            ds.register_assets(&data_registry)
                .map_err(|e| CoreError::Setup(e.to_string()))?;
            register_hr_agents(&factory, &agent_registry, Arc::clone(&ds), Arc::clone(&llm))
                .map_err(|e| CoreError::Setup(e.to_string()))?;
            data_planner.add_source(wrap_source(Arc::new(RelationalSource::new(
                "hr-db",
                Arc::clone(&ds.db),
            ))));
            data_planner.add_source(wrap_source(Arc::new(DocumentSource::new(
                "profiles",
                Arc::clone(&ds.profiles),
            ))));
            data_planner.add_source(wrap_source(Arc::new(GraphSource::new(
                "title-taxonomy",
                Arc::clone(&ds.taxonomy),
            ))));
            data_planner.add_source(wrap_source(Arc::new(KvSource::new(
                "hr-kv",
                Arc::clone(&ds.kv),
            ))));
            dataset = Some(ds);
        }
        if self.guardrails {
            register_guardrails(&factory, &agent_registry)
                .map_err(|e| CoreError::Setup(e.to_string()))?;
        }
        data_planner.add_source(Arc::new(ParametricSource::new(
            format!("gpt-{}", self.model.name.trim_start_matches("sim-")),
            Arc::clone(&llm),
        )));
        for extra in &self.extra_models {
            let extra_llm = SimLlm::new(extra.clone());
            if observability.metrics.is_armed() {
                extra_llm.set_metrics(&observability.metrics);
            }
            data_planner.add_source(Arc::new(ParametricSource::new(
                format!("gpt-{}", extra.name.trim_start_matches("sim-")),
                Arc::new(extra_llm),
            )));
        }

        let task_planner = Arc::new(TaskPlanner::new(
            Arc::clone(&agent_registry),
            Arc::clone(&llm),
        ));
        let sessions = Arc::new(SessionManager::new(store.clone()));

        Ok(Blueprint {
            store,
            factory,
            agent_registry,
            data_registry,
            llm,
            dataset,
            task_planner,
            data_planner: Arc::new(data_planner),
            sessions,
            constraints: self.constraints,
            policy: self.policy,
            report_timeout: self.report_timeout,
            fault_injector: injector,
            breakers,
            retry: self.retry,
            ladder: self.ladder,
            scheduler: self.scheduler,
            memo: self.memo_capacity.map(|cap| Arc::new(MemoCache::new(cap))),
            adaptive: self.adaptive,
            observability,
            serving: self.serving,
        })
    }
}

/// The assembled compound-AI runtime.
pub struct Blueprint {
    pub(crate) store: StreamStore,
    pub(crate) factory: Arc<AgentFactory>,
    agent_registry: Arc<AgentRegistry>,
    data_registry: Arc<DataRegistry>,
    llm: Arc<SimLlm>,
    dataset: Option<Arc<HrDataset>>,
    pub(crate) task_planner: Arc<TaskPlanner>,
    data_planner: Arc<DataPlanner>,
    pub(crate) sessions: Arc<SessionManager>,
    pub(crate) constraints: QosConstraints,
    policy: OverrunPolicy,
    report_timeout: Duration,
    fault_injector: Option<Arc<FaultInjector>>,
    breakers: Option<Arc<BreakerRegistry>>,
    retry: RetryPolicy,
    ladder: DegradationLadder,
    scheduler: SchedulerMode,
    memo: Option<Arc<MemoCache>>,
    adaptive: Option<AdaptiveConfig>,
    pub(crate) observability: Observability,
    pub(crate) serving: Option<(usize, usize)>,
}

impl Blueprint {
    /// Starts building a runtime.
    pub fn builder() -> BlueprintBuilder {
        BlueprintBuilder::default()
    }

    /// The streams database.
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// The agent registry.
    pub fn agent_registry(&self) -> &Arc<AgentRegistry> {
        &self.agent_registry
    }

    /// The data registry.
    pub fn data_registry(&self) -> &Arc<DataRegistry> {
        &self.data_registry
    }

    /// The agent factory.
    pub fn factory(&self) -> &Arc<AgentFactory> {
        &self.factory
    }

    /// The task planner.
    pub fn task_planner(&self) -> &Arc<TaskPlanner> {
        &self.task_planner
    }

    /// The data planner.
    pub fn data_planner(&self) -> &Arc<DataPlanner> {
        &self.data_planner
    }

    /// The simulated LLM.
    pub fn llm(&self) -> &Arc<SimLlm> {
        &self.llm
    }

    /// The generated HR dataset, when the HR domain was wired.
    pub fn dataset(&self) -> Option<&Arc<HrDataset>> {
        self.dataset.as_ref()
    }

    /// The armed fault injector, when fault injection was requested.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.fault_injector.as_ref()
    }

    /// The shared circuit-breaker registry, when breakers were armed.
    pub fn breakers(&self) -> Option<&Arc<BreakerRegistry>> {
        self.breakers.as_ref()
    }

    /// The cross-session memoization cache, when memoization was enabled.
    pub fn memo_cache(&self) -> Option<&Arc<MemoCache>> {
        self.memo.as_ref()
    }

    /// The runtime's observability handles (disarmed no-ops unless
    /// [`BlueprintBuilder::with_tracing`] / [`BlueprintBuilder::with_metrics`]
    /// were requested).
    pub fn observability(&self) -> &Observability {
        &self.observability
    }

    /// Snapshot of the recorded trace so far (empty when tracing is off).
    pub fn trace(&self) -> Trace {
        self.observability.tracer.snapshot()
    }

    /// Snapshot of every instrument (empty when metrics are off).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.observability.metrics.snapshot()
    }

    /// Builds a task coordinator for `scope` with every configured knob
    /// (shared by [`Blueprint::start_session`] and the serving runtime).
    pub(crate) fn build_coordinator(&self, scope: String) -> TaskCoordinator {
        let mut coordinator =
            TaskCoordinator::new(self.store.clone(), scope, Arc::clone(&self.agent_registry))
                .with_data_planner(Arc::clone(&self.data_planner))
                .with_task_planner(Arc::clone(&self.task_planner))
                .with_policy(self.policy)
                .with_report_timeout(self.report_timeout)
                .with_retry_policy(self.retry.clone())
                .with_degradation(self.ladder.clone())
                .with_scheduler(self.scheduler);
        if let Some(b) = &self.breakers {
            coordinator = coordinator.with_breakers(Arc::clone(b));
        }
        if let Some(m) = &self.memo {
            coordinator = coordinator.with_memoization(Arc::clone(m));
        }
        if let Some(cfg) = self.adaptive {
            coordinator = coordinator.with_adaptive(cfg);
        }
        if self.observability.is_armed() {
            coordinator = coordinator.with_observability(self.observability.clone());
        }
        coordinator
    }

    /// Starts a session: creates its scope, spawns an instance of every
    /// registered agent into it, and attaches a coordinator + daemon.
    pub fn start_session(&self) -> Result<BlueprintSession, CoreError> {
        let session = self.sessions.start()?;
        let scope = session.scope().to_string();
        let mut instances = Vec::new();
        for name in self.factory.registered() {
            let id = self
                .factory
                .spawn(&name, &scope)
                .map_err(|e| CoreError::Setup(e.to_string()))?;
            session.add_agent(&name)?;
            instances.push(id);
        }
        let coordinator = Arc::new(self.build_coordinator(scope));
        let daemon = CoordinatorDaemon::spawn(
            Arc::clone(&coordinator),
            self.store.clone(),
            self.constraints,
        )?;
        Ok(BlueprintSession {
            session,
            coordinator,
            daemon,
            factory: Arc::clone(&self.factory),
            task_planner: Arc::clone(&self.task_planner),
            constraints: self.constraints,
            instances,
        })
    }
}

/// A live session: spawned agents + coordinator + daemon.
pub struct BlueprintSession {
    session: Session,
    coordinator: Arc<TaskCoordinator>,
    daemon: CoordinatorDaemon,
    factory: Arc<AgentFactory>,
    task_planner: Arc<TaskPlanner>,
    constraints: QosConstraints,
    instances: Vec<u64>,
}

impl BlueprintSession {
    /// The underlying session (scope, participants, activity).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The session's task coordinator.
    pub fn coordinator(&self) -> &Arc<TaskCoordinator> {
        &self.coordinator
    }

    /// Plans an utterance and returns the plan without executing it (the
    /// interactive-planning surface of §V-F).
    pub fn plan(&self, utterance: &str) -> Result<TaskPlan, CoreError> {
        Ok(self.task_planner.plan(utterance)?)
    }

    /// Centralized handling: plan the utterance, execute it under the
    /// session's constraints, and return the full report.
    pub fn handle(&self, utterance: &str) -> Result<ExecutionReport, CoreError> {
        let plan = self.task_planner.plan(utterance)?;
        Ok(self.coordinator.execute(&plan, self.constraints)?)
    }

    /// Executes an explicit plan (e.g. one refined interactively).
    pub fn execute(&self, plan: &TaskPlan) -> Result<ExecutionReport, CoreError> {
        Ok(self.coordinator.execute(plan, self.constraints)?)
    }

    /// Decentralized handling: publish tagged user text onto the session's
    /// user stream and let tag-triggered agents react (Fig 10 step 1).
    pub fn say(&self, text: &str) -> Result<(), CoreError> {
        self.session.publish(
            "user",
            Message::data(text)
                .with_tag("user-text")
                .from_producer("user"),
        )?;
        Ok(())
    }

    /// Injects a UI interaction event (Fig 9 step 1).
    pub fn click(
        &self,
        form: &blueprint_agents::UiForm,
        field: &str,
        value: serde_json::Value,
    ) -> Result<(), CoreError> {
        self.session
            .publish(&form.event_segment(), form.event(field, value))?;
        Ok(())
    }

    /// Number of plans the daemon has executed.
    pub fn plans_executed(&self) -> u64 {
        self.daemon.executed()
    }

    /// Stops the session's agents and daemon.
    pub fn shutdown(&mut self) {
        self.daemon.stop();
        for id in self.instances.drain(..) {
            self.factory.stop(id);
        }
    }
}

impl Drop for BlueprintSession {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_coordinator::Outcome;
    use blueprint_streams::{Selector, TagFilter};
    use serde_json::json;

    fn small_hr() -> HrConfig {
        HrConfig {
            seed: 5,
            jobs: 60,
            applicants: 50,
            companies: 8,
            applications: 100,
        }
    }

    fn blueprint() -> Blueprint {
        Blueprint::builder()
            .with_hr_domain(small_hr())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_wires_everything() {
        let bp = blueprint();
        assert_eq!(bp.factory().registered().len(), 10);
        assert_eq!(bp.agent_registry().len(), 10);
        assert_eq!(bp.data_registry().len(), 8);
        assert!(bp.dataset().is_some());
        assert!(bp
            .data_planner()
            .source_names()
            .contains(&"gpt-large".to_string()));
    }

    #[test]
    fn bare_runtime_without_hr_builds() {
        let bp = Blueprint::builder().build().unwrap();
        assert_eq!(bp.factory().registered().len(), 0);
        assert!(bp.dataset().is_none());
        // No agents → planning fails cleanly.
        let session = bp.start_session().unwrap();
        assert!(session.plan("find me a job").is_err());
    }

    #[test]
    fn running_example_end_to_end_centralized() {
        let bp = blueprint();
        let session = bp.start_session().unwrap();
        let report = session
            .handle("I am looking for a data scientist position in SF bay area.")
            .unwrap();
        assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
        match &report.outcome {
            Outcome::Completed { output } => {
                let rendered = output["rendered"].as_str().unwrap();
                assert!(rendered.contains("item(s)"));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        // Budget recorded both agent and data-plan costs.
        assert!(report.budget.spent_cost > 0.0);
        assert_eq!(report.node_results.len(), 3);
    }

    #[test]
    fn decentralized_conversation_fig10() {
        let bp = blueprint();
        let session = bp.start_session().unwrap();
        let sub = bp
            .store()
            .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
            .unwrap();
        session.say("How many applicants per city?").unwrap();
        let summary = sub.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(summary.payload.as_str().unwrap().contains("row"));
    }

    #[test]
    fn ui_event_drives_plan_fig9() {
        let bp = blueprint();
        let session = bp.start_session().unwrap();
        let form = blueprint_agents::UiForm::new("applicants", "Applicants");
        let sub = bp
            .store()
            .subscribe(Selector::AllStreams, TagFilter::any_of(["task-status"]))
            .unwrap();
        session.click(&form, "job", json!(1)).unwrap();
        let status = sub.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(status.control_op(), Some("task-completed"));
        for _ in 0..200 {
            if session.plans_executed() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(session.plans_executed(), 1);
    }

    #[test]
    fn sessions_are_isolated() {
        let bp = blueprint();
        let s1 = bp.start_session().unwrap();
        let s2 = bp.start_session().unwrap();
        assert_ne!(s1.session().scope(), s2.session().scope());
        assert_eq!(s1.session().participants().len(), 10);
    }

    #[test]
    fn plan_without_execution_is_inspectable() {
        let bp = blueprint();
        let session = bp.start_session().unwrap();
        let plan = session
            .plan("I am looking for a data scientist position in SF bay area.")
            .unwrap();
        let text = plan.render_text();
        assert!(text.contains("PROFILER"));
        assert!(text.contains("JOB-MATCHER"));
        assert!(text.contains("PRESENTER"));
    }

    #[test]
    fn shutdown_stops_agents() {
        let bp = blueprint();
        let mut session = bp.start_session().unwrap();
        assert_eq!(bp.factory().stats().running_instances, 10);
        session.shutdown();
        assert_eq!(bp.factory().stats().running_instances, 0);
    }

    #[test]
    fn budget_constraints_abort_expensive_tasks() {
        let bp = Blueprint::builder()
            .with_hr_domain(small_hr())
            .with_constraints(QosConstraints::none().with_max_cost(0.001))
            .build()
            .unwrap();
        let session = bp.start_session().unwrap();
        let report = session
            .handle("I am looking for a data scientist position in SF bay area.")
            .unwrap();
        assert!(matches!(report.outcome, Outcome::Aborted { .. }));
    }

    #[test]
    fn guardrails_register_when_requested() {
        let bp = Blueprint::builder()
            .with_hr_domain(small_hr())
            .with_guardrails()
            .build()
            .unwrap();
        assert!(bp.agent_registry().contains("content-moderator"));
        assert!(bp.agent_registry().contains("fact-verifier"));
        // A session spawns them like any other agent and they serve work.
        let session = bp.start_session().unwrap();
        assert!(session
            .session()
            .participants()
            .contains(&"content-moderator".to_string()));
    }

    #[test]
    fn resilience_wiring_reaches_every_layer() {
        let bp = Blueprint::builder()
            .with_hr_domain(small_hr())
            .with_fault_plan(FaultPlan::none(42))
            .with_circuit_breakers(BreakerConfig::default())
            .with_retry_policy(RetryPolicy::standard(42))
            .build()
            .unwrap();
        assert!(bp.fault_injector().is_some());
        assert!(bp.breakers().is_some());
        assert!(bp.store().fault_injector().is_some());
        assert!(bp.llm().fault_injector().is_some());
        // A zero-rate plan perturbs nothing: the running example completes
        // and the injector log stays empty.
        let session = bp.start_session().unwrap();
        let report = session
            .handle("I am looking for a data scientist position in SF bay area.")
            .unwrap();
        assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
        assert!(report.degradations.is_empty());
        assert_eq!(bp.fault_injector().unwrap().total(), 0);
    }

    #[test]
    fn observability_wiring_reaches_every_layer() {
        let bp = Blueprint::builder()
            .with_hr_domain(small_hr())
            .with_tracing()
            .with_metrics()
            .build()
            .unwrap();
        assert!(bp.observability().is_armed());
        let session = bp.start_session().unwrap();
        let report = session
            .handle("I am looking for a data scientist position in SF bay area.")
            .unwrap();
        assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);

        // Metrics reached every instrumented layer the running example touches.
        let snap = bp.metrics();
        assert!(snap.counter("blueprint.streams.publishes") > 0);
        assert_eq!(snap.counter("blueprint.agents.invocations"), 3);
        assert_eq!(snap.counter("blueprint.coordinator.dispatches"), 3);
        assert!(snap.counter("blueprint.llmsim.calls") > 0);
        assert!(snap.counter("blueprint.datastore.queries") > 0);
        assert!(snap.counter("blueprint.optimizer.budget_debits") > 0);
        // The report carries the same snapshot for offline inspection.
        let attached = report.metrics.expect("armed run attaches metrics");
        assert_eq!(
            attached.counter("blueprint.coordinator.dispatches"),
            snap.counter("blueprint.coordinator.dispatches")
        );

        // The trace is one tree: a task root whose node spans follow the
        // 3-node plan, each with a child invoke span.
        let trace = bp.trace();
        let roots = trace.roots();
        assert_eq!(roots.len(), 1, "trace: {}", trace.render_text());
        assert!(roots[0].name.starts_with("task:"));
        let nodes = trace.children_of(roots[0].id);
        assert_eq!(nodes.len(), 1, "chain plan: one root node");
        assert!(trace.find("invoke:profiler").is_some());
    }

    #[test]
    fn disarmed_runtime_records_nothing() {
        let bp = blueprint();
        let session = bp.start_session().unwrap();
        let report = session
            .handle("I am looking for a data scientist position in SF bay area.")
            .unwrap();
        assert!(report.outcome.succeeded());
        assert!(report.metrics.is_none());
        assert!(bp.trace().spans.is_empty());
        assert!(bp.metrics().counters.is_empty());
    }

    #[test]
    fn extra_models_appear_as_sources() {
        let bp = Blueprint::builder()
            .with_hr_domain(small_hr())
            .with_extra_model(ModelProfile::tiny())
            .build()
            .unwrap();
        let names = bp.data_planner().source_names();
        assert!(names.contains(&"gpt-large".to_string()));
        assert!(names.contains(&"gpt-tiny".to_string()));
    }
}
