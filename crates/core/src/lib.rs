//! # blueprint-core
//!
//! The assembled blueprint runtime (§IV, Fig 1): one [`Blueprint`] owns the
//! streams database, the agent and data registries, the agent factory
//! ("containers"), the task and data planners, the optimizer configuration,
//! and a session manager. A [`BlueprintSession`] adds the per-session pieces
//! — spawned agent instances, a task coordinator with its budget, and the
//! coordinator daemon listening for plans — and exposes the two interaction
//! styles the paper describes:
//!
//! * **centralized**: [`BlueprintSession::handle`] plans the utterance with
//!   the task planner and drives it through the coordinator;
//! * **decentralized**: [`BlueprintSession::say`] simply publishes tagged
//!   user text and lets tag-triggered agents chain autonomously (Fig 10),
//!   while [`BlueprintSession::click`] injects UI events (Fig 9).
//!
//! ```no_run
//! use blueprint_core::Blueprint;
//!
//! let blueprint = Blueprint::builder().with_hr_domain(Default::default()).build().unwrap();
//! let session = blueprint.start_session().unwrap();
//! let report = session
//!     .handle("I am looking for a data scientist position in SF bay area.")
//!     .unwrap();
//! assert!(report.outcome.succeeded());
//! ```

pub mod runtime;
pub mod serving;

pub use runtime::{Blueprint, BlueprintBuilder, BlueprintSession, CoreError};
pub use serving::{ServingRuntime, POOL_SCOPE};

// Re-export the public surface of every layer so downstream users (examples,
// benches, integration tests) need only this crate.
pub use blueprint_agents as agents;
pub use blueprint_coordinator as coordinator;
pub use blueprint_datastore as datastore;
pub use blueprint_hrdomain as hrdomain;
pub use blueprint_llmsim as llmsim;
pub use blueprint_observability as observability;
pub use blueprint_optimizer as optimizer;
pub use blueprint_planner as planner;
pub use blueprint_registry as registry;
pub use blueprint_resilience as resilience;
pub use blueprint_session as session;
pub use blueprint_streams as streams;
