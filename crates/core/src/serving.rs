//! Multi-session serving: one shared agent pool, many concurrent sessions.
//!
//! [`Blueprint::start_session`] spawns a private instance of every registered
//! agent, which is the right shape for a handful of interactive sessions but
//! not for serving hundreds: agent threads multiply with sessions while the
//! agents themselves are stateless processors. The [`ServingRuntime`] instead
//! spawns the agent pool **once** into the shared [`POOL_SCOPE`] and gives
//! every session its own lightweight [`TaskCoordinator`] that routes
//! instructions to the pool (via
//! [`TaskCoordinator::with_instruction_scope`]) while keeping outputs,
//! status streams, and dead-letter quarantine inside the session's own
//! scope. Admission, per-session budget isolation, fair round-robin
//! dispatch, and the bounded global in-flight cap come from the
//! [`SessionRouter`].
//!
//! Correlation works because instructions carry their session-scoped
//! `output_stream` explicitly and reports land on `pool:reports` tagged with
//! the globally-unique `task:<id>`, so concurrent coordinators never steal
//! each other's reports.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use blueprint_coordinator::{ExecutionReport, Outcome, TaskCoordinator};
use blueprint_optimizer::QosConstraints;
use blueprint_planner::TaskPlan;
use blueprint_session::{JobOutcome, ServingConfig, SessionJob, SessionReport, SessionRouter};
use serde_json::{json, Value};

use crate::runtime::{Blueprint, CoreError};

/// Scope the shared agent pool lives in. Instructions from every session's
/// coordinator are published to `pool:instructions`; reports come back on
/// `pool:reports`.
pub const POOL_SCOPE: &str = "pool";

struct Slot {
    coordinator: Arc<TaskCoordinator>,
    scope: String,
}

/// A serving runtime: shared agent pool + session router + per-session
/// coordinators. Obtained from [`Blueprint::serving`] after configuring
/// [`crate::BlueprintBuilder::with_serving`].
pub struct ServingRuntime<'a> {
    blueprint: &'a Blueprint,
    router: SessionRouter,
    slots: Mutex<HashMap<u64, Slot>>,
    pool_instances: Vec<u64>,
}

impl Blueprint {
    /// Starts the multi-session serving runtime: spawns one instance of every
    /// registered agent into the shared [`POOL_SCOPE`] and arms the session
    /// router with the configured `(max_sessions, max_in_flight)` caps.
    /// Errors unless [`crate::BlueprintBuilder::with_serving`] was called.
    pub fn serving(&self) -> Result<ServingRuntime<'_>, CoreError> {
        let (max_sessions, max_in_flight) = self.serving.ok_or_else(|| {
            CoreError::Setup(
                "serving not configured: call with_serving(max_sessions, max_in_flight)".into(),
            )
        })?;
        let mut pool_instances = Vec::new();
        for name in self.factory.registered() {
            let id = self
                .factory
                .spawn(&name, POOL_SCOPE)
                .map_err(|e| CoreError::Setup(e.to_string()))?;
            pool_instances.push(id);
        }
        let cfg = ServingConfig {
            max_sessions,
            max_in_flight,
            session_constraints: self.constraints,
        };
        let router = SessionRouter::new(cfg, &self.observability.metrics);
        Ok(ServingRuntime {
            blueprint: self,
            router,
            slots: Mutex::new(HashMap::new()),
            pool_instances,
        })
    }
}

impl ServingRuntime<'_> {
    /// Admits a session under the blueprint's default QoS constraints and
    /// returns its id.
    pub fn open_session(&self) -> Result<u64, CoreError> {
        self.open_session_with(self.blueprint.constraints)
    }

    /// Admits a session with an explicit per-session budget. The router
    /// enforces admission control; on rejection the freshly-minted scope is
    /// retired again so nothing leaks.
    pub fn open_session_with(&self, constraints: QosConstraints) -> Result<u64, CoreError> {
        let session = self.blueprint.sessions.start()?;
        let id = session.id();
        if let Err(e) = self.router.open_session_with(id, constraints) {
            self.blueprint.sessions.retire(id);
            return Err(e.into());
        }
        let scope = session.scope().to_string();
        let coordinator = Arc::new(
            self.blueprint
                .build_coordinator(scope.clone())
                .with_instruction_scope(POOL_SCOPE),
        );
        self.slots.lock().insert(id, Slot { coordinator, scope });
        Ok(id)
    }

    /// Plans an utterance and queues it on the session's lane. Returns the
    /// task id; the result lands in the session's report at
    /// [`ServingRuntime::finish`].
    pub fn submit(&self, session: u64, utterance: &str) -> Result<String, CoreError> {
        let plan = self.blueprint.task_planner.plan(utterance)?;
        self.submit_plan(session, plan)
    }

    /// Queues an explicit plan on the session's lane.
    pub fn submit_plan(&self, session: u64, plan: TaskPlan) -> Result<String, CoreError> {
        let coordinator = {
            let slots = self.slots.lock();
            let slot = slots
                .get(&session)
                .ok_or(blueprint_session::RouterError::UnknownSession(session))?;
            Arc::clone(&slot.coordinator)
        };
        self.blueprint.sessions.touch(session);
        let task_id = plan.task_id.clone();
        let constraints = self.blueprint.constraints;
        let job: SessionJob = Box::new(move || match coordinator.execute(&plan, constraints) {
            Ok(report) => JobOutcome {
                ok: report.outcome.succeeded(),
                cost: report.budget.spent_cost,
                latency_micros: report.budget.spent_latency_micros,
                accuracy: report.budget.accuracy_so_far,
                output: outcome_json(&report),
            },
            Err(e) => JobOutcome {
                ok: false,
                cost: 0.0,
                latency_micros: 0,
                accuracy: 0.0,
                output: json!({ "error": e.to_string() }),
            },
        });
        self.router.submit(session, task_id.clone(), job)?;
        Ok(task_id)
    }

    /// Blocks until every queued task of every session has completed.
    pub fn await_idle(&self) {
        self.router.wait_idle();
    }

    /// Drains the session's lane, closes it, reaps its streams from the
    /// store, and returns the per-session report.
    pub fn finish(&self, session: u64) -> Result<SessionReport, CoreError> {
        let report = self.router.close_session(session)?;
        self.slots.lock().remove(&session);
        self.blueprint.sessions.retire(session);
        Ok(report)
    }

    /// The session router (dispatch log, budgets, gauges).
    pub fn router(&self) -> &SessionRouter {
        &self.router
    }

    /// The scope of an open session.
    pub fn session_scope(&self, session: u64) -> Option<String> {
        self.slots.lock().get(&session).map(|s| s.scope.clone())
    }

    /// Sessions currently admitted.
    pub fn active_sessions(&self) -> usize {
        self.router.active_sessions()
    }

    /// Stops the router workers and the shared agent pool. Called
    /// automatically on drop.
    pub fn shutdown(&mut self) {
        self.router.shutdown();
        for id in self.pool_instances.drain(..) {
            self.blueprint.factory.stop(id);
        }
    }
}

impl Drop for ServingRuntime<'_> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flattens an execution outcome into the JSON value carried on the session's
/// completion record. Failures record whether the node was actually attempted
/// (an attempted failure implies a quarantined dead-letter; an
/// input-resolution failure never issued an instruction), and replans nest
/// their replacement's outcome under `"outcome"` — both so callers that only
/// see completion records can audit the complete-or-quarantined invariant.
fn outcome_json(report: &ExecutionReport) -> Value {
    match &report.outcome {
        Outcome::Completed { output } => output.clone(),
        Outcome::Aborted { reason } => json!({ "aborted": reason }),
        Outcome::Failed { node, error } => {
            let attempted = report.node_results.iter().any(|n| n.node == *node && !n.ok);
            json!({ "failed": node, "error": error, "attempted": attempted })
        }
        Outcome::Replanned { reason, inner } => {
            json!({ "replanned": reason, "outcome": outcome_json(inner) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_hrdomain::HrConfig;
    use blueprint_session::Disposition;

    const UTTERANCE: &str = "I am looking for a data scientist position in SF bay area.";

    fn small_hr() -> HrConfig {
        HrConfig {
            seed: 5,
            jobs: 60,
            applicants: 50,
            companies: 8,
            applications: 100,
        }
    }

    fn serving_blueprint(max_sessions: usize, max_in_flight: usize) -> Blueprint {
        Blueprint::builder()
            .with_hr_domain(small_hr())
            .with_serving(max_sessions, max_in_flight)
            .with_metrics()
            .build()
            .unwrap()
    }

    #[test]
    fn serving_requires_the_builder_knob() {
        let bp = Blueprint::builder()
            .with_hr_domain(small_hr())
            .build()
            .unwrap();
        assert!(matches!(bp.serving(), Err(CoreError::Setup(_))));
    }

    #[test]
    fn pool_is_spawned_once_regardless_of_session_count() {
        let bp = serving_blueprint(8, 2);
        let serving = bp.serving().unwrap();
        let pooled = bp.factory().stats().running_instances;
        assert_eq!(pooled, 10, "one instance per registered agent");
        for _ in 0..4 {
            serving.open_session().unwrap();
        }
        assert_eq!(
            bp.factory().stats().running_instances,
            pooled,
            "opening sessions must not spawn more agents"
        );
    }

    #[test]
    fn serving_session_completes_the_running_example() {
        let bp = serving_blueprint(4, 2);
        let serving = bp.serving().unwrap();
        let s = serving.open_session().unwrap();
        let task = serving.submit(s, UTTERANCE).unwrap();
        serving.await_idle();
        let report = serving.finish(s).unwrap();
        assert_eq!(report.completions.len(), 1);
        let done = &report.completions[0];
        assert_eq!(done.label, task);
        assert!(matches!(done.disposition, Disposition::Completed));
        let rendered = done.output["rendered"].as_str().unwrap();
        assert!(rendered.contains("item(s)"));
        assert!(report.budget.spent_cost > 0.0);
    }

    #[test]
    fn concurrent_sessions_share_the_pool_and_stay_isolated() {
        let bp = serving_blueprint(8, 4);
        let serving = bp.serving().unwrap();
        let ids: Vec<u64> = (0..4).map(|_| serving.open_session().unwrap()).collect();
        for &s in &ids {
            serving.submit(s, UTTERANCE).unwrap();
        }
        serving.await_idle();
        for &s in &ids {
            let report = serving.finish(s).unwrap();
            assert_eq!(report.completions.len(), 1, "session {s}");
            assert!(
                matches!(report.completions[0].disposition, Disposition::Completed),
                "session {s}: {:?}",
                report.completions[0].output
            );
        }
    }

    #[test]
    fn finish_reaps_the_session_scope_from_the_store() {
        let bp = serving_blueprint(4, 2);
        let serving = bp.serving().unwrap();
        let s = serving.open_session().unwrap();
        let scope = serving.session_scope(s).unwrap();
        serving.submit(s, UTTERANCE).unwrap();
        serving.await_idle();
        assert!(
            !bp.store().list_streams(Some(&scope)).is_empty(),
            "task streams exist before finish"
        );
        serving.finish(s).unwrap();
        assert!(
            bp.store().list_streams(Some(&scope)).is_empty(),
            "finish reaps session streams"
        );
        assert!(serving.session_scope(s).is_none());
    }

    #[test]
    fn admission_control_is_enforced_and_rejection_leaks_nothing() {
        let bp = serving_blueprint(2, 1);
        let serving = bp.serving().unwrap();
        serving.open_session().unwrap();
        serving.open_session().unwrap();
        let before = bp.sessions.live_sessions().len();
        assert!(matches!(serving.open_session(), Err(CoreError::Serving(_))));
        assert_eq!(bp.sessions.live_sessions().len(), before);
        assert_eq!(serving.active_sessions(), 2);
    }

    #[test]
    fn per_session_budget_rejects_only_the_overspender() {
        let bp = serving_blueprint(4, 2);
        let serving = bp.serving().unwrap();
        // Tight budget: the first task's spend exhausts it, the second is
        // rejected without running. The sibling session is untouched.
        let tight = serving
            .open_session_with(QosConstraints::none().with_max_cost(1e-9))
            .unwrap();
        let roomy = serving.open_session().unwrap();
        serving.submit(tight, UTTERANCE).unwrap();
        serving.submit(tight, UTTERANCE).unwrap();
        serving.submit(roomy, UTTERANCE).unwrap();
        serving.await_idle();
        let tight_report = serving.finish(tight).unwrap();
        assert_eq!(tight_report.rejected, 1, "second task rejected");
        assert!(matches!(
            tight_report.completions[1].disposition,
            Disposition::Rejected
        ));
        let roomy_report = serving.finish(roomy).unwrap();
        assert!(matches!(
            roomy_report.completions[0].disposition,
            Disposition::Completed
        ));
    }

    #[test]
    fn serving_metrics_gauges_settle_to_zero() {
        let bp = serving_blueprint(4, 2);
        let serving = bp.serving().unwrap();
        let s = serving.open_session().unwrap();
        serving.submit(s, UTTERANCE).unwrap();
        serving.await_idle();
        serving.finish(s).unwrap();
        let snap = bp.metrics();
        assert_eq!(snap.gauge("blueprint.session.active"), 0);
        assert_eq!(snap.gauge("blueprint.session.queue_depth"), 0);
        assert_eq!(snap.counter("blueprint.session.dispatches"), 1);
    }
}
