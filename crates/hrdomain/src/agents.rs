//! The YourJourney agent suite.
//!
//! Maps the company's "existing models and APIs" onto blueprint agents
//! (§V-B, §V-C): each agent below is registered both in the
//! [`AgentFactory`] (so instances can be spawned into containers) and in the
//! [`AgentRegistry`] (so the task planner can discover it). The
//! tag-triggered agents (INTENT CLASSIFIER → AGENTIC EMPLOYER → NL2Q →
//! SQL EXECUTOR → QUERY SUMMARIZER) reproduce the decentralized flow of
//! Fig 10; AGENTIC EMPLOYER's plan emission reproduces Fig 9.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde_json::{json, Value};

use blueprint_agents::{
    ActivationMode, AgentContext, AgentError, AgentFactory, AgentSpec, CostProfile, DataType,
    Deployment, FnProcessor, Inputs, Outputs, ParamSpec, Processor, StreamBinding, UiField, UiForm,
};
use blueprint_llmsim::SimLlm;
use blueprint_planner::{InputBinding, PlanNode, TaskPlan};
use blueprint_registry::AgentRegistry;
use blueprint_streams::Message;

use crate::data::{slug, HrDataset};
use crate::matcher::rank_jobs;

static PLAN_COUNTER: AtomicU64 = AtomicU64::new(1);

/// Handles to the registered suite.
pub struct HrAgents {
    /// Names of the registered agents, in registration order.
    pub names: Vec<String>,
}

/// Converts model usage into context charges.
fn charge(ctx: &AgentContext, usage: blueprint_llmsim::Usage) {
    ctx.charge_cost(usage.cost);
    ctx.charge_latency_micros(usage.latency_micros);
}

/// Registers the full suite into a factory and registry.
pub fn register_hr_agents(
    factory: &AgentFactory,
    registry: &AgentRegistry,
    dataset: Arc<HrDataset>,
    llm: Arc<SimLlm>,
) -> blueprint_agents::Result<HrAgents> {
    let mut names = Vec::new();
    let mut add = |spec: AgentSpec, proc: Arc<dyn Processor>| -> blueprint_agents::Result<()> {
        names.push(spec.name.clone());
        factory.register(spec.clone(), proc)?;
        registry
            .register(spec)
            .map_err(|e| AgentError::InvalidSpec(e.to_string()))?;
        Ok(())
    };

    // ── PROFILER ─────────────────────────────────────────────────────────
    {
        let llm = Arc::clone(&llm);
        let spec = AgentSpec::new(
            "profiler",
            "collect job seeker profile information from the user via a UI form",
        )
        .with_input(ParamSpec::required(
            "text",
            "the user utterance",
            DataType::Text,
        ))
        .with_output(ParamSpec::required(
            "profile",
            "the collected job seeker profile with title, location, skills",
            DataType::Json,
        ))
        .with_profile(CostProfile::new(0.5, 60_000, 0.95));
        let proc = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let text = inputs.require_str("text")?;
                // Present the profile form (declarative UI, rendered elsewhere).
                let form = UiForm::new("profile", "Job Seeker Profile")
                    .with_field(UiField::text("title", "Desired title"))
                    .with_field(UiField::text("location", "Preferred location"))
                    .with_field(UiField::button("submit", "Submit"));
                ctx.emit("ui", form.into_message())?;
                let (criteria, usage) = llm.extract_criteria(text);
                charge(ctx, usage);
                let mut profile = criteria.to_json();
                profile["experience_years"] = json!(5);
                Ok(Outputs::new().with("profile", profile))
            },
        ));
        add(spec, proc)?;
    }

    // ── JOB MATCHER ──────────────────────────────────────────────────────
    {
        let dataset2 = Arc::clone(&dataset);
        let spec = AgentSpec::new(
            "job-matcher",
            "match the job seeker profile against available job listings and rank them",
        )
        .with_input(ParamSpec::required(
            "job_seeker_data",
            "the job seeker profile to match",
            DataType::Json,
        ))
        .with_input(ParamSpec::required(
            "jobs",
            "available job listings",
            DataType::Table,
        ))
        .with_input(ParamSpec::optional(
            "criteria",
            "additional matching conditions",
            DataType::Text,
        ))
        .with_output(ParamSpec::required(
            "matches",
            "ranked matched jobs with scores and explanations",
            DataType::Table,
        ))
        .with_profile(CostProfile::new(2.0, 120_000, 0.9))
        .with_deployment(Deployment::gpu(2));
        let proc = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let profile = inputs.require("job_seeker_data")?;
                let jobs: Vec<Value> = inputs
                    .require("jobs")?
                    .as_array()
                    .cloned()
                    .unwrap_or_default();
                let related: Vec<String> = profile
                    .get("title")
                    .and_then(Value::as_str)
                    .map(|t| {
                        dataset2
                            .taxonomy
                            .traverse(&slug(t), None, 1, true)
                            .unwrap_or_default()
                            .into_iter()
                            .filter_map(|n| {
                                n.props
                                    .get("name")
                                    .and_then(Value::as_str)
                                    .map(str::to_string)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                ctx.charge_cost(0.002 * jobs.len() as f64);
                ctx.charge_latency_micros(100 + 20 * jobs.len() as u64);
                let ranked = rank_jobs(profile, &jobs, &related, 10);
                let matches: Vec<Value> = ranked
                    .into_iter()
                    .map(|m| json!({"job": m.job, "score": m.score, "why": m.explanation}))
                    .collect();
                Ok(Outputs::new().with("matches", Value::Array(matches)))
            },
        ));
        add(spec, proc)?;
    }

    // ── PRESENTER ────────────────────────────────────────────────────────
    {
        let spec = AgentSpec::new("presenter", "present results and content to the end user")
            .with_input(ParamSpec::required(
                "content",
                "the content to present",
                DataType::Any,
            ))
            .with_output(ParamSpec::required(
                "rendered",
                "the rendered presentation text",
                DataType::Text,
            ))
            .with_profile(CostProfile::new(0.05, 5_000, 1.0));
        let proc = Arc::new(FnProcessor::new(|inputs: &Inputs, ctx: &AgentContext| {
            let content = inputs.require("content")?;
            ctx.charge_latency_micros(1_000);
            let rendered = render_content(content);
            ctx.emit(
                "display",
                Message::data(rendered.clone()).with_tag("display"),
            )?;
            Ok(Outputs::new().with("rendered", json!(rendered)))
        }));
        add(spec, proc)?;
    }

    // ── INTENT CLASSIFIER (decentralized, Fig 10 step 2) ────────────────
    {
        let llm2 = Arc::clone(&llm);
        let spec = AgentSpec::new(
            "intent-classifier",
            "classify the intent of a user utterance in the conversation",
        )
        .with_input(ParamSpec::required(
            "text",
            "the user utterance",
            DataType::Text,
        ))
        .with_output(ParamSpec::required(
            "intent",
            "the identified intent with the original text",
            DataType::Json,
        ))
        .with_binding(StreamBinding::tagged("text", ["user-text"]))
        .with_activation(ActivationMode::Hybrid)
        .with_output_tag("intent")
        .with_profile(CostProfile::new(0.2, 30_000, 0.93));
        let proc = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let text = inputs.require_str("text")?;
                let (intent, confidence, usage) = llm2.classify_intent(text);
                charge(ctx, usage);
                Ok(Outputs::new().with(
                    "intent",
                    json!({
                        "intent": format!("{intent:?}"),
                        "tag": intent.tag(),
                        "confidence": confidence,
                        "text": text,
                    }),
                ))
            },
        ));
        add(spec, proc)?;
    }

    // ── NL2Q (decentralized, Fig 10 step 3) ──────────────────────────────
    {
        let llm2 = Arc::clone(&llm);
        let spec = AgentSpec::new(
            "nl2q",
            "translate a natural language question into a database query such as SQL",
        )
        .with_input(ParamSpec::required(
            "question",
            "the question text",
            DataType::Text,
        ))
        .with_output(ParamSpec::required(
            "query",
            "the SQL query",
            DataType::Text,
        ))
        .with_binding(StreamBinding::tagged("question", ["nlq"]))
        .with_activation(ActivationMode::Hybrid)
        .with_output_tag("sql")
        .with_profile(CostProfile::new(1.0, 90_000, 0.9))
        .with_deployment(Deployment::gpu(1));
        // The schema and the data-aware value dictionary are indexed once at
        // registration (the offline value index a real NL2Q system builds),
        // not rebuilt on every conversational query.
        let tables: Vec<blueprint_llmsim::nl2sql::TableSchema> = dataset
            .db
            .table_names()
            .iter()
            .map(|t| blueprint_llmsim::nl2sql::TableSchema {
                name: t.clone(),
                columns: dataset
                    .db
                    .schema_of(t)
                    .expect("table exists")
                    .columns
                    .iter()
                    .map(|c| (c.name.clone(), c.ctype.name().to_lowercase()))
                    .collect(),
            })
            .collect();
        let mut values = std::collections::HashMap::new();
        for source_col in ["city", "title", "status"] {
            let mut vals: Vec<String> = Vec::new();
            for table in dataset.db.table_names() {
                if dataset
                    .db
                    .schema_of(&table)
                    .map(|s| s.index_of(source_col).is_some())
                    .unwrap_or(false)
                {
                    if let Ok(rs) = dataset
                        .db
                        .execute(&format!("SELECT DISTINCT {source_col} FROM {table}"))
                    {
                        for row in rs.rows {
                            if let Some(s) = row[0].as_str() {
                                let lower = s.to_lowercase();
                                if !vals.contains(&lower) {
                                    vals.push(lower);
                                }
                            }
                        }
                    }
                }
            }
            values.insert(source_col.to_string(), vals);
        }
        let proc = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let question = inputs.require_str("question")?;
                let (sql, usage) = llm2.nl_to_sql(question, &tables, &values);
                charge(ctx, usage);
                let sql = sql.ok_or_else(|| {
                    AgentError::ProcessorFailed(format!("could not translate: {question}"))
                })?;
                Ok(Outputs::new().with("query", json!(sql)))
            },
        ));
        add(spec, proc)?;
    }

    // ── SQL EXECUTOR (decentralized, Fig 10 step 4) ──────────────────────
    {
        let dataset2 = Arc::clone(&dataset);
        let spec = AgentSpec::new(
            "sql-executor",
            "execute a SQL query against the HR database",
        )
        .with_input(ParamSpec::required(
            "query",
            "the SQL query text",
            DataType::Text,
        ))
        .with_output(ParamSpec::required(
            "rows",
            "the query result rows",
            DataType::Table,
        ))
        .with_binding(StreamBinding::tagged("query", ["sql"]))
        .with_activation(ActivationMode::Hybrid)
        .with_output_tag("rows")
        .with_profile(CostProfile::new(0.01, 5_000, 1.0))
        .with_deployment(Deployment {
            kind: blueprint_agents::DeploymentKind::DataProximate,
            ..Default::default()
        });
        let proc = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let sql = inputs.require_str("query")?;
                ctx.charge_cost(0.001);
                ctx.charge_latency_micros(2_000);
                let rs = dataset2
                    .db
                    .execute(sql)
                    .map_err(|e| AgentError::ProcessorFailed(e.to_string()))?;
                Ok(Outputs::new().with("rows", rs.to_json()))
            },
        ));
        add(spec, proc)?;
    }

    // ── QUERY SUMMARIZER (decentralized, Fig 10 step 5) ──────────────────
    {
        let llm2 = Arc::clone(&llm);
        let spec = AgentSpec::new(
            "query-summarizer",
            "summarize and explain database query results in natural language",
        )
        .with_input(ParamSpec::required(
            "rows",
            "the query result rows to explain",
            DataType::Table,
        ))
        .with_output(ParamSpec::required(
            "summary",
            "the explanation text",
            DataType::Text,
        ))
        .with_binding(StreamBinding::tagged("rows", ["rows"]))
        .with_activation(ActivationMode::Hybrid)
        .with_output_tag("summary")
        .with_profile(CostProfile::new(1.0, 90_000, 0.92));
        let proc = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let rows = inputs.require("rows")?;
                let (summary, usage) = llm2.summarize_rows(rows);
                charge(ctx, usage);
                // LLM output is itself a stream (§V-A): emit the summary token
                // by token so renderers can display it incrementally.
                for token in blueprint_llmsim::SimLlm::stream_tokens(&summary) {
                    ctx.emit("summary-tokens", Message::data(token).with_tag("token"))?;
                }
                Ok(Outputs::new().with("summary", json!(summary)))
            },
        ));
        add(spec, proc)?;
    }

    // ── SUMMARIZER (Fig 9's applicant summarizer) ────────────────────────
    {
        let llm2 = Arc::clone(&llm);
        let dataset2 = Arc::clone(&dataset);
        let spec = AgentSpec::new(
            "summarizer",
            "summarize the applicants who applied to a given job posting",
        )
        .with_input(ParamSpec::required(
            "job_id",
            "the job posting id to summarize applicants for",
            DataType::Number,
        ))
        .with_output(ParamSpec::required(
            "summary",
            "the applicant pool summary",
            DataType::Text,
        ))
        .with_profile(CostProfile::new(1.5, 100_000, 0.92));
        let proc = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let job_id = inputs
                    .require("job_id")?
                    .as_i64()
                    .ok_or_else(|| AgentError::ProcessorFailed("job_id must be a number".into()))?;
                let rs = dataset2
                    .db
                    .execute(&format!(
                        "SELECT a.name, a.title, a.city, ap.status FROM applications ap \
                     JOIN applicants a ON ap.applicant_id = a.id WHERE ap.job_id = {job_id}"
                    ))
                    .map_err(|e| AgentError::ProcessorFailed(e.to_string()))?;
                let (summary, usage) = llm2.summarize_rows(&rs.to_json());
                charge(ctx, usage);
                Ok(Outputs::new().with("summary", json!(format!("Job {job_id}: {summary}"))))
            },
        ));
        add(spec, proc)?;
    }

    // ── RESPONDER (conversational fallback) ──────────────────────────────
    {
        let llm2 = Arc::clone(&llm);
        let spec = AgentSpec::new(
            "responder",
            "respond conversationally to the user with a grounded completion",
        )
        .with_input(ParamSpec::required(
            "text",
            "the user utterance",
            DataType::Text,
        ))
        .with_output(ParamSpec::required(
            "reply",
            "the conversational reply",
            DataType::Text,
        ))
        .with_profile(CostProfile::new(0.3, 50_000, 0.9));
        let proc = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let text = inputs.require_str("text")?;
                let t = text.to_lowercase();
                let (reply, usage) =
                    if t.contains("hello") || t.contains("hi ") || t.starts_with("hi") {
                        (
                    "Hello! Ask me about jobs, applicants, or say what role you're looking for."
                        .to_string(),
                    blueprint_llmsim::Usage::default(),
                )
                    } else {
                        llm2.complete(text)
                    };
                charge(ctx, usage);
                Ok(Outputs::new().with("reply", json!(reply)))
            },
        ));
        add(spec, proc)?;
    }

    // ── AGENTIC EMPLOYER (the application driver, §VI) ───────────────────
    {
        let spec = AgentSpec::new(
            "agentic-employer",
            "drive the agentic employer application: route UI events and classified intents",
        )
        .with_input(ParamSpec::required(
            "input",
            "a UI event or a classified intent",
            DataType::Any,
        ))
        .with_binding(StreamBinding::tagged("input", ["ui-event", "intent"]))
        .with_activation(ActivationMode::Decentralized)
        .with_profile(CostProfile::new(0.05, 5_000, 1.0));
        let proc = Arc::new(FnProcessor::new(
            move |inputs: &Inputs, ctx: &AgentContext| {
                let input = inputs.require("input")?;
                ctx.charge_latency_micros(1_000);
                // UI event: a job selection → emit the job id and a plan to
                // summarize its applicants (Fig 9 steps 2-3).
                if let Some(obj) = input.as_object() {
                    if obj.get("field").and_then(Value::as_str) == Some("job") {
                        let job_id = obj.get("value").cloned().unwrap_or(Value::Null);
                        ctx.emit(
                            "jobs-selected",
                            Message::data_json(job_id.clone()).with_tag("job-selected"),
                        )?;
                        let mut plan = TaskPlan::new(
                            format!("ae-{}", PLAN_COUNTER.fetch_add(1, Ordering::Relaxed)),
                            format!("summarize applicants for job {job_id}"),
                        );
                        let mut node_inputs = std::collections::BTreeMap::new();
                        node_inputs.insert("job_id".to_string(), InputBinding::Literal(job_id));
                        plan.push(PlanNode {
                            id: "n1".into(),
                            agent: "summarizer".into(),
                            task: "summarize the applicants for the selected job".into(),
                            inputs: node_inputs,
                            profile: CostProfile::new(1.5, 100_000, 0.92),
                        });
                        ctx.emit("plans", plan.into_message())?;
                        return Ok(Outputs::new());
                    }
                    // Classified intent: open-ended query → tag it NLQ so the
                    // NL2Q agent picks it up (Fig 10 step 3).
                    match obj.get("tag").and_then(Value::as_str) {
                        Some("intent-open-query") => {
                            let text = obj
                                .get("text")
                                .and_then(Value::as_str)
                                .unwrap_or_default()
                                .to_string();
                            ctx.emit("nlq", Message::data(text).with_tag("nlq"))?;
                            return Ok(Outputs::new());
                        }
                        // Greetings and unclassifiable turns route to the
                        // conversational responder via a plan (same mechanism
                        // as Fig 9's summarizer plan).
                        Some("intent-greeting") | Some("intent-unknown") => {
                            let text = obj
                                .get("text")
                                .and_then(Value::as_str)
                                .unwrap_or_default()
                                .to_string();
                            let mut plan = TaskPlan::new(
                                format!("ae-{}", PLAN_COUNTER.fetch_add(1, Ordering::Relaxed)),
                                text.clone(),
                            );
                            let mut node_inputs = std::collections::BTreeMap::new();
                            node_inputs
                                .insert("text".to_string(), InputBinding::Literal(json!(text)));
                            plan.push(PlanNode {
                                id: "n1".into(),
                                agent: "responder".into(),
                                task: "respond conversationally to the user".into(),
                                inputs: node_inputs,
                                profile: CostProfile::new(0.3, 50_000, 0.9),
                            });
                            ctx.emit("plans", plan.into_message())?;
                            return Ok(Outputs::new());
                        }
                        _ => {}
                    }
                }
                Ok(Outputs::new())
            },
        ));
        add(spec, proc)?;
    }

    Ok(HrAgents { names })
}

/// Renders arbitrary JSON content as display text (the simple renderer of
/// §V-B; complex values get a compact browsable form).
fn render_content(content: &Value) -> String {
    match content {
        Value::String(s) => s.clone(),
        Value::Array(items) => {
            let mut out = format!("{} item(s):\n", items.len());
            for (i, item) in items.iter().take(10).enumerate() {
                out.push_str(&format!("  {}. {}\n", i + 1, compact(item)));
            }
            if items.len() > 10 {
                out.push_str("  …\n");
            }
            out
        }
        other => compact(other),
    }
}

fn compact(v: &Value) -> String {
    match v {
        Value::Object(map) => {
            let parts: Vec<String> = map
                .iter()
                .map(|(k, v)| match v {
                    Value::String(s) => format!("{k}: {s}"),
                    other => format!("{k}: {other}"),
                })
                .collect();
            parts.join(", ")
        }
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HrConfig;
    use blueprint_agents::ExecuteAgent;
    use blueprint_llmsim::ModelProfile;
    use blueprint_streams::{Selector, StreamId, StreamStore, TagFilter};
    use std::time::Duration;

    fn setup() -> (
        StreamStore,
        AgentFactory,
        Arc<AgentRegistry>,
        Arc<HrDataset>,
    ) {
        let store = StreamStore::new();
        let factory = AgentFactory::new(store.clone());
        let registry = Arc::new(AgentRegistry::new());
        let dataset = Arc::new(HrDataset::generate(HrConfig {
            seed: 11,
            jobs: 60,
            applicants: 50,
            companies: 8,
            applications: 120,
        }));
        let llm = Arc::new(SimLlm::new(ModelProfile::large()));
        register_hr_agents(&factory, &registry, Arc::clone(&dataset), llm).unwrap();
        (store, factory, registry, dataset)
    }

    #[test]
    fn registers_the_full_suite() {
        let (_, factory, registry, _) = setup();
        assert_eq!(factory.registered().len(), 10);
        assert_eq!(registry.len(), 10);
        assert!(registry.contains("agentic-employer"));
        assert!(registry.contains("responder"));
    }

    #[test]
    fn profiler_extracts_profile() {
        let (_, factory, _, _) = setup();
        let id = factory.spawn("profiler", "session:1").unwrap();
        let out = factory
            .with_instance(id, |h| {
                h.host().execute_now(Inputs::new().with(
                    "text",
                    json!("I am looking for a data scientist position in SF bay area."),
                ))
            })
            .unwrap()
            .unwrap();
        let profile = out.get("profile").unwrap();
        assert_eq!(profile["title"], json!("data scientist"));
        assert_eq!(profile["location"], json!("sf bay area"));
    }

    #[test]
    fn job_matcher_ranks_with_taxonomy_credit() {
        let (_, factory, _, _) = setup();
        let id = factory.spawn("job-matcher", "session:1").unwrap();
        let jobs = json!([
            {"id": 1, "title": "data scientist", "city": "san francisco"},
            {"id": 2, "title": "machine learning engineer", "city": "san francisco"},
            {"id": 3, "title": "recruiter", "city": "boston"},
        ]);
        let out = factory
            .with_instance(id, |h| {
                h.host().execute_now(
                    Inputs::new()
                        .with(
                            "job_seeker_data",
                            json!({"title": "data scientist", "city": "san francisco",
                                   "skills": ["python"], "experience_years": 4}),
                        )
                        .with("jobs", jobs),
                )
            })
            .unwrap()
            .unwrap();
        let matches = out.get("matches").unwrap().as_array().unwrap().clone();
        assert_eq!(matches[0]["job"]["id"], json!(1));
        // The related title (via taxonomy) outranks the unrelated one.
        assert_eq!(matches[1]["job"]["id"], json!(2));
        assert!(matches[0]["why"].as_str().unwrap().contains("exact title"));
    }

    #[test]
    fn sql_executor_runs_queries() {
        let (_, factory, _, _) = setup();
        let id = factory.spawn("sql-executor", "session:1").unwrap();
        let out = factory
            .with_instance(id, |h| {
                h.host().execute_now(
                    Inputs::new().with("query", json!("SELECT COUNT(*) AS n FROM jobs")),
                )
            })
            .unwrap()
            .unwrap();
        assert_eq!(out.get("rows").unwrap()[0]["n"], json!(60));
    }

    #[test]
    fn summarizer_describes_applicant_pool() {
        let (_, factory, _, _) = setup();
        let id = factory.spawn("summarizer", "session:1").unwrap();
        let out = factory
            .with_instance(id, |h| {
                h.host().execute_now(Inputs::new().with("job_id", json!(1)))
            })
            .unwrap()
            .unwrap();
        let summary = out.get("summary").unwrap().as_str().unwrap();
        assert!(summary.starts_with("Job 1:"));
    }

    #[test]
    fn fig10_decentralized_chain_end_to_end() {
        // user text → IC → AE → NL2Q → SQL-executor → query-summarizer,
        // purely through stream tags.
        let (store, factory, _, _) = setup();
        for agent in [
            "intent-classifier",
            "agentic-employer",
            "nl2q",
            "sql-executor",
            "query-summarizer",
        ] {
            factory.spawn(agent, "session:1").unwrap();
        }
        let summary_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
            .unwrap();
        store
            .publish_to(
                "session:1:user",
                ["user-text"],
                Message::data("How many applicants per city?")
                    .with_tag("user-text")
                    .from_producer("user"),
            )
            .unwrap();
        let summary = summary_sub.recv_timeout(Duration::from_secs(10)).unwrap();
        let text = summary.payload.as_str().unwrap();
        assert!(text.contains("row"));
        assert!(text.contains("city"));
    }

    #[test]
    fn fig9_ui_event_emits_plan() {
        let (store, factory, _, _) = setup();
        factory.spawn("agentic-employer", "session:1").unwrap();
        let plan_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["task-plan"]))
            .unwrap();
        let form = UiForm::new("applicants", "Applicants").with_field(UiField::select(
            "job",
            "Job",
            ["1", "2"],
        ));
        store
            .publish_to(
                "session:1:ui:applicants:events",
                ["ui-event"],
                form.event("job", json!(1)),
            )
            .unwrap();
        let plan_msg = plan_sub.recv_timeout(Duration::from_secs(5)).unwrap();
        let plan = TaskPlan::from_message(&plan_msg).unwrap();
        assert_eq!(plan.nodes[0].agent, "summarizer");
        assert_eq!(
            plan.nodes[0].inputs["job_id"],
            InputBinding::Literal(json!(1))
        );
        // The job id was also emitted as data (Fig 9 step 2).
        let selected = store
            .read(&StreamId::new("session:1:jobs-selected"), 0)
            .unwrap();
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].payload, json!(1));
    }

    #[test]
    fn query_summarizer_streams_tokens() {
        // The summary also arrives token-by-token on a dedicated stream
        // (§V-A: LLM output is a stream of token messages).
        let (store, factory, _, _) = setup();
        factory.spawn("query-summarizer", "session:4").unwrap();
        let token_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["token"]))
            .unwrap();
        let summary_sub = store
            .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
            .unwrap();
        store
            .publish_to(
                "session:4:rows",
                Vec::<blueprint_streams::Tag>::new(),
                Message::data_json(json!([{"city": "sf", "n": 2}])).with_tag("rows"),
            )
            .unwrap();
        let summary = summary_sub.recv_timeout(Duration::from_secs(5)).unwrap();
        let full = summary.payload.as_str().unwrap().to_string();
        // Collect the token stream and rejoin it.
        std::thread::sleep(Duration::from_millis(100));
        let tokens: Vec<String> = token_sub
            .drain()
            .into_iter()
            .filter_map(|m| m.text().map(str::to_string))
            .collect();
        assert!(!tokens.is_empty());
        assert_eq!(
            tokens.join(" "),
            full.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }

    #[test]
    fn responder_greets_and_grounds() {
        let (_, factory, _, _) = setup();
        let id = factory.spawn("responder", "session:1").unwrap();
        let out = factory
            .with_instance(id, |h| {
                h.host()
                    .execute_now(Inputs::new().with("text", json!("hello there")))
            })
            .unwrap()
            .unwrap();
        assert!(out
            .get("reply")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("Hello!"));
        // Grounded completion for knowledge questions.
        let out2 = factory
            .with_instance(id, |h| {
                h.host()
                    .execute_now(Inputs::new().with("text", json!("cities in the sf bay area")))
            })
            .unwrap()
            .unwrap();
        assert!(out2
            .get("reply")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("san francisco"));
    }

    #[test]
    fn presenter_renders_tables_and_strings() {
        let (_, factory, _, _) = setup();
        let id = factory.spawn("presenter", "session:1").unwrap();
        let out = factory
            .with_instance(id, |h| {
                h.host()
                    .execute_now(Inputs::new().with("content", json!([{"id": 1, "title": "ds"}])))
            })
            .unwrap()
            .unwrap();
        let rendered = out.get("rendered").unwrap().as_str().unwrap();
        assert!(rendered.contains("1 item(s)"));
        assert!(rendered.contains("title: ds"));
    }

    #[test]
    fn intent_classifier_instruction_path() {
        // Hybrid agents also answer explicit instructions.
        let (store, factory, _, _) = setup();
        factory.spawn("intent-classifier", "session:1").unwrap();
        let out_sub = store
            .subscribe(
                Selector::Stream(StreamId::new("session:1:intent-out")),
                TagFilter::all(),
            )
            .unwrap();
        let instr = ExecuteAgent {
            agent: "intent-classifier".into(),
            inputs: Inputs::new().with("text", json!("hello there")),
            output_stream: "session:1:intent-out".into(),
            task_id: "t".into(),
            node_id: "n".into(),
            span: None,
        };
        store
            .publish_to(
                "session:1:instructions",
                ["instructions"],
                instr.into_message(),
            )
            .unwrap();
        let out = out_sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out.payload["tag"], json!("intent-greeting"));
    }

    #[test]
    fn render_content_truncates_long_lists() {
        let items: Vec<Value> = (0..15).map(|i| json!({"i": i})).collect();
        let rendered = render_content(&Value::Array(items));
        assert!(rendered.contains("15 item(s)"));
        assert!(rendered.contains("…"));
    }
}
