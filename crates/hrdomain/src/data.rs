//! Seeded synthetic HR data: the stand-in for YourJourney's proprietary
//! resume, job-posting, and application corpora (§II: "1M job seekers" —
//! scaled down but with the same shape: skewed titles, bay-area-heavy
//! locations, skill co-occurrence).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

use blueprint_datastore::{
    Column, ColumnType, Datum, DocumentStore, KvStore, PropertyGraph, RelationalDb, Schema,
};
use blueprint_registry::{DataAsset, DataLevel, DataModality, DataRegistry, FieldMeta};

/// Sizing for the synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct HrConfig {
    /// RNG seed (all data is a pure function of this).
    pub seed: u64,
    /// Number of job postings.
    pub jobs: usize,
    /// Number of applicants (with resume documents).
    pub applicants: usize,
    /// Number of companies.
    pub companies: usize,
    /// Number of applications.
    pub applications: usize,
}

impl Default for HrConfig {
    fn default() -> Self {
        HrConfig {
            seed: 42,
            jobs: 200,
            applicants: 300,
            companies: 20,
            applications: 600,
        }
    }
}

/// Title vocabulary with sampling weights (skewed toward data roles, as the
/// engineering-jobs specialization of §II implies).
pub const TITLES: [(&str, u32); 8] = [
    ("data scientist", 25),
    ("machine learning engineer", 15),
    ("data analyst", 15),
    ("data engineer", 12),
    ("software engineer", 18),
    ("research scientist", 6),
    ("recruiter", 5),
    ("statistician", 4),
];

/// City vocabulary: bay-area cities (matching the built-in knowledge base)
/// plus others.
pub const CITIES: [(&str, u32); 10] = [
    ("san francisco", 22),
    ("oakland", 10),
    ("san jose", 12),
    ("berkeley", 8),
    ("palo alto", 8),
    ("mountain view", 10),
    ("new york", 14),
    ("seattle", 8),
    ("austin", 5),
    ("boston", 3),
];

/// Skill vocabulary.
pub const SKILLS: [&str; 10] = [
    "python",
    "sql",
    "statistics",
    "machine learning",
    "pytorch",
    "java",
    "rust",
    "communication",
    "data visualization",
    "distributed systems",
];

fn weighted<'a>(rng: &mut StdRng, items: &[(&'a str, u32)]) -> &'a str {
    let total: u32 = items.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for (item, w) in items {
        if pick < *w {
            return item;
        }
        pick -= w;
    }
    items[items.len() - 1].0
}

/// The generated multi-modal dataset.
pub struct HrDataset {
    /// Relational database: jobs, companies, applicants, applications.
    pub db: Arc<RelationalDb>,
    /// Resume documents.
    pub profiles: Arc<DocumentStore>,
    /// Title taxonomy graph.
    pub taxonomy: Arc<PropertyGraph>,
    /// Key-value store (session state, caches).
    pub kv: Arc<KvStore>,
    /// Generation parameters.
    pub config: HrConfig,
}

impl HrDataset {
    /// Generates the dataset deterministically from the config seed.
    pub fn generate(config: HrConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let db = Arc::new(RelationalDb::new());

        // Companies.
        db.create_table(
            "companies",
            Schema::new(vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("size", ColumnType::Int),
            ])
            .expect("companies schema"),
        )
        .expect("create companies");
        for i in 0..config.companies {
            let size = match rng.gen_range(0..3) {
                0 => rng.gen_range(10..200),
                1 => rng.gen_range(200..5_000),
                _ => rng.gen_range(5_000..100_000),
            };
            db.insert_row(
                "companies",
                vec![
                    Datum::Int(i as i64 + 1),
                    Datum::Text(format!("company-{}", i + 1)),
                    Datum::Int(size),
                ],
            )
            .expect("insert company");
        }

        // Jobs.
        db.create_table(
            "jobs",
            Schema::new(vec![
                Column::new("id", ColumnType::Int),
                Column::new("title", ColumnType::Text),
                Column::new("city", ColumnType::Text),
                Column::new("salary", ColumnType::Float),
                Column::new("company_id", ColumnType::Int),
                Column::new("remote", ColumnType::Bool),
            ])
            .expect("jobs schema"),
        )
        .expect("create jobs");
        for i in 0..config.jobs {
            let title = weighted(&mut rng, &TITLES);
            let city = weighted(&mut rng, &CITIES);
            let base = match title {
                "data scientist" => 170_000.0,
                "machine learning engineer" => 185_000.0,
                "research scientist" => 175_000.0,
                "data engineer" => 160_000.0,
                "software engineer" => 165_000.0,
                "data analyst" => 115_000.0,
                "statistician" => 125_000.0,
                _ => 95_000.0,
            };
            let salary: f64 = base * rng.gen_range(0.85..1.25);
            db.insert_row(
                "jobs",
                vec![
                    Datum::Int(i as i64 + 1),
                    Datum::Text(title.to_string()),
                    Datum::Text(city.to_string()),
                    Datum::Float((salary / 100.0).round() * 100.0),
                    Datum::Int(rng.gen_range(1..=config.companies as i64)),
                    Datum::Bool(rng.gen_bool(0.3)),
                ],
            )
            .expect("insert job");
        }
        db.create_index("jobs", "city").expect("index jobs.city");
        db.create_index("jobs", "title").expect("index jobs.title");

        // Applicants (relational projection of the resume documents).
        db.create_table(
            "applicants",
            Schema::new(vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("city", ColumnType::Text),
                Column::new("title", ColumnType::Text),
                Column::new("skills", ColumnType::Text),
                Column::new("experience", ColumnType::Int),
            ])
            .expect("applicants schema"),
        )
        .expect("create applicants");
        let profiles = Arc::new(DocumentStore::new());
        for i in 0..config.applicants {
            let title = weighted(&mut rng, &TITLES);
            let city = weighted(&mut rng, &CITIES);
            let experience = rng.gen_range(0..20i64);
            let n_skills = rng.gen_range(2..6usize);
            let mut skills: Vec<&str> = Vec::new();
            while skills.len() < n_skills {
                let s = SKILLS[rng.gen_range(0..SKILLS.len())];
                if !skills.contains(&s) {
                    skills.push(s);
                }
            }
            let name = format!("applicant-{}", i + 1);
            db.insert_row(
                "applicants",
                vec![
                    Datum::Int(i as i64 + 1),
                    Datum::Text(name.clone()),
                    Datum::Text(city.to_string()),
                    Datum::Text(title.to_string()),
                    Datum::Text(skills.join(", ")),
                    Datum::Int(experience),
                ],
            )
            .expect("insert applicant");
            profiles
                .put(
                    format!("profile-{}", i + 1),
                    json!({
                        "name": name,
                        "title": title,
                        "city": city,
                        "skills": skills,
                        "experience_years": experience,
                        "summary": format!(
                            "{title} in {city} with {experience} years of experience in {}",
                            skills.join(", ")
                        ),
                    }),
                )
                .expect("store profile");
        }

        // Applications.
        db.create_table(
            "applications",
            Schema::new(vec![
                Column::new("id", ColumnType::Int),
                Column::new("job_id", ColumnType::Int),
                Column::new("applicant_id", ColumnType::Int),
                Column::new("status", ColumnType::Text),
            ])
            .expect("applications schema"),
        )
        .expect("create applications");
        const STATUSES: [(&str, u32); 4] = [
            ("applied", 50),
            ("screening", 25),
            ("interview", 15),
            ("offer", 10),
        ];
        for i in 0..config.applications {
            db.insert_row(
                "applications",
                vec![
                    Datum::Int(i as i64 + 1),
                    Datum::Int(rng.gen_range(1..=config.jobs.max(1) as i64)),
                    Datum::Int(rng.gen_range(1..=config.applicants.max(1) as i64)),
                    Datum::Text(weighted(&mut rng, &STATUSES).to_string()),
                ],
            )
            .expect("insert application");
        }
        db.create_index("applications", "job_id")
            .expect("index applications.job_id");

        // Title taxonomy.
        let taxonomy = Arc::new(PropertyGraph::new());
        for (title, _) in TITLES {
            taxonomy
                .add_node(slug(title), "title", json!({ "name": title }))
                .expect("taxonomy node");
        }
        for (a, b, e) in [
            ("machine-learning-engineer", "data-scientist", "related_to"),
            ("data-analyst", "data-scientist", "specializes_into"),
            ("data-scientist", "research-scientist", "related_to"),
            ("statistician", "data-scientist", "synonym_of"),
            ("data-engineer", "software-engineer", "related_to"),
        ] {
            taxonomy.add_edge(a, b, e).expect("taxonomy edge");
        }

        HrDataset {
            db,
            profiles,
            taxonomy,
            kv: Arc::new(KvStore::new()),
            config,
        }
    }

    /// Registers every asset in a data registry (the Fig 5 catalog).
    pub fn register_assets(&self, registry: &DataRegistry) -> blueprint_registry::Result<()> {
        registry.register(DataAsset::new(
            "hr-lakehouse",
            "YourJourney HR lakehouse",
            DataLevel::Lakehouse,
            DataModality::Relational,
        ))?;
        registry.register(
            DataAsset::new(
                "hr-db",
                "HR relational database with job posting, company, applicant, and application data",
                DataLevel::Database,
                DataModality::Relational,
            )
            .with_parent("hr-lakehouse")
            .with_connection("sql://hr"),
        )?;
        registry.register(
            DataAsset::new(
                "jobs",
                "job postings with title, city, salary, company, remote flag",
                DataLevel::Collection,
                DataModality::Relational,
            )
            .with_parent("hr-db")
            .with_field(FieldMeta::new("title", "text", "job title"))
            .with_field(FieldMeta::new("city", "text", "job location city"))
            .with_field(FieldMeta::new("salary", "float", "annual salary"))
            .with_index("city")
            .with_index("title")
            .with_stats(self.db.row_count("jobs") as u64, 0)
            .with_connection("sql://hr/jobs"),
        )?;
        registry.register(
            DataAsset::new(
                "applicants",
                "applicant records with name, city, title, skills, experience",
                DataLevel::Collection,
                DataModality::Relational,
            )
            .with_parent("hr-db")
            .with_field(FieldMeta::new("skills", "text", "comma separated skills"))
            .with_stats(self.db.row_count("applicants") as u64, 0)
            .with_connection("sql://hr/applicants"),
        )?;
        registry.register(
            DataAsset::new(
                "applications",
                "applications linking applicants to job postings with status",
                DataLevel::Collection,
                DataModality::Relational,
            )
            .with_parent("hr-db")
            .with_index("job_id")
            .with_stats(self.db.row_count("applications") as u64, 0)
            .with_connection("sql://hr/applications"),
        )?;
        registry.register(
            DataAsset::new(
                "profiles",
                "job seeker resume documents with skills and experience summaries",
                DataLevel::Collection,
                DataModality::Document,
            )
            .with_parent("hr-db")
            .with_stats(self.profiles.len() as u64, 0)
            .with_connection("doc://hr/profiles"),
        )?;
        registry.register(
            DataAsset::new(
                "title-taxonomy",
                "graph of job title relationships and synonyms",
                DataLevel::Collection,
                DataModality::Graph,
            )
            .with_parent("hr-db")
            .with_stats(self.taxonomy.node_count() as u64, 0)
            .with_connection("graph://hr/titles"),
        )?;
        registry.register(DataAsset::new(
            "gpt-knowledge",
            "general world knowledge from a large language model such as cities in a region",
            DataLevel::Collection,
            DataModality::Parametric,
        ))?;
        Ok(())
    }
}

/// Slugifies a title into a taxonomy node id.
pub fn slug(title: &str) -> String {
    title
        .to_lowercase()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join("-")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HrDataset {
        HrDataset::generate(HrConfig {
            seed: 7,
            jobs: 50,
            applicants: 40,
            companies: 5,
            applications: 80,
        })
    }

    #[test]
    fn generation_respects_config_sizes() {
        let d = small();
        assert_eq!(d.db.row_count("jobs"), 50);
        assert_eq!(d.db.row_count("applicants"), 40);
        assert_eq!(d.db.row_count("companies"), 5);
        assert_eq!(d.db.row_count("applications"), 80);
        assert_eq!(d.profiles.len(), 40);
        assert_eq!(d.taxonomy.node_count(), TITLES.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        let qa =
            a.db.execute("SELECT * FROM jobs ORDER BY id LIMIT 5")
                .unwrap();
        let qb =
            b.db.execute("SELECT * FROM jobs ORDER BY id LIMIT 5")
                .unwrap();
        assert_eq!(qa, qb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = HrDataset::generate(HrConfig {
            seed: 8,
            ..a.config
        });
        let qa = a.db.execute("SELECT * FROM jobs ORDER BY id").unwrap();
        let qb = b.db.execute("SELECT * FROM jobs ORDER BY id").unwrap();
        assert_ne!(qa, qb);
    }

    #[test]
    fn titles_are_skewed_toward_data_roles() {
        let d = HrDataset::generate(HrConfig::default());
        let r =
            d.db.execute("SELECT COUNT(*) FROM jobs WHERE title = 'data scientist'")
                .unwrap();
        let ds = match r.rows[0][0] {
            Datum::Int(n) => n,
            _ => 0,
        };
        let r2 =
            d.db.execute("SELECT COUNT(*) FROM jobs WHERE title = 'statistician'")
                .unwrap();
        let stat = match r2.rows[0][0] {
            Datum::Int(n) => n,
            _ => 0,
        };
        assert!(ds > stat);
    }

    #[test]
    fn indices_exist_for_hot_columns() {
        let d = small();
        // Index probes should agree with full scans.
        let by_index =
            d.db.execute("SELECT COUNT(*) FROM jobs WHERE city = 'san francisco'")
                .unwrap();
        assert!(matches!(by_index.rows[0][0], Datum::Int(_)));
    }

    #[test]
    fn profiles_are_searchable() {
        let d = small();
        let hits = d.profiles.search("python machine learning", 5);
        assert!(!hits.is_empty());
    }

    #[test]
    fn taxonomy_expands_data_scientist() {
        let d = small();
        let related = d
            .taxonomy
            .traverse("data-scientist", None, 1, true)
            .unwrap();
        assert!(related.iter().any(|n| n.id == "machine-learning-engineer"));
        assert!(related.iter().any(|n| n.id == "statistician"));
    }

    #[test]
    fn assets_register_into_catalog() {
        let d = small();
        let registry = DataRegistry::new();
        d.register_assets(&registry).unwrap();
        assert_eq!(registry.len(), 8);
        let hits = registry.discover("job postings with title and city", None, 3);
        assert_eq!(hits[0].name, "jobs");
        let chain = registry.ancestry("jobs").unwrap();
        assert_eq!(chain.len(), 3);
    }

    #[test]
    fn slug_formats() {
        assert_eq!(slug("Data Scientist"), "data-scientist");
        assert_eq!(
            slug("machine learning engineer"),
            "machine-learning-engineer"
        );
    }

    #[test]
    fn salaries_are_positive_and_plausible() {
        let d = small();
        let r =
            d.db.execute("SELECT MIN(salary), MAX(salary) FROM jobs")
                .unwrap();
        let min = r.rows[0][0].as_f64().unwrap();
        let max = r.rows[0][1].as_f64().unwrap();
        assert!(min > 50_000.0);
        assert!(max < 300_000.0);
    }
}
