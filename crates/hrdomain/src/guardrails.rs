//! Guardrail modules: content moderation and fact verification.
//!
//! The paper's related work (§III-A) singles out "verification,
//! summarization, explanation, and self-reflection modules", and YourJourney
//! is explicitly "considering developing modules for content moderation and
//! explanation" (§II). These are exactly the kind of components the
//! architecture makes pluggable: both guardrails below are ordinary agents
//! — registered, discoverable, and insertable into any plan.

use std::sync::Arc;

use serde_json::{json, Value};

use blueprint_agents::{
    AgentContext, AgentFactory, AgentSpec, CostProfile, DataType, FnProcessor, Inputs, Outputs,
    ParamSpec, Processor,
};
use blueprint_registry::AgentRegistry;

/// A moderation finding.
#[derive(Debug, Clone, PartialEq)]
pub struct ModerationVerdict {
    /// Whether the content may pass.
    pub allowed: bool,
    /// Why not (empty when allowed).
    pub reasons: Vec<String>,
}

/// Terms the deterministic moderator blocks (stand-in for a trained
/// moderation model; the categories mirror common policy families).
const BLOCKLIST: [(&str, &str); 6] = [
    ("ssn", "personally identifiable information (SSN)"),
    (
        "social security",
        "personally identifiable information (SSN)",
    ),
    ("password", "credential exposure"),
    ("discriminate", "discriminatory hiring language"),
    ("only young", "age-discriminatory language"),
    ("salary of employee", "confidential compensation data"),
];

/// Rule-based moderation: blocklist categories + PII heuristics.
pub fn moderate(text: &str) -> ModerationVerdict {
    let lower = text.to_lowercase();
    let mut reasons = Vec::new();
    for (term, category) in BLOCKLIST {
        if lower.contains(term) {
            reasons.push(category.to_string());
        }
    }
    // Email-address heuristic.
    if lower
        .split_whitespace()
        .any(|w| w.contains('@') && w.contains('.'))
    {
        reasons.push("personally identifiable information (email)".to_string());
    }
    // Long digit runs (phone/SSN-like).
    let digit_run = lower
        .chars()
        .fold((0usize, 0usize), |(run, max), c| {
            if c.is_ascii_digit() {
                (run + 1, max.max(run + 1))
            } else {
                (0, max)
            }
        })
        .1;
    if digit_run >= 9 {
        reasons.push("personally identifiable information (long number)".to_string());
    }
    reasons.dedup();
    ModerationVerdict {
        allowed: reasons.is_empty(),
        reasons,
    }
}

/// Fact verification: checks that every count claimed in a summary
/// ("returned N rows", "N applicants", ...) is consistent with the rows it
/// allegedly summarizes. The self-checking module of §III-A, grounded in
/// data instead of a second LLM opinion.
pub fn verify_counts(claim: &str, rows: &Value) -> (bool, String) {
    let n = rows.as_array().map(Vec::len).unwrap_or(0);
    let claimed: Vec<usize> = claim
        .split(|c: char| !c.is_ascii_digit())
        .filter(|t| !t.is_empty() && t.len() < 7)
        .filter_map(|t| t.parse().ok())
        .collect();
    if claimed.is_empty() {
        // No numeric claims to check.
        return (true, "no numeric claims found".to_string());
    }
    if claimed.contains(&n) {
        (
            true,
            format!("claimed count {n} matches the {n} source rows"),
        )
    } else {
        (
            false,
            format!("claim mentions {:?} but the source has {n} rows", claimed),
        )
    }
}

/// Registers both guardrails as agents. Returns their names.
pub fn register_guardrails(
    factory: &AgentFactory,
    registry: &AgentRegistry,
) -> blueprint_agents::Result<Vec<String>> {
    let mut names = Vec::new();

    // ── CONTENT MODERATOR ────────────────────────────────────────────────
    let spec = AgentSpec::new(
        "content-moderator",
        "moderate content for policy violations and personally identifiable information",
    )
    .with_input(ParamSpec::required(
        "text",
        "the content to check",
        DataType::Text,
    ))
    .with_output(ParamSpec::required(
        "verdict",
        "allowed flag with violation reasons",
        DataType::Json,
    ))
    .with_profile(CostProfile::new(0.05, 10_000, 0.97));
    let proc: Arc<dyn Processor> =
        Arc::new(FnProcessor::new(|inputs: &Inputs, ctx: &AgentContext| {
            let text = inputs.require_str("text")?;
            ctx.charge_cost(0.01);
            ctx.charge_latency_micros(2_000);
            let verdict = moderate(text);
            Ok(Outputs::new().with(
                "verdict",
                json!({"allowed": verdict.allowed, "reasons": verdict.reasons}),
            ))
        }));
    factory.register(spec.clone(), proc)?;
    registry
        .register(spec)
        .map_err(|e| blueprint_agents::AgentError::InvalidSpec(e.to_string()))?;
    names.push("content-moderator".to_string());

    // ── FACT VERIFIER ────────────────────────────────────────────────────
    let spec = AgentSpec::new(
        "fact-verifier",
        "verify that numeric claims in a summary are supported by the source rows",
    )
    .with_input(ParamSpec::required(
        "claim",
        "the summary text to verify",
        DataType::Text,
    ))
    .with_input(ParamSpec::required(
        "rows",
        "the source rows",
        DataType::Table,
    ))
    .with_output(ParamSpec::required(
        "verdict",
        "supported flag with an explanation",
        DataType::Json,
    ))
    .with_profile(CostProfile::new(0.1, 20_000, 0.95));
    let proc: Arc<dyn Processor> =
        Arc::new(FnProcessor::new(|inputs: &Inputs, ctx: &AgentContext| {
            let claim = inputs.require_str("claim")?;
            let rows = inputs.require("rows")?;
            ctx.charge_cost(0.02);
            ctx.charge_latency_micros(3_000);
            let (supported, explanation) = verify_counts(claim, rows);
            Ok(Outputs::new().with(
                "verdict",
                json!({"supported": supported, "explanation": explanation}),
            ))
        }));
    factory.register(spec.clone(), proc)?;
    registry
        .register(spec)
        .map_err(|e| blueprint_agents::AgentError::InvalidSpec(e.to_string()))?;
    names.push("fact-verifier".to_string());

    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_streams::StreamStore;

    #[test]
    fn clean_text_passes_moderation() {
        let v = moderate("I am looking for a data scientist position in SF bay area.");
        assert!(v.allowed);
        assert!(v.reasons.is_empty());
    }

    #[test]
    fn blocklist_terms_are_flagged() {
        let v = moderate("please share the candidate's social security number");
        assert!(!v.allowed);
        assert!(v.reasons.iter().any(|r| r.contains("SSN")));
    }

    #[test]
    fn email_and_long_numbers_are_pii() {
        let v = moderate("contact ada@example.com");
        assert!(!v.allowed);
        assert!(v.reasons.iter().any(|r| r.contains("email")));
        let v2 = moderate("call 4155551234567 now");
        assert!(!v2.allowed);
        assert!(v2.reasons.iter().any(|r| r.contains("long number")));
        // Short numbers are fine.
        assert!(moderate("job id 42 looks good").allowed);
    }

    #[test]
    fn discriminatory_language_flagged() {
        assert!(!moderate("we only young candidates please").allowed);
    }

    #[test]
    fn verify_counts_matches() {
        let rows = json!([{"a":1},{"a":2},{"a":3}]);
        let (ok, why) = verify_counts("The query returned 3 rows.", &rows);
        assert!(ok, "{why}");
        let (bad, why) = verify_counts("The query returned 5 rows.", &rows);
        assert!(!bad);
        assert!(why.contains("source has 3 rows"));
    }

    #[test]
    fn verify_counts_without_numbers_passes() {
        let (ok, why) = verify_counts("Several strong candidates applied.", &json!([{}]));
        assert!(ok);
        assert!(why.contains("no numeric claims"));
    }

    #[test]
    fn verify_counts_ignores_huge_numbers() {
        // Salaries etc. (≥ 7 digits) are not row-count claims.
        let (ok, _) = verify_counts("avg salary 17059814 across 2 rows", &json!([{}, {}]));
        assert!(ok);
    }

    #[test]
    fn guardrail_agents_register_and_run() {
        let store = StreamStore::new();
        let factory = AgentFactory::new(store);
        let registry = AgentRegistry::new();
        let names = register_guardrails(&factory, &registry).unwrap();
        assert_eq!(names, ["content-moderator", "fact-verifier"]);

        let id = factory.spawn("content-moderator", "s").unwrap();
        let out = factory
            .with_instance(id, |h| {
                h.host()
                    .execute_now(Inputs::new().with("text", json!("share the password please")))
            })
            .unwrap()
            .unwrap();
        assert_eq!(out.get("verdict").unwrap()["allowed"], json!(false));

        let vid = factory.spawn("fact-verifier", "s").unwrap();
        let out = factory
            .with_instance(vid, |h| {
                h.host().execute_now(
                    Inputs::new()
                        .with("claim", json!("2 rows returned"))
                        .with("rows", json!([{"x":1},{"x":2}])),
                )
            })
            .unwrap()
            .unwrap();
        assert_eq!(out.get("verdict").unwrap()["supported"], json!(true));
    }

    #[test]
    fn guardrails_are_discoverable_for_planning() {
        let store = StreamStore::new();
        let factory = AgentFactory::new(store);
        let registry = AgentRegistry::new();
        register_guardrails(&factory, &registry).unwrap();
        let hits = registry.search("moderate content for policy violations", 1);
        assert_eq!(hits[0].name, "content-moderator");
        let hits = registry.search("verify numeric claims in a summary", 1);
        assert_eq!(hits[0].name, "fact-verifier");
    }
}
