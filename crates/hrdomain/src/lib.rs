//! # blueprint-hrdomain
//!
//! The YourJourney HR company of the paper's §II: seeded synthetic data
//! (job postings, companies, applicants, applications, resume documents,
//! and the title taxonomy) plus the agent suite both scenarios use —
//! PROFILER, JOB MATCHER, PRESENTER for Career Assistance (§II-A) and
//! INTENT CLASSIFIER, NL2Q, SQL EXECUTOR, QUERY SUMMARIZER, SUMMARIZER,
//! and AGENTIC EMPLOYER for the Agentic Employer case study (§VI).

pub mod agents;
pub mod data;
pub mod guardrails;
pub mod matcher;

pub use agents::{register_hr_agents, HrAgents};
pub use data::{HrConfig, HrDataset};
pub use guardrails::{moderate, register_guardrails, verify_counts, ModerationVerdict};
pub use matcher::{match_score, rank_jobs, JobMatch};
