//! The JOB MATCHER's predictive model.
//!
//! Stands in for YourJourney's trained matching/ranking models (§II): a
//! transparent linear scorer over title affinity (with taxonomy-aware
//! partial credit), location, skills overlap, and seniority fit. Being
//! deterministic, its behavior is exactly reproducible in tests and benches.

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// One scored job for a profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMatch {
    /// The job row (JSON object).
    pub job: Value,
    /// Match score in `[0, 1]`.
    pub score: f64,
    /// Human-readable score breakdown (the paper's explanation modules).
    pub explanation: String,
}

fn text_of<'v>(obj: &'v Value, key: &str) -> Option<&'v str> {
    obj.get(key).and_then(Value::as_str)
}

fn list_of(obj: &Value, key: &str) -> Vec<String> {
    match obj.get(key) {
        Some(Value::Array(items)) => items
            .iter()
            .filter_map(Value::as_str)
            .map(str::to_lowercase)
            .collect(),
        Some(Value::String(s)) => s
            .split(',')
            .map(|t| t.trim().to_lowercase())
            .filter(|t| !t.is_empty())
            .collect(),
        _ => Vec::new(),
    }
}

/// Scores one job against a profile. `related_titles` (e.g. from the
/// taxonomy) earn partial title credit.
pub fn match_score(profile: &Value, job: &Value, related_titles: &[String]) -> (f64, String) {
    let mut score = 0.0;
    let mut parts = Vec::new();

    // Title: exact 0.4, related 0.25.
    let want = text_of(profile, "title").unwrap_or_default().to_lowercase();
    let have = text_of(job, "title").unwrap_or_default().to_lowercase();
    if !want.is_empty() && want == have {
        score += 0.4;
        parts.push("exact title match (+0.40)".to_string());
    } else if related_titles.iter().any(|t| t.to_lowercase() == have) {
        score += 0.25;
        parts.push(format!("related title {have} (+0.25)"));
    }

    // Location: same city 0.3, remote 0.2.
    let want_city = text_of(profile, "city").unwrap_or_default().to_lowercase();
    let job_city = text_of(job, "city").unwrap_or_default().to_lowercase();
    if !want_city.is_empty() && want_city == job_city {
        score += 0.3;
        parts.push("same city (+0.30)".to_string());
    } else if job.get("remote").and_then(Value::as_bool) == Some(true) {
        score += 0.2;
        parts.push("remote role (+0.20)".to_string());
    }

    // Skills: up to 0.2 by overlap fraction with the role's expectations
    // (approximated by the profile's own skills appearing in the job title
    // domain; without job skill data, overlap with the profile's declared
    // skills count is a proxy for completeness).
    let skills = list_of(profile, "skills");
    if !skills.is_empty() {
        let credit = 0.2 * (skills.len().min(5) as f64 / 5.0);
        score += credit;
        parts.push(format!("{} skills (+{credit:.2})", skills.len()));
    }

    // Seniority fit: up to 0.1 (peaks at 5+ years).
    let years = profile
        .get("experience_years")
        .and_then(Value::as_i64)
        .unwrap_or(0);
    let credit = 0.1 * (years.min(5) as f64 / 5.0);
    if credit > 0.0 {
        score += credit;
        parts.push(format!("{years}y experience (+{credit:.2})"));
    }

    (score.min(1.0), parts.join(", "))
}

/// Ranks jobs for a profile, best first; ties break by job id for
/// determinism. `limit` caps the result.
pub fn rank_jobs(
    profile: &Value,
    jobs: &[Value],
    related_titles: &[String],
    limit: usize,
) -> Vec<JobMatch> {
    let mut scored: Vec<JobMatch> = jobs
        .iter()
        .map(|job| {
            let (score, explanation) = match_score(profile, job, related_titles);
            JobMatch {
                job: job.clone(),
                score,
                explanation,
            }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                let ida = a.job.get("id").and_then(Value::as_i64).unwrap_or(0);
                let idb = b.job.get("id").and_then(Value::as_i64).unwrap_or(0);
                ida.cmp(&idb)
            })
    });
    scored.truncate(limit);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn profile() -> Value {
        json!({
            "title": "data scientist",
            "city": "san francisco",
            "skills": ["python", "sql", "statistics"],
            "experience_years": 6,
        })
    }

    #[test]
    fn exact_title_and_city_score_highest() {
        let job = json!({"id": 1, "title": "data scientist", "city": "san francisco"});
        let (score, explanation) = match_score(&profile(), &job, &[]);
        assert!(score > 0.8);
        assert!(explanation.contains("exact title"));
        assert!(explanation.contains("same city"));
    }

    #[test]
    fn related_title_gets_partial_credit() {
        let related = vec!["machine learning engineer".to_string()];
        let job = json!({"id": 2, "title": "machine learning engineer", "city": "san francisco"});
        let (with_rel, _) = match_score(&profile(), &job, &related);
        let (without_rel, _) = match_score(&profile(), &job, &[]);
        assert!(with_rel > without_rel);
    }

    #[test]
    fn remote_compensates_for_location() {
        let remote = json!({"id": 3, "title": "data scientist", "city": "austin", "remote": true});
        let onsite = json!({"id": 4, "title": "data scientist", "city": "austin", "remote": false});
        let (r, _) = match_score(&profile(), &remote, &[]);
        let (o, _) = match_score(&profile(), &onsite, &[]);
        assert!(r > o);
    }

    #[test]
    fn skills_string_form_parses() {
        let p = json!({"title": "x", "skills": "python, sql"});
        let job = json!({"id": 5, "title": "y", "city": "z"});
        let (score, explanation) = match_score(&p, &job, &[]);
        assert!(score > 0.0);
        assert!(explanation.contains("2 skills"));
    }

    #[test]
    fn rank_orders_and_limits() {
        let jobs = vec![
            json!({"id": 1, "title": "recruiter", "city": "boston"}),
            json!({"id": 2, "title": "data scientist", "city": "san francisco"}),
            json!({"id": 3, "title": "data scientist", "city": "austin"}),
        ];
        let ranked = rank_jobs(&profile(), &jobs, &[], 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].job["id"], json!(2));
        assert_eq!(ranked[1].job["id"], json!(3));
    }

    #[test]
    fn ties_break_by_id() {
        let jobs = vec![
            json!({"id": 9, "title": "data scientist", "city": "san francisco"}),
            json!({"id": 3, "title": "data scientist", "city": "san francisco"}),
        ];
        let ranked = rank_jobs(&profile(), &jobs, &[], 10);
        assert_eq!(ranked[0].job["id"], json!(3));
    }

    #[test]
    fn empty_profile_scores_low_not_panicking() {
        let job = json!({"id": 1, "title": "data scientist", "city": "sf"});
        let (score, _) = match_score(&json!({}), &job, &[]);
        assert!(score < 0.3);
    }

    #[test]
    fn score_is_capped_at_one() {
        let job =
            json!({"id": 1, "title": "data scientist", "city": "san francisco", "remote": true});
        let (score, _) = match_score(&profile(), &job, &[]);
        assert!(score <= 1.0);
    }
}
