//! The data registry: mapping enterprise data (§V-D, Fig 5).
//!
//! Assets are registered at several granularity levels (lakehouse → lake →
//! source system → database → table/collection → column) across modalities
//! (relational, document, graph, key-value, and *parametric* — an LLM used
//! as a data source, as in the paper's "cities in the SF bay area" example).
//! Each asset carries schema, connection details, statistics, available
//! indices, and a learned representation; query logs feed enhanced
//! embeddings exactly as in the agent registry.

use std::collections::HashMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::embedding::{embed_text, Embedding};
use crate::error::RegistryError;
use crate::search::{rank_entries, SearchHit};
use crate::Result;

/// Granularity level of a data asset (Fig 5's hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataLevel {
    /// Top-level lakehouse.
    Lakehouse,
    /// A data lake within the lakehouse.
    Lake,
    /// A source system feeding the lake.
    SourceSystem,
    /// A database within a source system.
    Database,
    /// A table, document collection, graph, or KV namespace.
    Collection,
    /// A column/field within a collection.
    Column,
}

/// Modality of the underlying data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataModality {
    /// Relational tables.
    Relational,
    /// Document collections.
    Document,
    /// Property graphs (e.g. the title taxonomy).
    Graph,
    /// Key-value stores.
    KeyValue,
    /// Parametric knowledge in a model (an LLM as a data source).
    Parametric,
}

/// Schema information for one field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldMeta {
    /// Field/column name.
    pub name: String,
    /// Type name (`text`, `int`, `float`, ...).
    pub type_name: String,
    /// Description used for discovery.
    pub description: String,
}

impl FieldMeta {
    /// Creates a field description.
    pub fn new(
        name: impl Into<String>,
        type_name: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        FieldMeta {
            name: name.into(),
            type_name: type_name.into(),
            description: description.into(),
        }
    }
}

/// Size/statistics metadata consumed by the data planner's optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DataStats {
    /// Row/document/node count.
    pub rows: u64,
    /// Approximate size in bytes.
    pub bytes: u64,
}

/// A registered data asset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataAsset {
    /// Unique asset name (e.g. `jobs`, `hr-db`, `profiles`).
    pub name: String,
    /// Natural-language description.
    pub description: String,
    /// Granularity level.
    pub level: DataLevel,
    /// Modality.
    pub modality: DataModality,
    /// Parent asset name in the hierarchy (None for roots).
    pub parent: Option<String>,
    /// Schema fields (tables/collections) or empty.
    pub schema: Vec<FieldMeta>,
    /// Connection string / locator understood by the datastore layer.
    pub connection: String,
    /// Indices available on this asset (names of indexed fields).
    pub indices: Vec<String>,
    /// Statistics for optimization.
    pub stats: DataStats,
    /// Governance (§VII): agents allowed to discover/use this asset.
    /// Empty means public. Serialized with a default for compatibility.
    #[serde(default)]
    pub restricted_to: Vec<String>,
}

impl DataAsset {
    /// Creates a minimal asset.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        level: DataLevel,
        modality: DataModality,
    ) -> Self {
        DataAsset {
            name: name.into(),
            description: description.into(),
            level,
            modality,
            parent: None,
            schema: Vec::new(),
            connection: String::new(),
            indices: Vec::new(),
            stats: DataStats::default(),
            restricted_to: Vec::new(),
        }
    }

    /// Builder-style: sets the parent.
    pub fn with_parent(mut self, parent: impl Into<String>) -> Self {
        self.parent = Some(parent.into());
        self
    }

    /// Builder-style: adds a schema field.
    pub fn with_field(mut self, field: FieldMeta) -> Self {
        self.schema.push(field);
        self
    }

    /// Builder-style: sets the connection locator.
    pub fn with_connection(mut self, connection: impl Into<String>) -> Self {
        self.connection = connection.into();
        self
    }

    /// Builder-style: declares an index.
    pub fn with_index(mut self, field: impl Into<String>) -> Self {
        self.indices.push(field.into());
        self
    }

    /// Builder-style: sets statistics.
    pub fn with_stats(mut self, rows: u64, bytes: u64) -> Self {
        self.stats = DataStats { rows, bytes };
        self
    }

    /// Builder-style: restricts the asset to the named agents (governance).
    pub fn restricted_to<I, S>(mut self, agents: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.restricted_to = agents.into_iter().map(Into::into).collect();
        self
    }

    /// True if the principal may see this asset. `None` is the omniscient
    /// administrator view.
    pub fn accessible_by(&self, principal: Option<&str>) -> bool {
        match principal {
            None => true,
            Some(p) => self.restricted_to.is_empty() || self.restricted_to.iter().any(|a| a == p),
        }
    }

    /// Text used to derive the asset's representation: name, description,
    /// and schema (the paper embeds schema details and values too).
    fn embedding_text(&self) -> String {
        let mut text = format!("{} {}", self.name, self.description);
        for f in &self.schema {
            text.push(' ');
            text.push_str(&f.name);
            text.push(' ');
            text.push_str(&f.description);
        }
        text
    }
}

#[derive(Debug, Clone)]
struct AssetEntry {
    asset: DataAsset,
    embedding: Embedding,
    usage_count: u64,
    usage_queries: Vec<String>,
}

const MAX_USAGE_QUERIES: usize = 32;

/// Thread-safe registry of data assets.
#[derive(Default)]
pub struct DataRegistry {
    entries: RwLock<HashMap<String, AssetEntry>>,
}

impl DataRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an asset. The parent, if named, must already exist.
    pub fn register(&self, asset: DataAsset) -> Result<()> {
        if asset.name.trim().is_empty() {
            return Err(RegistryError::Invalid("empty asset name".into()));
        }
        let mut entries = self.entries.write();
        if entries.contains_key(&asset.name) {
            return Err(RegistryError::Duplicate(asset.name));
        }
        if let Some(parent) = &asset.parent {
            if !entries.contains_key(parent) {
                return Err(RegistryError::Invalid(format!(
                    "parent asset not registered: {parent}"
                )));
            }
        }
        let embedding = embed_text(&asset.embedding_text());
        entries.insert(
            asset.name.clone(),
            AssetEntry {
                asset,
                embedding,
                usage_count: 0,
                usage_queries: Vec::new(),
            },
        );
        Ok(())
    }

    /// Fetches an asset by name.
    pub fn get(&self, name: &str) -> Result<DataAsset> {
        self.entries
            .read()
            .get(name)
            .map(|e| e.asset.clone())
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// True if the asset exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.read().contains_key(name)
    }

    /// Removes an asset (children keep their dangling parent reference —
    /// the enterprise catalog problem the paper flags as open research).
    pub fn unregister(&self, name: &str) -> Result<()> {
        self.entries
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// All asset names, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Assets at a given level, sorted by name.
    pub fn list_level(&self, level: DataLevel) -> Vec<DataAsset> {
        let mut assets: Vec<DataAsset> = self
            .entries
            .read()
            .values()
            .filter(|e| e.asset.level == level)
            .map(|e| e.asset.clone())
            .collect();
        assets.sort_by(|a, b| a.name.cmp(&b.name));
        assets
    }

    /// Direct children of an asset, sorted by name.
    pub fn children(&self, parent: &str) -> Vec<DataAsset> {
        let mut assets: Vec<DataAsset> = self
            .entries
            .read()
            .values()
            .filter(|e| e.asset.parent.as_deref() == Some(parent))
            .map(|e| e.asset.clone())
            .collect();
        assets.sort_by(|a, b| a.name.cmp(&b.name));
        assets
    }

    /// Walks up the hierarchy from an asset to its root.
    pub fn ancestry(&self, name: &str) -> Result<Vec<DataAsset>> {
        let entries = self.entries.read();
        let mut chain = Vec::new();
        let mut current = Some(name.to_string());
        while let Some(n) = current {
            let entry = entries
                .get(&n)
                .ok_or_else(|| RegistryError::NotFound(n.clone()))?;
            chain.push(entry.asset.clone());
            current = entry.asset.parent.clone();
            if chain.len() > entries.len() {
                return Err(RegistryError::Invalid("parent cycle detected".into()));
            }
        }
        Ok(chain)
    }

    /// Number of registered assets.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True if no assets are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Hybrid search, optionally restricted to a modality (a data planner
    /// looking for graph data passes `Some(DataModality::Graph)`).
    /// Administrator view: sees every asset regardless of governance.
    pub fn discover(
        &self,
        query: &str,
        modality: Option<DataModality>,
        limit: usize,
    ) -> Vec<SearchHit> {
        self.discover_for(None, query, modality, limit)
    }

    /// Governed discovery (§VII): the principal (an agent name) only sees
    /// public assets and assets it is explicitly granted.
    pub fn discover_for(
        &self,
        principal: Option<&str>,
        query: &str,
        modality: Option<DataModality>,
        limit: usize,
    ) -> Vec<SearchHit> {
        let entries = self.entries.read();
        let max_usage = entries
            .values()
            .map(|e| e.usage_count)
            .max()
            .unwrap_or(0)
            .max(1) as f32;
        rank_entries(
            query,
            entries
                .values()
                .filter(|e| modality.is_none_or(|m| e.asset.modality == m))
                .filter(|e| e.asset.accessible_by(principal))
                .map(|e| {
                    (
                        e.asset.name.as_str(),
                        e.asset.description.as_str(),
                        &e.embedding,
                        e.usage_count as f32 / max_usage,
                    )
                }),
            limit,
        )
    }

    /// Records that `query` was answered from `asset` (query-history
    /// embeddings, §V-D).
    pub fn record_usage(&self, asset: &str, query: &str) -> Result<()> {
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(asset)
            .ok_or_else(|| RegistryError::NotFound(asset.to_string()))?;
        entry.usage_count += 1;
        entry.usage_queries.push(query.to_string());
        if entry.usage_queries.len() > MAX_USAGE_QUERIES {
            entry.usage_queries.remove(0);
        }
        let base = embed_text(&entry.asset.embedding_text());
        let mut parts = vec![(base, 2.0f32)];
        for q in &entry.usage_queries {
            parts.push((embed_text(q), 1.0));
        }
        entry.embedding = Embedding::blend(&parts);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> DataRegistry {
        let r = DataRegistry::new();
        r.register(DataAsset::new(
            "hr-lakehouse",
            "YourJourney HR lakehouse",
            DataLevel::Lakehouse,
            DataModality::Relational,
        ))
        .unwrap();
        r.register(
            DataAsset::new(
                "hr-db",
                "HR relational database with job and application data",
                DataLevel::Database,
                DataModality::Relational,
            )
            .with_parent("hr-lakehouse"),
        )
        .unwrap();
        r.register(
            DataAsset::new(
                "jobs",
                "job postings with title, company, location, salary",
                DataLevel::Collection,
                DataModality::Relational,
            )
            .with_parent("hr-db")
            .with_field(FieldMeta::new("title", "text", "job title"))
            .with_field(FieldMeta::new("city", "text", "job location city"))
            .with_index("title")
            .with_stats(10_000, 4_000_000)
            .with_connection("sql://hr/jobs"),
        )
        .unwrap();
        r.register(
            DataAsset::new(
                "profiles",
                "job seeker profiles stored as documents with skills and experience",
                DataLevel::Collection,
                DataModality::Document,
            )
            .with_parent("hr-db")
            .with_connection("doc://hr/profiles"),
        )
        .unwrap();
        r.register(
            DataAsset::new(
                "title-taxonomy",
                "graph of job title relationships and synonyms",
                DataLevel::Collection,
                DataModality::Graph,
            )
            .with_parent("hr-db")
            .with_connection("graph://hr/titles"),
        )
        .unwrap();
        r.register(DataAsset::new(
            "gpt-knowledge",
            "general world knowledge from a large language model, e.g. cities in a region",
            DataLevel::Collection,
            DataModality::Parametric,
        ))
        .unwrap();
        r
    }

    #[test]
    fn register_and_hierarchy() {
        let r = seeded();
        assert_eq!(r.len(), 6);
        let kids = r.children("hr-db");
        let names: Vec<&str> = kids.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["jobs", "profiles", "title-taxonomy"]);
        let chain = r.ancestry("jobs").unwrap();
        let chain_names: Vec<&str> = chain.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(chain_names, ["jobs", "hr-db", "hr-lakehouse"]);
    }

    #[test]
    fn orphan_parent_rejected() {
        let r = DataRegistry::new();
        let asset = DataAsset::new("t", "d", DataLevel::Collection, DataModality::Relational)
            .with_parent("missing");
        assert!(matches!(r.register(asset), Err(RegistryError::Invalid(_))));
    }

    #[test]
    fn duplicate_and_empty_names_rejected() {
        let r = seeded();
        assert!(matches!(
            r.register(DataAsset::new(
                "jobs",
                "again",
                DataLevel::Collection,
                DataModality::Relational
            )),
            Err(RegistryError::Duplicate(_))
        ));
        assert!(r
            .register(DataAsset::new(
                " ",
                "d",
                DataLevel::Collection,
                DataModality::Relational
            ))
            .is_err());
    }

    #[test]
    fn discover_finds_jobs_table() {
        let r = seeded();
        let hits = r.discover("job postings with title and location", None, 3);
        assert_eq!(hits[0].name, "jobs");
    }

    #[test]
    fn discover_modality_filter() {
        let r = seeded();
        let hits = r.discover("job titles", Some(DataModality::Graph), 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "title-taxonomy");
    }

    #[test]
    fn parametric_source_is_discoverable() {
        let r = seeded();
        let hits = r.discover(
            "cities in the sf bay area region",
            Some(DataModality::Parametric),
            3,
        );
        assert_eq!(hits[0].name, "gpt-knowledge");
    }

    #[test]
    fn list_level_filters() {
        let r = seeded();
        let collections = r.list_level(DataLevel::Collection);
        assert_eq!(collections.len(), 4);
        assert!(r.list_level(DataLevel::Lake).is_empty());
    }

    #[test]
    fn usage_recording_boosts() {
        let r = DataRegistry::new();
        r.register(DataAsset::new(
            "a",
            "rows of numbers",
            DataLevel::Collection,
            DataModality::Relational,
        ))
        .unwrap();
        r.register(DataAsset::new(
            "b",
            "rows of numbers",
            DataLevel::Collection,
            DataModality::Relational,
        ))
        .unwrap();
        for _ in 0..4 {
            r.record_usage("b", "numbers please").unwrap();
        }
        // Repeating the historical query: the usage-boosted entry wins both
        // on the blended embedding and on the frequency prior.
        let hits = r.discover("numbers please", None, 2);
        assert_eq!(hits[0].name, "b");
    }

    #[test]
    fn unregister_and_missing_lookups() {
        let r = seeded();
        r.unregister("profiles").unwrap();
        assert!(!r.contains("profiles"));
        assert!(r.get("profiles").is_err());
        assert!(r.unregister("profiles").is_err());
        assert!(r.ancestry("ghost").is_err());
        assert!(r.record_usage("ghost", "q").is_err());
    }

    #[test]
    fn governance_restricts_discovery() {
        let r = DataRegistry::new();
        r.register(
            DataAsset::new(
                "salaries",
                "confidential employee salary records",
                DataLevel::Collection,
                DataModality::Relational,
            )
            .restricted_to(["payroll-agent"]),
        )
        .unwrap();
        r.register(DataAsset::new(
            "jobs",
            "public job postings",
            DataLevel::Collection,
            DataModality::Relational,
        ))
        .unwrap();

        // The administrator view sees everything.
        let admin = r.discover("salary records", None, 5);
        assert!(admin.iter().any(|h| h.name == "salaries"));
        // The authorized principal sees the restricted asset.
        let payroll = r.discover_for(Some("payroll-agent"), "salary records", None, 5);
        assert!(payroll.iter().any(|h| h.name == "salaries"));
        // Other agents do not.
        let other = r.discover_for(Some("job-matcher"), "salary records", None, 5);
        assert!(other.iter().all(|h| h.name != "salaries"));
        // Public assets stay visible to everyone.
        let other_jobs = r.discover_for(Some("job-matcher"), "public job postings", None, 5);
        assert!(other_jobs.iter().any(|h| h.name == "jobs"));
    }

    #[test]
    fn accessible_by_semantics() {
        let public = DataAsset::new("a", "d", DataLevel::Collection, DataModality::Relational);
        assert!(public.accessible_by(None));
        assert!(public.accessible_by(Some("anyone")));
        let restricted = public.clone().restricted_to(["alice", "bob"]);
        assert!(restricted.accessible_by(None));
        assert!(restricted.accessible_by(Some("alice")));
        assert!(!restricted.accessible_by(Some("mallory")));
    }

    #[test]
    fn asset_builders_populate_fields() {
        let a = DataAsset::new("t", "d", DataLevel::Collection, DataModality::Relational)
            .with_field(FieldMeta::new("c", "int", "count"))
            .with_connection("sql://x/t")
            .with_index("c")
            .with_stats(5, 100);
        assert_eq!(a.schema.len(), 1);
        assert_eq!(a.connection, "sql://x/t");
        assert_eq!(a.indices, ["c"]);
        assert_eq!(a.stats.rows, 5);
    }

    #[test]
    fn serde_round_trip() {
        let a = seeded().get("jobs").unwrap();
        let j = serde_json::to_string(&a).unwrap();
        let back: DataAsset = serde_json::from_str(&j).unwrap();
        assert_eq!(back, a);
    }
}
