//! # blueprint-registry
//!
//! The two *touch points* between the compound-AI system and the enterprise
//! (§V-C, §V-D): the **agent registry**, mapping existing models and APIs to
//! agents, and the **data registry**, mapping enterprise data of various
//! modalities at several granularity levels.
//!
//! Both registries store metadata, support keyword and vector search over
//! learned representations (here: deterministic hashed bag-of-words
//! embeddings), and boost rankings from historical usage logs — the
//! "enhanced embeddings" of §V-C.

pub mod agent_registry;
pub mod data_registry;
pub mod embedding;
pub mod error;
pub mod search;

pub use agent_registry::{AgentEntry, AgentRegistry, ObservedStats};
pub use data_registry::{DataAsset, DataLevel, DataModality, DataRegistry, DataStats, FieldMeta};
pub use embedding::{embed_text, Embedding, EMBED_DIM};
pub use error::RegistryError;
pub use search::{keyword_score, rank_entries, SearchHit};

/// Result alias for registry operations.
pub type Result<T> = std::result::Result<T, RegistryError>;
