//! The agent registry: mapping enterprise APIs and models to agents (§V-C).
//!
//! Stores [`AgentSpec`]s together with learned representations and usage
//! logs. Supports registration, update, derivation of new agents from
//! existing ones, keyword/vector search, and usage recording that feeds the
//! "enhanced embeddings" used for ranking.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use blueprint_agents::AgentSpec;
use blueprint_resilience::{BreakerRegistry, BreakerState};

use crate::embedding::{embed_text, Embedding};
use crate::error::RegistryError;
use crate::search::{rank_entries, SearchHit};
use crate::Result;

/// Exponentially-weighted moving averages of *observed* per-call QoS,
/// folded in from execution reports (the adaptive cost-feedback loop).
///
/// Deterministic: folds are applied in plan-node topological order after
/// each execution, so under a pinned seed the same workload always produces
/// bit-identical averages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedStats {
    /// EWMA of observed cost units per call.
    pub cost: f64,
    /// EWMA of observed latency per call (µs).
    pub latency_micros: f64,
    /// EWMA of observed (estimated-realized) accuracy per call.
    pub accuracy: f64,
    /// Number of observations folded in.
    pub samples: u64,
}

/// A registered agent: its spec plus registry-side metadata.
#[derive(Debug, Clone)]
pub struct AgentEntry {
    /// The declarative agent description.
    pub spec: AgentSpec,
    /// Representation derived from name + description (+ usage queries).
    pub embedding: Embedding,
    /// Times this agent was selected for a task.
    pub usage_count: u64,
    /// Recent queries that led to this agent (bounded log).
    pub usage_queries: Vec<String>,
    /// Learned per-call QoS averages (None until the first observation).
    pub observed: Option<ObservedStats>,
}

impl AgentEntry {
    fn new(spec: AgentSpec) -> Self {
        let embedding = embed_text(&format!("{} {}", spec.name, spec.description));
        AgentEntry {
            spec,
            embedding,
            usage_count: 0,
            usage_queries: Vec::new(),
            observed: None,
        }
    }

    /// Recomputes the embedding, folding in usage queries with weight
    /// proportional to their frequency (the paper's log-derived
    /// representations).
    fn refresh_embedding(&mut self) {
        let base = embed_text(&format!("{} {}", self.spec.name, self.spec.description));
        if self.usage_queries.is_empty() {
            self.embedding = base;
            return;
        }
        let mut parts = vec![(base, 2.0f32)];
        for q in &self.usage_queries {
            parts.push((embed_text(q), 1.0));
        }
        self.embedding = Embedding::blend(&parts);
    }
}

const MAX_USAGE_QUERIES: usize = 32;

/// Thread-safe registry of agents.
#[derive(Default)]
pub struct AgentRegistry {
    entries: RwLock<HashMap<String, AgentEntry>>,
    breakers: RwLock<Option<Arc<BreakerRegistry>>>,
}

impl AgentRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a circuit-breaker registry: searches then filter out agents
    /// whose breakers are open, so planners route around unhealthy agents.
    pub fn set_breakers(&self, breakers: Arc<BreakerRegistry>) {
        *self.breakers.write() = Some(breakers);
    }

    /// Breaker state for an agent (closed when no breakers are attached),
    /// surfaced in agent profiles for planners and operators.
    pub fn breaker_state(&self, name: &str) -> BreakerState {
        self.breakers
            .read()
            .as_ref()
            .map_or(BreakerState::Closed, |b| b.state(name))
    }

    /// Registers a new agent. Fails on duplicate names or invalid specs.
    pub fn register(&self, spec: AgentSpec) -> Result<()> {
        spec.validate()
            .map_err(|e| RegistryError::Invalid(e.to_string()))?;
        let mut entries = self.entries.write();
        if entries.contains_key(&spec.name) {
            return Err(RegistryError::Duplicate(spec.name));
        }
        entries.insert(spec.name.clone(), AgentEntry::new(spec));
        Ok(())
    }

    /// Replaces an existing agent's spec (metadata update), preserving its
    /// usage history.
    pub fn update(&self, spec: AgentSpec) -> Result<()> {
        spec.validate()
            .map_err(|e| RegistryError::Invalid(e.to_string()))?;
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(&spec.name)
            .ok_or_else(|| RegistryError::NotFound(spec.name.clone()))?;
        entry.spec = spec;
        entry.refresh_embedding();
        Ok(())
    }

    /// Derives a new agent from an existing one: clones the spec, renames
    /// it, and applies `customize`. Mirrors the registry web interface's
    /// "derive new agents from existing ones".
    pub fn derive(
        &self,
        base: &str,
        new_name: &str,
        customize: impl FnOnce(&mut AgentSpec),
    ) -> Result<()> {
        let mut spec = self.get(base)?.spec;
        spec.name = new_name.to_string();
        customize(&mut spec);
        if spec.name != new_name {
            return Err(RegistryError::Invalid(
                "customize must not rename the derived agent".into(),
            ));
        }
        self.register(spec)
    }

    /// Fetches an entry by name (cloned snapshot).
    pub fn get(&self, name: &str) -> Result<AgentEntry> {
        self.entries
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// Fetches just the spec by name.
    pub fn get_spec(&self, name: &str) -> Result<AgentSpec> {
        self.get(name).map(|e| e.spec)
    }

    /// True if the agent exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.read().contains_key(name)
    }

    /// Removes an agent.
    pub fn unregister(&self, name: &str) -> Result<()> {
        self.entries
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// All agent names, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered agents.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True if no agents are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Hybrid keyword+vector+usage search over agents. Agents whose circuit
    /// breakers are currently open are excluded: the planner must not route
    /// new work to an agent known to be failing.
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let breakers = self.breakers.read().clone();
        let entries = self.entries.read();
        let max_usage = entries
            .values()
            .map(|e| e.usage_count)
            .max()
            .unwrap_or(0)
            .max(1) as f32;
        rank_entries(
            query,
            entries
                .values()
                .filter(|e| breakers.as_ref().is_none_or(|b| !b.is_open(&e.spec.name)))
                .map(|e| {
                    (
                        e.spec.name.as_str(),
                        e.spec.description.as_str(),
                        &e.embedding,
                        e.usage_count as f32 / max_usage,
                    )
                }),
            limit,
        )
    }

    /// Records that `query` was routed to `agent`, boosting its future
    /// ranking and refreshing its log-derived embedding.
    pub fn record_usage(&self, agent: &str, query: &str) -> Result<()> {
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(agent)
            .ok_or_else(|| RegistryError::NotFound(agent.to_string()))?;
        entry.usage_count += 1;
        entry.usage_queries.push(query.to_string());
        if entry.usage_queries.len() > MAX_USAGE_QUERIES {
            entry.usage_queries.remove(0);
        }
        entry.refresh_embedding();
        Ok(())
    }

    /// Folds one observed execution of `agent` into its EWMA stats:
    /// `ewma ← alpha·observation + (1−alpha)·ewma`, with the first
    /// observation initializing the averages directly.
    pub fn fold_observation(
        &self,
        agent: &str,
        cost: f64,
        latency_micros: u64,
        accuracy: f64,
        alpha: f64,
    ) -> Result<()> {
        let alpha = alpha.clamp(0.0, 1.0);
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(agent)
            .ok_or_else(|| RegistryError::NotFound(agent.to_string()))?;
        let obs = (cost, latency_micros as f64, accuracy);
        entry.observed = Some(match entry.observed {
            None => ObservedStats {
                cost: obs.0,
                latency_micros: obs.1,
                accuracy: obs.2,
                samples: 1,
            },
            Some(prev) => ObservedStats {
                cost: alpha * obs.0 + (1.0 - alpha) * prev.cost,
                latency_micros: alpha * obs.1 + (1.0 - alpha) * prev.latency_micros,
                accuracy: alpha * obs.2 + (1.0 - alpha) * prev.accuracy,
                samples: prev.samples + 1,
            },
        });
        Ok(())
    }

    /// The learned per-call QoS of an agent as a cost-profile-shaped triple
    /// ([`ObservedStats`]), or `None` before the first observation. Planners
    /// can prefer this over the static spec profile once enough samples
    /// accrue.
    pub fn observed_profile(&self, name: &str) -> Option<ObservedStats> {
        self.entries.read().get(name).and_then(|e| e.observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_agents::{DataType, ParamSpec};

    fn spec(name: &str, description: &str) -> AgentSpec {
        AgentSpec::new(name, description)
            .with_input(ParamSpec::required("input", "input", DataType::Any))
            .with_output(ParamSpec::required("output", "output", DataType::Any))
    }

    fn seeded() -> AgentRegistry {
        let r = AgentRegistry::new();
        r.register(spec(
            "job-matcher",
            "assess the match quality between a job seeker profile and jobs",
        ))
        .unwrap();
        r.register(spec(
            "profiler",
            "collect job seeker profile information via a form",
        ))
        .unwrap();
        r.register(spec("summarizer", "summarize documents into concise text"))
            .unwrap();
        r
    }

    #[test]
    fn register_get_list() {
        let r = seeded();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.list(), ["job-matcher", "profiler", "summarizer"]);
        assert_eq!(r.get_spec("profiler").unwrap().name, "profiler");
        assert!(r.contains("summarizer"));
        assert!(!r.contains("ghost"));
    }

    #[test]
    fn duplicate_registration_fails() {
        let r = seeded();
        assert!(matches!(
            r.register(spec("profiler", "again")),
            Err(RegistryError::Duplicate(_))
        ));
    }

    #[test]
    fn invalid_spec_rejected() {
        let r = AgentRegistry::new();
        assert!(matches!(
            r.register(AgentSpec::new("", "no name")),
            Err(RegistryError::Invalid(_))
        ));
    }

    #[test]
    fn update_preserves_usage() {
        let r = seeded();
        r.record_usage("profiler", "collect my profile").unwrap();
        r.update(spec("profiler", "collect profiles with a UI form"))
            .unwrap();
        let e = r.get("profiler").unwrap();
        assert_eq!(e.usage_count, 1);
        assert!(e.spec.description.contains("UI form"));
    }

    #[test]
    fn update_unknown_fails() {
        let r = AgentRegistry::new();
        assert!(r.update(spec("ghost", "d")).is_err());
    }

    #[test]
    fn unregister_removes() {
        let r = seeded();
        r.unregister("summarizer").unwrap();
        assert!(!r.contains("summarizer"));
        assert!(r.unregister("summarizer").is_err());
    }

    #[test]
    fn search_finds_relevant_agent() {
        let r = seeded();
        let hits = r.search("match my profile against available jobs", 2);
        assert_eq!(hits[0].name, "job-matcher");
    }

    #[test]
    fn usage_boosts_ranking() {
        let r = AgentRegistry::new();
        // Two agents with identical descriptions: usage breaks the tie.
        r.register(spec("ranker-a", "rank applicants for a job post"))
            .unwrap();
        r.register(spec("ranker-b", "rank applicants for a job post"))
            .unwrap();
        for _ in 0..5 {
            r.record_usage("ranker-b", "rank the applicants").unwrap();
        }
        let hits = r.search("rank applicants", 2);
        assert_eq!(hits[0].name, "ranker-b");
    }

    #[test]
    fn usage_log_is_bounded() {
        let r = seeded();
        for i in 0..100 {
            r.record_usage("profiler", &format!("q{i}")).unwrap();
        }
        let e = r.get("profiler").unwrap();
        assert_eq!(e.usage_queries.len(), MAX_USAGE_QUERIES);
        assert_eq!(e.usage_count, 100);
        // Oldest queries were evicted.
        assert_eq!(e.usage_queries[0], "q68");
    }

    #[test]
    fn derive_clones_and_customizes() {
        let r = seeded();
        r.derive("summarizer", "query-summarizer", |s| {
            s.description = "explain SQL query results in natural language".into();
        })
        .unwrap();
        let d = r.get_spec("query-summarizer").unwrap();
        assert!(d.description.contains("SQL"));
        // Base is untouched.
        assert!(r
            .get_spec("summarizer")
            .unwrap()
            .description
            .contains("documents"));
    }

    #[test]
    fn derive_rejects_rename_in_customize() {
        let r = seeded();
        let err = r
            .derive("summarizer", "x", |s| {
                s.name = "sneaky".into();
            })
            .unwrap_err();
        assert!(matches!(err, RegistryError::Invalid(_)));
    }

    #[test]
    fn derive_from_unknown_fails() {
        let r = AgentRegistry::new();
        assert!(r.derive("ghost", "new", |_| {}).is_err());
    }

    #[test]
    fn record_usage_unknown_fails() {
        let r = AgentRegistry::new();
        assert!(r.record_usage("ghost", "q").is_err());
    }

    #[test]
    fn fold_observation_initializes_then_ewma() {
        let r = seeded();
        assert!(r.observed_profile("profiler").is_none());
        r.fold_observation("profiler", 2.0, 1_000, 0.9, 0.5)
            .unwrap();
        let first = r.observed_profile("profiler").unwrap();
        assert_eq!(first.samples, 1);
        assert!((first.cost - 2.0).abs() < 1e-12);
        assert!((first.latency_micros - 1_000.0).abs() < 1e-12);
        // Second fold: 0.5·4 + 0.5·2 = 3.
        r.fold_observation("profiler", 4.0, 3_000, 0.7, 0.5)
            .unwrap();
        let second = r.observed_profile("profiler").unwrap();
        assert_eq!(second.samples, 2);
        assert!((second.cost - 3.0).abs() < 1e-12);
        assert!((second.latency_micros - 2_000.0).abs() < 1e-12);
        assert!((second.accuracy - 0.8).abs() < 1e-12);
        assert!(r.fold_observation("ghost", 1.0, 1, 1.0, 0.5).is_err());
    }

    #[test]
    fn fold_observation_is_order_deterministic() {
        // The same observation sequence always yields bit-identical EWMAs.
        let runs: Vec<u64> = (0..2)
            .map(|_| {
                let r = seeded();
                for (c, l) in [(1.0, 100u64), (5.0, 900), (2.0, 300)] {
                    r.fold_observation("profiler", c, l, 0.9, 0.3).unwrap();
                }
                r.observed_profile("profiler").unwrap().cost.to_bits()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn search_routes_around_open_circuits() {
        use blueprint_resilience::BreakerConfig;
        let r = AgentRegistry::new();
        r.register(spec("ranker-a", "rank applicants for a job post"))
            .unwrap();
        r.register(spec("ranker-b", "rank applicants for a job post"))
            .unwrap();
        let breakers = Arc::new(BreakerRegistry::new(BreakerConfig {
            min_samples: 2,
            ..BreakerConfig::default()
        }));
        r.set_breakers(Arc::clone(&breakers));

        // Healthy: both rankers are reachable.
        let names: Vec<_> = r
            .search("rank applicants", 5)
            .into_iter()
            .map(|h| h.name)
            .collect();
        assert!(names.contains(&"ranker-a".to_string()));
        assert!(names.contains(&"ranker-b".to_string()));

        // Trip ranker-a's breaker: the planner no longer sees it.
        breakers.record("ranker-a", false, 0);
        breakers.record("ranker-a", false, 0);
        assert_eq!(r.breaker_state("ranker-a"), BreakerState::Open);
        let names: Vec<_> = r
            .search("rank applicants", 5)
            .into_iter()
            .map(|h| h.name)
            .collect();
        assert!(!names.contains(&"ranker-a".to_string()));
        assert!(names.contains(&"ranker-b".to_string()));

        // Cooldown elapses → half-open probes are routable again.
        assert!(breakers.allow("ranker-a", 60_000));
        let names: Vec<_> = r
            .search("rank applicants", 5)
            .into_iter()
            .map(|h| h.name)
            .collect();
        assert!(names.contains(&"ranker-a".to_string()));
    }
}
