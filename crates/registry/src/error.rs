//! Error type for registry operations.

use std::fmt;

/// Errors raised by the agent and data registries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No entry with the given name exists.
    NotFound(String),
    /// An entry with this name already exists.
    Duplicate(String),
    /// The entry is malformed (empty name, parent cycle, ...).
    Invalid(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NotFound(name) => write!(f, "registry entry not found: {name}"),
            RegistryError::Duplicate(name) => write!(f, "registry entry already exists: {name}"),
            RegistryError::Invalid(msg) => write!(f, "invalid registry entry: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            RegistryError::NotFound("jobs".into()).to_string(),
            "registry entry not found: jobs"
        );
        assert_eq!(
            RegistryError::Duplicate("jobs".into()).to_string(),
            "registry entry already exists: jobs"
        );
        assert_eq!(
            RegistryError::Invalid("x".into()).to_string(),
            "invalid registry entry: x"
        );
    }
}
