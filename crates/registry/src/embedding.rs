//! Deterministic learned-representation stand-in: hashed bag-of-words
//! embeddings.
//!
//! The paper's registries search over "learned representations derived from
//! metadata and logs" (§V-C). A production deployment would use a trained
//! text encoder; this reproduction substitutes a deterministic feature
//! hashing encoder (random-sign token hashing into a fixed-dimension space,
//! L2-normalized). It preserves the property the architecture relies on —
//! texts sharing vocabulary land near each other under cosine similarity —
//! while keeping every test reproducible without model weights.

use serde::{Deserialize, Serialize};

/// Dimensionality of the embedding space.
pub const EMBED_DIM: usize = 128;

/// A dense vector representation of a text (L2-normalized unless zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding(pub Vec<f32>);

impl Embedding {
    /// The all-zeros embedding (empty text).
    pub fn zero() -> Self {
        Embedding(vec![0.0; EMBED_DIM])
    }

    /// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        let dot: f32 = self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum();
        let na: f32 = self.0.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = other.0.iter().map(|b| b * b).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Weighted average of embeddings, renormalized. Used to fold usage
    /// logs into an entry's representation (the paper's "enhanced
    /// embeddings"). Returns zero when all weights are zero.
    pub fn blend(parts: &[(Embedding, f32)]) -> Embedding {
        let mut acc = vec![0.0f32; EMBED_DIM];
        let mut total = 0.0f32;
        for (e, w) in parts {
            if *w <= 0.0 {
                continue;
            }
            for (a, b) in acc.iter_mut().zip(&e.0) {
                *a += b * w;
            }
            total += w;
        }
        if total == 0.0 {
            return Embedding::zero();
        }
        let norm: f32 = acc.iter().map(|a| a * a).sum::<f32>().sqrt();
        if norm > 0.0 {
            for a in &mut acc {
                *a /= norm;
            }
        }
        Embedding(acc)
    }

    fn normalize(mut self) -> Self {
        let norm: f32 = self.0.iter().map(|a| a * a).sum::<f32>().sqrt();
        if norm > 0.0 {
            for a in &mut self.0 {
                *a /= norm;
            }
        }
        self
    }
}

/// FNV-1a 64-bit hash: stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Splits text into lowercase alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

/// Embeds a text via signed feature hashing of its unigrams and bigrams.
pub fn embed_text(text: &str) -> Embedding {
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return Embedding::zero();
    }
    let mut v = vec![0.0f32; EMBED_DIM];
    let mut add = |feature: &str, weight: f32| {
        let h = fnv1a(feature.as_bytes());
        let dim = (h % EMBED_DIM as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[dim] += sign * weight;
    };
    for t in &tokens {
        add(t, 1.0);
    }
    for pair in tokens.windows(2) {
        add(&format!("{}_{}", pair[0], pair[1]), 0.5);
    }
    Embedding(v).normalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_is_deterministic() {
        let a = embed_text("match job seekers to jobs");
        let b = embed_text("match job seekers to jobs");
        assert_eq!(a, b);
    }

    #[test]
    fn embeddings_are_normalized() {
        let e = embed_text("data scientist positions in the bay area");
        let norm: f32 = e.0.iter().map(|a| a * a).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_is_zero() {
        let e = embed_text("  ... !!");
        assert_eq!(e, Embedding::zero());
        assert_eq!(e.cosine(&embed_text("anything")), 0.0);
    }

    #[test]
    fn shared_vocabulary_scores_higher() {
        let query = embed_text("match candidates to job postings");
        let matcher = embed_text("assess match quality between a profile and job postings");
        let weather = embed_text("forecast tomorrow's weather and temperature");
        assert!(query.cosine(&matcher) > query.cosine(&weather));
    }

    #[test]
    fn identical_texts_have_cosine_one() {
        let e = embed_text("profile extraction");
        assert!((e.cosine(&e) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn tokenize_strips_punctuation_and_cases() {
        assert_eq!(
            tokenize("I'm looking for Data-Scientist roles!"),
            ["i", "m", "looking", "for", "data", "scientist", "roles"]
        );
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn blend_weights_pull_toward_heavier_part() {
        let a = embed_text("relational query execution engine");
        let b = embed_text("summarize candidate resumes");
        let blended = Embedding::blend(&[(a.clone(), 3.0), (b.clone(), 1.0)]);
        assert!(blended.cosine(&a) > blended.cosine(&b));
    }

    #[test]
    fn blend_ignores_nonpositive_weights() {
        let a = embed_text("alpha beta");
        let blended = Embedding::blend(&[(a.clone(), 1.0), (embed_text("noise"), -5.0)]);
        assert!((blended.cosine(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn blend_all_zero_weights_is_zero() {
        let a = embed_text("alpha");
        assert_eq!(Embedding::blend(&[(a, 0.0)]), Embedding::zero());
        assert_eq!(Embedding::blend(&[]), Embedding::zero());
    }

    #[test]
    fn bigram_order_matters() {
        let ab = embed_text("new york");
        let ba = embed_text("york new");
        // Same unigrams, different bigrams — similar but not identical.
        let cos = ab.cosine(&ba);
        assert!(cos > 0.5 && cos < 0.9999);
    }
}
