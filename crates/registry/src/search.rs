//! Shared search machinery for both registries.
//!
//! Entries expose a name, a description, and an embedding; searches combine
//! keyword overlap, cosine similarity, and a usage-frequency prior.

use serde::{Deserialize, Serialize};

use crate::embedding::{embed_text, tokenize, Embedding};

/// A scored search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Entry name.
    pub name: String,
    /// Combined relevance score (higher is better).
    pub score: f32,
}

/// Keyword relevance: fraction of query tokens found in the entry text,
/// weighted toward name matches.
pub fn keyword_score(query: &str, name: &str, description: &str) -> f32 {
    let q = tokenize(query);
    if q.is_empty() {
        return 0.0;
    }
    let name_tokens = tokenize(name);
    let desc_tokens = tokenize(description);
    let mut hits = 0.0f32;
    for t in &q {
        if name_tokens.contains(t) {
            hits += 2.0; // name matches are stronger signals
        } else if desc_tokens.contains(t) {
            hits += 1.0;
        }
    }
    hits / (q.len() as f32 * 2.0)
}

/// Ranks `(name, description, embedding, usage_weight)` entries against a
/// query: `score = α·vector + β·keyword + γ·usage_prior`.
///
/// `usage_weight` should be a normalized frequency in `[0, 1]`.
pub fn rank_entries<'a, I>(query: &str, entries: I, limit: usize) -> Vec<SearchHit>
where
    I: IntoIterator<Item = (&'a str, &'a str, &'a Embedding, f32)>,
{
    const ALPHA: f32 = 0.6;
    const BETA: f32 = 0.3;
    const GAMMA: f32 = 0.1;
    let qe = embed_text(query);
    let mut hits: Vec<SearchHit> = entries
        .into_iter()
        .map(|(name, description, embedding, usage)| SearchHit {
            name: name.to_string(),
            score: ALPHA * qe.cosine(embedding)
                + BETA * keyword_score(query, name, description)
                + GAMMA * usage.clamp(0.0, 1.0),
        })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    hits.truncate(limit);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_score_prefers_name_matches() {
        let in_name = keyword_score("matcher", "job-matcher", "assess quality");
        let in_desc = keyword_score("matcher", "ranker", "a matcher of things");
        assert!(in_name > in_desc);
        assert!(in_desc > 0.0);
    }

    #[test]
    fn keyword_score_empty_query_is_zero() {
        assert_eq!(keyword_score("", "a", "b"), 0.0);
    }

    #[test]
    fn rank_entries_orders_by_relevance() {
        let matcher = embed_text("assess the match quality between a job seeker profile and jobs");
        let weather = embed_text("report today's weather");
        let entries = vec![
            ("weather", "report today's weather", &weather, 0.0),
            (
                "job-matcher",
                "assess the match quality between a job seeker profile and jobs",
                &matcher,
                0.0,
            ),
        ];
        let hits = rank_entries("match job seeker to jobs", entries, 10);
        assert_eq!(hits[0].name, "job-matcher");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn rank_entries_limit_truncates() {
        let e = embed_text("x");
        let entries: Vec<(&str, &str, &Embedding, f32)> = vec![
            ("a", "x", &e, 0.0),
            ("b", "x", &e, 0.0),
            ("c", "x", &e, 0.0),
        ];
        assert_eq!(rank_entries("x", entries, 2).len(), 2);
    }

    #[test]
    fn usage_prior_breaks_ties() {
        let e1 = embed_text("summarize text");
        let e2 = embed_text("summarize text");
        let entries = vec![
            ("cold", "summarize text", &e1, 0.0),
            ("hot", "summarize text", &e2, 1.0),
        ];
        let hits = rank_entries("summarize", entries, 10);
        assert_eq!(hits[0].name, "hot");
    }

    #[test]
    fn ties_resolve_by_name() {
        let e = embed_text("same");
        let entries = vec![("b", "same", &e, 0.0), ("a", "same", &e, 0.0)];
        let hits = rank_entries("same", entries, 10);
        assert_eq!(hits[0].name, "a");
    }
}
