//! Property-based equivalence of the unified IR path and the legacy path.
//!
//! For randomly generated task DAGs — some nodes of which pull a `FromData`
//! binding that routes through the data planner's running-example pipeline
//! (Q2NL → knowledge lookup → graph expansion → SQL) — executing the plan
//! through the legacy shim (`TaskCoordinator::execute`, which lowers
//! internally) and executing an explicitly spliced [`PlanIr`] through
//! `execute_ir` must agree: byte-identical final outputs, identical per-node
//! results, and bitwise-identical cost/accuracy accounting under the
//! sequential scheduler.
//!
//! Agent charges are dyadic rationals with accuracy exactly 1.0, so those
//! sums are exact; data-plan charges are *not* dyadic (e.g. 0.032 cost at
//! 0.9 accuracy), but the sequential scheduler folds them in one fixed
//! order, so equality is still bitwise. Under the parallel scheduler the
//! fold order of those non-dyadic charges is timing-dependent, so budget
//! totals are compared within an epsilon while outputs and per-node results
//! stay exact. Latency totals are excluded under parallelism for the same
//! shared-clock reason documented in the coordinator's own property suite.
//!
//! The file also pins the adaptive feedback loop: a deterministic seed in
//! which observed latency drifts past the configured threshold must trigger
//! exactly one mid-flight re-optimization that downgrades the spliced
//! knowledge operator from `sim-large` to `sim-small`, and an accurate
//! estimate (the no-drift control) must trigger none.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use serde_json::json;

use blueprint_agents::{
    AgentContext, AgentFactory, AgentSpec, CostProfile, DataType, FnProcessor, Inputs, Outputs,
    ParamSpec, Processor,
};
use blueprint_coordinator::{
    AdaptiveConfig, ExecutionReport, Outcome, SchedulerMode, TaskCoordinator,
};
use blueprint_datastore::{GraphSource, PropertyGraph, RelationalDb, RelationalSource};
use blueprint_llmsim::{ModelProfile, ParametricSource, SimLlm};
use blueprint_optimizer::QosConstraints;
use blueprint_planner::{DataOp, DataPlanner, InputBinding, IrKind, PlanIr, PlanNode, TaskPlan};
use blueprint_registry::{AgentRegistry, DataRegistry};
use blueprint_streams::StreamStore;

const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";
const JOBS_QUERY: &str = "available job listings";

fn jobs_db() -> Arc<RelationalDb> {
    let db = Arc::new(RelationalDb::new());
    db.execute("CREATE TABLE jobs (id INT, title TEXT, city TEXT)")
        .unwrap();
    db.execute(
        "INSERT INTO jobs VALUES \
         (1, 'data scientist', 'san francisco'), \
         (2, 'machine learning engineer', 'oakland'), \
         (3, 'data scientist', 'new york')",
    )
    .unwrap();
    db
}

fn taxonomy() -> Arc<PropertyGraph> {
    let g = Arc::new(PropertyGraph::new());
    for (id, name) in [
        ("data-scientist", "data scientist"),
        ("machine-learning-engineer", "machine learning engineer"),
    ] {
        g.add_node(id, "title", json!({"name": name})).unwrap();
    }
    g.add_edge("machine-learning-engineer", "data-scientist", "related_to")
        .unwrap();
    g
}

fn data_planner() -> DataPlanner {
    let llm = Arc::new(SimLlm::new(ModelProfile::large()));
    let mut dp = DataPlanner::new(Arc::new(DataRegistry::new()), Arc::clone(&llm));
    dp.add_source(Arc::new(RelationalSource::new("hr-db", jobs_db())));
    dp.add_source(Arc::new(GraphSource::new("title-taxonomy", taxonomy())));
    dp.add_source(Arc::new(ParametricSource::new("gpt-large", llm)));
    dp.add_source(Arc::new(ParametricSource::new(
        "gpt-small",
        Arc::new(SimLlm::new(ModelProfile::small())),
    )));
    dp
}

/// Registers `join-{arity}` (and, with `with_data`, `data-join-{arity}`,
/// which additionally consumes a `jobs` table fetched via a `FromData`
/// binding). Charges are dyadic multiples of 0.125 so agent-side cost sums
/// are exact under any completion order.
fn register_join(factory: &AgentFactory, registry: &AgentRegistry, arity: usize, with_data: bool) {
    let params = arity.max(1);
    let name = if with_data {
        format!("data-join-{arity}")
    } else {
        format!("join-{arity}")
    };
    let extra = usize::from(with_data);
    let cost = 0.125 * (arity + 1 + extra) as f64;
    let latency = 1_000 * (arity + 1 + extra) as u64;
    let mut spec = AgentSpec::new(&name, format!("joins {params} upstream value(s)"))
        .with_output(ParamSpec::required("out", "joined text", DataType::Text))
        .with_profile(CostProfile::new(cost, latency, 1.0));
    for k in 0..params {
        spec = spec.with_input(ParamSpec::required(
            format!("in_{k}"),
            "upstream value",
            DataType::Text,
        ));
    }
    if with_data {
        spec = spec.with_input(ParamSpec::required(
            "jobs",
            "job listings fetched by the data layer",
            DataType::Any,
        ));
    }
    let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
        move |inputs: &Inputs, ctx: &AgentContext| {
            let mut parts = Vec::with_capacity(params);
            for k in 0..params {
                parts.push(inputs.require_str(&format!("in_{k}"))?.to_uppercase());
            }
            ctx.charge_cost(cost);
            ctx.charge_latency_micros(latency);
            let mut joined = parts.join("+");
            if with_data {
                let jobs = serde_json::to_string(inputs.require("jobs")?).unwrap();
                joined = format!("{joined}&{jobs}");
            }
            Ok(Outputs::new().with("out", json!(format!("{}#{}", joined, joined.len()))))
        },
    ));
    factory.register(spec.clone(), proc).unwrap();
    registry.register(spec).unwrap();
    factory.spawn(&name, "session:1").unwrap();
}

/// Maps raw generator output to a DAG: node `i` depends on up to two
/// distinct earlier nodes (`raw % i`, acyclic by construction); nodes with
/// the flag set also pull the jobs table through a `FromData` binding.
fn build_plan(raw_deps: &[(Vec<usize>, bool)]) -> TaskPlan {
    let mut plan = TaskPlan::new("t-ir-prop", RUNNING_EXAMPLE);
    for (i, (raw, with_data)) in raw_deps.iter().enumerate() {
        let mut deps: Vec<usize> = if i == 0 {
            Vec::new()
        } else {
            raw.iter().map(|r| r % i).collect()
        };
        deps.sort_unstable();
        deps.dedup();
        let mut inputs = BTreeMap::new();
        if deps.is_empty() {
            inputs.insert("in_0".to_string(), InputBinding::FromUser);
        } else {
            for (k, &j) in deps.iter().enumerate() {
                inputs.insert(
                    format!("in_{k}"),
                    InputBinding::FromNode {
                        node: format!("n{j}"),
                        output: "out".to_string(),
                    },
                );
            }
        }
        let arity = deps.len();
        let agent = if *with_data {
            inputs.insert(
                "jobs".to_string(),
                InputBinding::FromData {
                    query: JOBS_QUERY.to_string(),
                },
            );
            format!("data-join-{arity}")
        } else {
            format!("join-{arity}")
        };
        let extra = usize::from(*with_data);
        plan.push(PlanNode {
            id: format!("n{i}"),
            agent,
            task: format!("step {i}"),
            inputs,
            profile: CostProfile::new(
                0.125 * (arity + 1 + extra) as f64,
                1_000 * (arity + 1 + extra) as u64,
                1.0,
            ),
        });
    }
    plan
}

/// Builds a fresh runtime (store, factory, registry, data planner,
/// coordinator). Each execution arm gets its own so no usage counters,
/// memo entries, or clock state leak between the paths under comparison.
/// The factory is returned alongside the coordinator: dropping it stops the
/// spawned agent hosts.
fn fresh_runtime(mode: SchedulerMode) -> (TaskCoordinator, Arc<DataPlanner>, AgentFactory) {
    let store = StreamStore::new();
    let factory = AgentFactory::new(store.clone());
    let registry = Arc::new(AgentRegistry::new());
    for arity in 0..3 {
        register_join(&factory, &registry, arity, false);
        register_join(&factory, &registry, arity, true);
    }
    let dp = Arc::new(data_planner());
    let coordinator = TaskCoordinator::new(store, "session:1", registry)
        .with_report_timeout(Duration::from_secs(10))
        .with_data_planner(Arc::clone(&dp))
        .with_scheduler(mode);
    (coordinator, dp, factory)
}

/// Legacy arm: the coordinator lowers the `TaskPlan` internally.
fn run_legacy(raw_deps: &[(Vec<usize>, bool)], mode: SchedulerMode) -> ExecutionReport {
    let (coordinator, _dp, _factory) = fresh_runtime(mode);
    let plan = build_plan(raw_deps);
    coordinator.execute(&plan, QosConstraints::none()).unwrap()
}

/// IR arm: lower + splice explicitly, then execute the IR directly.
fn run_ir(raw_deps: &[(Vec<usize>, bool)], mode: SchedulerMode) -> ExecutionReport {
    let (coordinator, dp, _factory) = fresh_runtime(mode);
    let plan = build_plan(raw_deps);
    let ir = PlanIr::lower_spliced(&plan, &dp).unwrap();
    ir.validate().unwrap();
    coordinator.execute_ir(&ir, QosConstraints::none()).unwrap()
}

fn final_output(report: &ExecutionReport) -> String {
    match &report.outcome {
        Outcome::Completed { output } => serde_json::to_string(output).unwrap(),
        other => panic!("unexpected outcome: {other:?}"),
    }
}

/// Node results with the latency field normalized away (shared-clock
/// over-counting under parallelism; see module docs).
fn without_latency(report: &ExecutionReport) -> Vec<blueprint_coordinator::NodeResult> {
    report
        .node_results
        .iter()
        .cloned()
        .map(|mut r| {
            r.latency_micros = 0;
            r
        })
        .collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Raw material: 1..8 nodes, each with 0..=2 raw dep picks and a flag
/// marking whether the node pulls the jobs table from the data layer.
fn deps_strategy() -> impl Strategy<Value = Vec<(Vec<usize>, bool)>> {
    (1usize..8).prop_flat_map(|n| {
        prop::collection::vec(
            (prop::collection::vec(0usize..1000, 0..3), any::<bool>()),
            n,
        )
    })
}

proptest! {
    /// Sequential reference: lowering through the shim and executing the
    /// explicitly spliced IR are the *same computation* — byte-identical
    /// outputs, identical node results, bitwise-identical accounting.
    #[test]
    fn ir_path_matches_legacy_path_sequential(raw_deps in deps_strategy()) {
        let legacy = run_legacy(&raw_deps, SchedulerMode::Sequential);
        let ir = run_ir(&raw_deps, SchedulerMode::Sequential);

        prop_assert!(legacy.outcome.succeeded(), "legacy: {:?}", legacy.outcome);
        prop_assert!(ir.outcome.succeeded(), "ir: {:?}", ir.outcome);
        prop_assert_eq!(final_output(&legacy), final_output(&ir));
        prop_assert_eq!(&legacy.node_results, &ir.node_results);
        prop_assert_eq!(
            legacy.budget.spent_cost.to_bits(),
            ir.budget.spent_cost.to_bits()
        );
        prop_assert_eq!(
            legacy.budget.spent_latency_micros,
            ir.budget.spent_latency_micros
        );
        prop_assert_eq!(
            legacy.budget.accuracy_so_far.to_bits(),
            ir.budget.accuracy_so_far.to_bits()
        );
        prop_assert!(legacy.reoptimizations.is_empty());
        prop_assert!(ir.reoptimizations.is_empty());
    }

    /// Parallel scheduler: outputs and per-node results stay exact; budget
    /// totals fold non-dyadic data-plan charges in a timing-dependent order,
    /// so they are compared within a relative epsilon.
    #[test]
    fn ir_path_matches_legacy_path_parallel(raw_deps in deps_strategy()) {
        let legacy = run_legacy(&raw_deps, SchedulerMode::Parallel { max_in_flight: 0 });
        let ir = run_ir(&raw_deps, SchedulerMode::Parallel { max_in_flight: 0 });

        prop_assert!(legacy.outcome.succeeded(), "legacy: {:?}", legacy.outcome);
        prop_assert!(ir.outcome.succeeded(), "ir: {:?}", ir.outcome);
        prop_assert_eq!(final_output(&legacy), final_output(&ir));
        prop_assert_eq!(without_latency(&legacy), without_latency(&ir));
        prop_assert!(
            close(legacy.budget.spent_cost, ir.budget.spent_cost),
            "cost {} vs {}", legacy.budget.spent_cost, ir.budget.spent_cost
        );
        prop_assert!(
            close(legacy.budget.accuracy_so_far, ir.budget.accuracy_so_far),
            "accuracy {} vs {}", legacy.budget.accuracy_so_far, ir.budget.accuracy_so_far
        );
    }
}

// ---------------------------------------------------------------------------
// Adaptive re-optimization: pinned deterministic scenarios.
// ---------------------------------------------------------------------------

/// Builds the drift fixture: `n1` (whose *estimated* latency understates the
/// actual charge by `actual / est`) feeding `n2`, which joins the upstream
/// text with the jobs table spliced from the data layer.
fn adaptive_runtime(
    est_latency: u64,
    actual_latency: u64,
    threshold: f64,
) -> (TaskCoordinator, Arc<AgentRegistry>, PlanIr, AgentFactory) {
    let store = StreamStore::new();
    let factory = AgentFactory::new(store.clone());
    let registry = Arc::new(AgentRegistry::new());

    let slow = AgentSpec::new("slow-start", "collects the profile")
        .with_input(ParamSpec::required("text", "user text", DataType::Text))
        .with_output(ParamSpec::required("out", "profile", DataType::Text))
        .with_profile(CostProfile::new(0.125, est_latency, 1.0));
    let slow_proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
        move |inputs: &Inputs, ctx: &AgentContext| {
            ctx.charge_cost(0.125);
            ctx.charge_latency_micros(actual_latency);
            Ok(Outputs::new().with("out", json!(inputs.require_str("text")?.to_uppercase())))
        },
    ));
    factory.register(slow.clone(), slow_proc).unwrap();
    registry.register(slow).unwrap();
    factory.spawn("slow-start", "session:1").unwrap();

    let consume = AgentSpec::new("consume-jobs", "matches jobs against the profile")
        .with_input(ParamSpec::required("text", "profile", DataType::Text))
        .with_input(ParamSpec::required("jobs", "job listings", DataType::Any))
        .with_output(ParamSpec::required("out", "matches", DataType::Text))
        .with_profile(CostProfile::new(0.125, 1_000, 1.0));
    let consume_proc: Arc<dyn Processor> =
        Arc::new(FnProcessor::new(|inputs: &Inputs, ctx: &AgentContext| {
            ctx.charge_cost(0.125);
            ctx.charge_latency_micros(1_000);
            let jobs = serde_json::to_string(inputs.require("jobs")?).unwrap();
            Ok(Outputs::new().with(
                "out",
                json!(format!("{}&{}", inputs.require_str("text")?, jobs)),
            ))
        }));
    factory.register(consume.clone(), consume_proc).unwrap();
    registry.register(consume).unwrap();
    factory.spawn("consume-jobs", "session:1").unwrap();

    let mut plan = TaskPlan::new("t-adaptive", RUNNING_EXAMPLE);
    let mut n1 = PlanNode {
        id: "n1".into(),
        agent: "slow-start".into(),
        task: "collect the profile".into(),
        inputs: BTreeMap::new(),
        profile: CostProfile::new(0.125, est_latency, 1.0),
    };
    n1.inputs.insert("text".into(), InputBinding::FromUser);
    let mut n2 = PlanNode {
        id: "n2".into(),
        agent: "consume-jobs".into(),
        task: "match jobs".into(),
        inputs: BTreeMap::new(),
        profile: CostProfile::new(0.125, 1_000, 1.0),
    };
    n2.inputs.insert(
        "text".into(),
        InputBinding::FromNode {
            node: "n1".into(),
            output: "out".into(),
        },
    );
    n2.inputs.insert(
        "jobs".into(),
        InputBinding::FromData {
            query: JOBS_QUERY.into(),
        },
    );
    plan.push(n1);
    plan.push(n2);

    let dp = Arc::new(data_planner());
    let mut ir = PlanIr::lower_spliced(&plan, &dp).unwrap();
    // Pin the spliced knowledge operator to the large tier so the mid-flight
    // pass has a downgrade available when the latency budget tightens.
    let know_id = knowledge_node(&ir);
    assert!(ir.apply_alternative(&know_id, "gpt-large"));

    let coordinator = TaskCoordinator::new(store, "session:1", Arc::clone(&registry))
        .with_report_timeout(Duration::from_secs(10))
        .with_data_planner(dp)
        .with_scheduler(SchedulerMode::Sequential)
        .with_adaptive(AdaptiveConfig::with_threshold(threshold));
    (coordinator, registry, ir, factory)
}

fn knowledge_node(ir: &PlanIr) -> String {
    ir.nodes
        .iter()
        .find(|n| {
            matches!(&n.kind, IrKind::DataOperator { node, .. }
                if matches!(node.op, DataOp::Knowledge { .. }))
        })
        .expect("spliced plan contains a knowledge operator")
        .id
        .clone()
}

/// Observed latency drifting past the threshold (50 000 µs against a
/// 1 000 µs estimate, threshold 2×) must trigger exactly one bounded
/// re-optimization of the pending IR suffix, downgrading the knowledge
/// operator to the small tier — the large tier's 680 000 µs estimate no
/// longer fits the remaining 350 000 µs latency budget.
#[test]
fn adaptive_replanning_downgrades_tier_on_latency_drift() {
    let (coordinator, _registry, ir, _factory) = adaptive_runtime(1_000, 50_000, 2.0);
    let know_id = knowledge_node(&ir);
    let report = coordinator
        .execute_ir(&ir, QosConstraints::none().with_max_latency_micros(400_000))
        .unwrap();
    assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
    assert_eq!(
        report.reoptimizations.len(),
        1,
        "{:?}",
        report.reoptimizations
    );
    let note = &report.reoptimizations[0];
    assert_eq!(note.node, know_id);
    assert_eq!(note.from_tier, "sim-large");
    assert_eq!(note.to_tier, "sim-small");
    // The run fits the latency budget only because of the downgrade.
    assert!(report.budget.spent_latency_micros < 400_000);
}

/// The no-drift control: with an accurate estimate nothing crosses the
/// threshold and the pinned large tier is left alone.
#[test]
fn adaptive_replanning_never_fires_below_threshold() {
    let (coordinator, _registry, ir, _factory) = adaptive_runtime(50_000, 50_000, 2.0);
    let report = coordinator
        .execute_ir(
            &ir,
            QosConstraints::none().with_max_latency_micros(2_000_000),
        )
        .unwrap();
    assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
    assert!(
        report.reoptimizations.is_empty(),
        "unexpected: {:?}",
        report.reoptimizations
    );
}

/// The EWMA fold is deterministic: two identical adaptive runs on fresh
/// runtimes leave bit-identical observed stats in the registry.
#[test]
fn adaptive_feedback_folds_deterministically() {
    let observe = || {
        let (coordinator, registry, ir, _factory) = adaptive_runtime(1_000, 50_000, 2.0);
        coordinator
            .execute_ir(&ir, QosConstraints::none().with_max_latency_micros(400_000))
            .unwrap();
        (
            registry.observed_profile("slow-start").unwrap(),
            registry.observed_profile("consume-jobs").unwrap(),
        )
    };
    let (a1, a2) = observe();
    let (b1, b2) = observe();
    for (a, b) in [(a1, b1), (a2, b2)] {
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.latency_micros.to_bits(), b.latency_micros.to_bits());
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(a.samples, b.samples);
    }
}
