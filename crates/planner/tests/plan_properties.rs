//! Property-based tests for task-plan DAG invariants.

use std::collections::BTreeMap;

use blueprint_agents::CostProfile;
use blueprint_planner::{InputBinding, PlanNode, TaskPlan};
use proptest::prelude::*;

/// Generates a random DAG as a chain-with-skips: node i may read from any
/// earlier node j < i (guaranteeing acyclicity), with shuffled insertion.
fn dag_strategy() -> impl Strategy<Value = TaskPlan> {
    (2usize..10)
        .prop_flat_map(|n| {
            let deps = prop::collection::vec(prop::option::of(0usize..n.max(1)), n);
            let perm = Just((0..n).collect::<Vec<usize>>()).prop_shuffle();
            (Just(n), deps, perm)
        })
        .prop_map(|(n, deps, perm)| {
            let mut nodes: Vec<PlanNode> = (0..n)
                .map(|i| {
                    let mut inputs = BTreeMap::new();
                    match deps[i] {
                        Some(j) if j < i => {
                            inputs.insert(
                                "in".to_string(),
                                InputBinding::FromNode {
                                    node: format!("n{j}"),
                                    output: "out".to_string(),
                                },
                            );
                        }
                        _ => {
                            inputs.insert("in".to_string(), InputBinding::FromUser);
                        }
                    }
                    PlanNode {
                        id: format!("n{i}"),
                        agent: format!("agent-{i}"),
                        task: format!("task {i}"),
                        inputs,
                        profile: CostProfile::new(0.5 + i as f64 * 0.1, 1_000 + i as u64, 0.95),
                    }
                })
                .collect();
            // Shuffle insertion order; the plan must still topo-sort.
            let mut plan = TaskPlan::new("t", "utterance");
            for &i in &perm {
                plan.push(nodes[i].clone());
            }
            nodes.clear();
            plan
        })
}

proptest! {
    /// Valid DAGs validate, and every edge goes forward in the topo order.
    #[test]
    fn topo_order_respects_edges(plan in dag_strategy()) {
        plan.validate().unwrap();
        let order = plan.topo_order().unwrap();
        prop_assert_eq!(order.len(), plan.nodes.len());
        let pos: std::collections::HashMap<&str, usize> = order
            .iter()
            .enumerate()
            .map(|(i, id)| (id.as_str(), i))
            .collect();
        for e in plan.edges() {
            prop_assert!(
                pos[e.from.as_str()] < pos[e.to.as_str()],
                "edge {}→{} violated by order {:?}",
                e.from,
                e.to,
                order
            );
        }
    }

    /// Projected profile equals the fold of node profiles (cost sums,
    /// accuracy multiplies).
    #[test]
    fn projected_profile_is_fold(plan in dag_strategy()) {
        let p = plan.projected_profile();
        let cost: f64 = plan.nodes.iter().map(|n| n.profile.cost_per_call).sum();
        let latency: u64 = plan.nodes.iter().map(|n| n.profile.latency_micros).sum();
        let accuracy: f64 = plan.nodes.iter().map(|n| n.profile.accuracy).product();
        prop_assert!((p.cost_per_call - cost).abs() < 1e-9);
        prop_assert_eq!(p.latency_micros, latency);
        prop_assert!((p.accuracy - accuracy).abs() < 1e-9);
    }

    /// Message round trip preserves the plan exactly.
    #[test]
    fn message_round_trip(plan in dag_strategy()) {
        let msg = plan.clone().into_message();
        let back = TaskPlan::from_message(&msg).unwrap();
        prop_assert_eq!(back, plan);
    }

    /// render_text mentions every node and every agent.
    #[test]
    fn render_mentions_everything(plan in dag_strategy()) {
        let text = plan.render_text();
        for n in &plan.nodes {
            prop_assert!(text.contains(&n.id));
            prop_assert!(text.contains(&n.agent.to_uppercase()));
        }
    }
}
