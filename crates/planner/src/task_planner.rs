//! The task planner (§V-F): utterance → agentic-workflow DAG.
//!
//! The planner (1) interprets the utterance (via the simulated LLM's intent
//! head), (2) decomposes it into sub-task descriptions, (3) maps each
//! sub-task to the best agent in the registry by hybrid search, and
//! (4) connects parameters: each required input binds to a type-compatible
//! upstream output with the most similar name/description, falls back to
//! the user utterance for text, to the *data planner* for tables/lists
//! (`FromData`), or to the declared default.

use std::sync::Arc;

use serde_json::json;

use blueprint_agents::{AgentSpec, DataType, ParamSpec};
use blueprint_llmsim::{Intent, SimLlm};
use blueprint_registry::{embed_text, AgentRegistry};

use crate::error::PlanError;
use crate::plan::{InputBinding, PlanNode, TaskPlan};
use crate::Result;

/// Minimum registry search score for a sub-task assignment to count.
const MIN_ASSIGNMENT_SCORE: f32 = 0.05;

/// User feedback on a proposed plan (§V-F: "the task planner can be
/// interactive, initially presenting a plan to the user ... facilitating
/// collaborative planning").
#[derive(Debug, Clone, PartialEq)]
pub enum PlanFeedback {
    /// Drop the node executing this agent; consumers rebind to its upstream.
    RemoveAgent(String),
    /// Swap the agent assigned to a node for another registered agent.
    ReplaceAgent {
        /// Agent currently assigned.
        from: String,
        /// Replacement agent (must exist in the registry).
        to: String,
    },
    /// Pin an input parameter to a literal value (e.g. the user fills in a
    /// field the plan would otherwise gather interactively).
    PinInput {
        /// Agent whose input to pin.
        agent: String,
        /// Parameter name.
        param: String,
        /// The value.
        value: serde_json::Value,
    },
}

/// Plans agentic workflows over a registry.
pub struct TaskPlanner {
    registry: Arc<AgentRegistry>,
    llm: Arc<SimLlm>,
    counter: std::sync::atomic::AtomicU64,
}

impl TaskPlanner {
    /// Creates a planner over a registry, using the given LLM for
    /// interpretation.
    pub fn new(registry: Arc<AgentRegistry>, llm: Arc<SimLlm>) -> Self {
        TaskPlanner {
            registry,
            llm,
            counter: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// The registry this planner draws agents from.
    pub fn registry(&self) -> &Arc<AgentRegistry> {
        &self.registry
    }

    /// Decomposes an utterance into sub-task descriptions. This emulates the
    /// LLM's planning role with a per-intent template — the "prewired"
    /// planning style; `plan_subtasks` below accepts ad hoc decompositions.
    pub fn decompose(&self, utterance: &str) -> (Intent, Vec<String>) {
        let (intent, _confidence, _usage) = self.llm.classify_intent(utterance);
        let subtasks: Vec<String> = match intent {
            Intent::JobSearch => vec![
                "collect job seeker profile information from the user".into(),
                "match the job seeker profile with available job listings".into(),
                "present the matched jobs to the end user".into(),
            ],
            Intent::OpenEndedQuery => vec![
                "translate the natural language question into a database query".into(),
                "execute the database query".into(),
                "summarize and explain the query results".into(),
            ],
            Intent::SummarizeRequest => vec![
                "summarize the given data concisely".into(),
                "present the summary to the end user".into(),
            ],
            Intent::ListCommand => vec![
                "update the user's candidate list per the command".into(),
                "present the updated list to the end user".into(),
            ],
            Intent::ProfileInfo => {
                vec!["collect job seeker profile information from the user".into()]
            }
            Intent::Greeting | Intent::Unknown => {
                vec!["respond conversationally to the user".into()]
            }
        };
        (intent, subtasks)
    }

    /// Plans a workflow for an utterance (decompose + assign + connect).
    pub fn plan(&self, utterance: &str) -> Result<TaskPlan> {
        let (_, subtasks) = self.decompose(utterance);
        self.plan_subtasks(utterance, &subtasks, &[])
    }

    /// Replans excluding some agents (the coordinator's failure path, §V-H).
    pub fn plan_excluding(&self, utterance: &str, exclude: &[String]) -> Result<TaskPlan> {
        let (_, subtasks) = self.decompose(utterance);
        self.plan_subtasks(utterance, &subtasks, exclude)
    }

    /// Plans from an explicit (ad hoc) sub-task decomposition.
    pub fn plan_subtasks(
        &self,
        utterance: &str,
        subtasks: &[String],
        exclude: &[String],
    ) -> Result<TaskPlan> {
        let task_id = format!(
            "t{}",
            self.counter
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        let mut plan = TaskPlan::new(task_id, utterance);
        let mut upstream: Option<(String, AgentSpec)> = None;

        for (i, subtask) in subtasks.iter().enumerate() {
            let spec = self.assign(subtask, exclude)?;
            self.registry
                .record_usage(&spec.name, subtask)
                .map_err(|e| PlanError::Execution(e.to_string()))?;
            let node_id = format!("n{}", i + 1);
            let mut node = PlanNode {
                id: node_id.clone(),
                agent: spec.name.clone(),
                task: subtask.clone(),
                inputs: Default::default(),
                profile: spec.profile,
            };
            for input in &spec.inputs {
                if let Some(binding) = self.bind(input, upstream.as_ref()) {
                    node.inputs.insert(input.name.clone(), binding);
                } else if input.required {
                    return Err(PlanError::UnboundParameter {
                        node: node_id,
                        param: input.name.clone(),
                    });
                }
            }
            upstream = Some((node_id, spec));
            plan.push(node);
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Applies user feedback to a plan, returning the refined plan
    /// (collaborative planning, §V-F). The original plan is untouched.
    pub fn refine(&self, plan: &TaskPlan, feedback: &PlanFeedback) -> Result<TaskPlan> {
        let mut refined = plan.clone();
        match feedback {
            PlanFeedback::RemoveAgent(agent) => {
                let Some(pos) = refined.nodes.iter().position(|n| &n.agent == agent) else {
                    return Err(PlanError::InvalidPlan(format!(
                        "plan has no node for agent {agent}"
                    )));
                };
                let removed = refined.nodes.remove(pos);
                // The removed node's primary upstream (if any) adopts its
                // consumers.
                let upstream: Option<(String, String)> =
                    removed.inputs.values().find_map(|b| match b {
                        InputBinding::FromNode { node, output } => {
                            Some((node.clone(), output.clone()))
                        }
                        _ => None,
                    });
                for node in &mut refined.nodes {
                    for binding in node.inputs.values_mut() {
                        if let InputBinding::FromNode { node: from, .. } = binding {
                            if from == &removed.id {
                                *binding = match &upstream {
                                    Some((n, o)) => InputBinding::FromNode {
                                        node: n.clone(),
                                        output: o.clone(),
                                    },
                                    None => InputBinding::FromUser,
                                };
                            }
                        }
                    }
                }
            }
            PlanFeedback::ReplaceAgent { from, to } => {
                let spec = self.registry.get_spec(to).map_err(|e| {
                    PlanError::InvalidPlan(format!("replacement agent unknown: {e}"))
                })?;
                let Some(pos) = refined.nodes.iter().position(|n| &n.agent == from) else {
                    return Err(PlanError::InvalidPlan(format!(
                        "plan has no node for agent {from}"
                    )));
                };
                // Rebind the node's inputs against its upstream (previous
                // node in plan order, matching the planner's chaining).
                let upstream = if pos > 0 {
                    let up = &refined.nodes[pos - 1];
                    self.registry
                        .get_spec(&up.agent)
                        .ok()
                        .map(|s| (up.id.clone(), s))
                } else {
                    None
                };
                let node = &mut refined.nodes[pos];
                node.agent = spec.name.clone();
                node.profile = spec.profile;
                node.inputs.clear();
                for input in &spec.inputs {
                    if let Some(binding) = self.bind(input, upstream.as_ref()) {
                        node.inputs.insert(input.name.clone(), binding);
                    } else if input.required {
                        return Err(PlanError::UnboundParameter {
                            node: node.id.clone(),
                            param: input.name.clone(),
                        });
                    }
                }
                // Downstream consumers rebind to the new agent's outputs.
                let node_id = refined.nodes[pos].id.clone();
                for later in refined.nodes.iter_mut().skip(pos + 1) {
                    for binding in later.inputs.values_mut() {
                        if let InputBinding::FromNode {
                            node: from_id,
                            output,
                        } = binding
                        {
                            if from_id == &node_id && spec.output(output).is_none() {
                                if let Some(first_out) = spec.outputs.first() {
                                    *output = first_out.name.clone();
                                }
                            }
                        }
                    }
                }
            }
            PlanFeedback::PinInput {
                agent,
                param,
                value,
            } => {
                let Some(node) = refined.nodes.iter_mut().find(|n| &n.agent == agent) else {
                    return Err(PlanError::InvalidPlan(format!(
                        "plan has no node for agent {agent}"
                    )));
                };
                node.inputs
                    .insert(param.clone(), InputBinding::Literal(value.clone()));
            }
        }
        refined.validate()?;
        Ok(refined)
    }

    /// Incremental (dynamic) planning (§V-F: the plan "evolves step by step
    /// rather than being predetermined in its entirety"): returns the next
    /// single-node plan given how many sub-tasks have already completed, or
    /// `None` when the decomposition is exhausted.
    pub fn plan_step(&self, utterance: &str, completed_steps: usize) -> Result<Option<TaskPlan>> {
        let (_, subtasks) = self.decompose(utterance);
        if completed_steps >= subtasks.len() {
            return Ok(None);
        }
        let step = &subtasks[completed_steps];
        let plan = self.plan_subtasks(utterance, std::slice::from_ref(step), &[])?;
        Ok(Some(plan))
    }

    /// Picks the best non-excluded agent for a sub-task.
    fn assign(&self, subtask: &str, exclude: &[String]) -> Result<AgentSpec> {
        let hits = self.registry.search(subtask, 8);
        for hit in hits {
            if hit.score < MIN_ASSIGNMENT_SCORE {
                break;
            }
            if exclude.iter().any(|e| e == &hit.name) {
                continue;
            }
            if let Ok(spec) = self.registry.get_spec(&hit.name) {
                return Ok(spec);
            }
        }
        Err(PlanError::NoAgentFor(subtask.to_string()))
    }

    /// Connects one input parameter (Fig 6's parameter matching).
    fn bind(
        &self,
        input: &ParamSpec,
        upstream: Option<&(String, AgentSpec)>,
    ) -> Option<InputBinding> {
        // 1. Best type-compatible upstream output by name/description
        //    similarity.
        if let Some((node_id, spec)) = upstream {
            let ie = embed_text(&format!("{} {}", input.name, input.description));
            let mut best: Option<(f32, &ParamSpec)> = None;
            for out in &spec.outputs {
                if !out.data_type.compatible_with(input.data_type) {
                    continue;
                }
                let oe = embed_text(&format!("{} {}", out.name, out.description));
                let score = ie.cosine(&oe);
                if best.is_none_or(|(b, _)| score > b) {
                    best = Some((score, out));
                }
            }
            if let Some((_, out)) = best {
                return Some(InputBinding::FromNode {
                    node: node_id.clone(),
                    output: out.name.clone(),
                });
            }
        }
        // 2. Text inputs read the user stream.
        if input.data_type == DataType::Text {
            return Some(InputBinding::FromUser);
        }
        // 3. Tables/lists are satisfied by the data planner at run time.
        if matches!(input.data_type, DataType::Table | DataType::List) {
            return Some(InputBinding::FromData {
                query: input.description.clone(),
            });
        }
        // 4. Required JSON inputs with no upstream read the user utterance;
        //    the task coordinator injects the data planner's `extract`
        //    transformation (PROFILER.CRITERIA ← USER.TEXT, §V-H).
        if input.required && input.data_type == DataType::Json {
            return Some(InputBinding::FromUser);
        }
        // 5. Declared default, else a null literal for Any-typed inputs.
        input.default.clone().map(InputBinding::Literal).or({
            if input.data_type == DataType::Json || input.data_type == DataType::Any {
                Some(InputBinding::Literal(json!(null)))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_agents::{CostProfile, ParamSpec};
    use blueprint_llmsim::ModelProfile;

    /// The YourJourney agents from the paper's Fig 6.
    fn registry() -> Arc<AgentRegistry> {
        let r = AgentRegistry::new();
        r.register(
            AgentSpec::new(
                "profiler",
                "collect job seeker profile information from the user via a form",
            )
            .with_input(ParamSpec::required(
                "text",
                "the user utterance",
                DataType::Text,
            ))
            .with_output(ParamSpec::required(
                "profile",
                "the collected job seeker profile",
                DataType::Json,
            ))
            .with_profile(CostProfile::new(0.5, 50_000, 0.95)),
        )
        .unwrap();
        r.register(
            AgentSpec::new(
                "job-matcher",
                "match the job seeker profile against available job listings and rank them",
            )
            .with_input(ParamSpec::required(
                "job_seeker_data",
                "the job seeker profile to match",
                DataType::Json,
            ))
            .with_input(ParamSpec::required(
                "jobs",
                "available job listings",
                DataType::Table,
            ))
            .with_input(ParamSpec::optional(
                "criteria",
                "additional matching conditions",
                DataType::Text,
            ))
            .with_output(ParamSpec::required(
                "matches",
                "ranked matched jobs",
                DataType::Table,
            ))
            .with_profile(CostProfile::new(2.0, 120_000, 0.9)),
        )
        .unwrap();
        r.register(
            AgentSpec::new("presenter", "present results and content to the end user")
                .with_input(ParamSpec::required(
                    "content",
                    "the content to present",
                    DataType::Any,
                ))
                .with_output(ParamSpec::required(
                    "rendered",
                    "the rendered presentation",
                    DataType::Text,
                ))
                .with_profile(CostProfile::new(0.1, 10_000, 1.0)),
        )
        .unwrap();
        r.register(
            AgentSpec::new(
                "nl2q",
                "translate a natural language question into a database query such as SQL",
            )
            .with_input(ParamSpec::required(
                "question",
                "the question",
                DataType::Text,
            ))
            .with_output(ParamSpec::required(
                "query",
                "the database query",
                DataType::Text,
            ))
            .with_profile(CostProfile::new(1.0, 80_000, 0.9)),
        )
        .unwrap();
        r.register(
            AgentSpec::new(
                "sql-executor",
                "execute a database query against the warehouse",
            )
            .with_input(ParamSpec::required(
                "query",
                "the SQL query text",
                DataType::Text,
            ))
            .with_output(ParamSpec::required(
                "rows",
                "the result rows",
                DataType::Table,
            ))
            .with_profile(CostProfile::new(0.01, 5_000, 1.0)),
        )
        .unwrap();
        r.register(
            AgentSpec::new(
                "query-summarizer",
                "summarize and explain database query results in natural language",
            )
            .with_input(ParamSpec::required(
                "rows",
                "the query result rows to explain",
                DataType::Table,
            ))
            .with_output(ParamSpec::required(
                "summary",
                "the explanation",
                DataType::Text,
            ))
            .with_profile(CostProfile::new(1.0, 90_000, 0.92)),
        )
        .unwrap();
        Arc::new(r)
    }

    fn planner() -> TaskPlanner {
        TaskPlanner::new(registry(), Arc::new(SimLlm::new(ModelProfile::large())))
    }

    const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

    #[test]
    fn running_example_produces_fig6_plan() {
        let plan = planner().plan(RUNNING_EXAMPLE).unwrap();
        let agents: Vec<&str> = plan.nodes.iter().map(|n| n.agent.as_str()).collect();
        assert_eq!(agents, ["profiler", "job-matcher", "presenter"]);
        // Parameter connections of Fig 6.
        let n2 = plan.node("n2").unwrap();
        assert_eq!(
            n2.inputs["job_seeker_data"],
            InputBinding::FromNode {
                node: "n1".into(),
                output: "profile".into()
            }
        );
        assert!(matches!(n2.inputs["jobs"], InputBinding::FromData { .. }));
        let n3 = plan.node("n3").unwrap();
        assert_eq!(
            n3.inputs["content"],
            InputBinding::FromNode {
                node: "n2".into(),
                output: "matches".into()
            }
        );
        plan.validate().unwrap();
    }

    #[test]
    fn open_query_plans_nl2q_pipeline() {
        let plan = planner()
            .plan("How many applicants have machine learning skills?")
            .unwrap();
        let agents: Vec<&str> = plan.nodes.iter().map(|n| n.agent.as_str()).collect();
        assert_eq!(agents, ["nl2q", "sql-executor", "query-summarizer"]);
        // query flows nl2q → sql-executor, rows flow executor → summarizer.
        assert_eq!(
            plan.node("n2").unwrap().inputs["query"],
            InputBinding::FromNode {
                node: "n1".into(),
                output: "query".into()
            }
        );
        assert_eq!(
            plan.node("n3").unwrap().inputs["rows"],
            InputBinding::FromNode {
                node: "n2".into(),
                output: "rows".into()
            }
        );
    }

    #[test]
    fn planning_records_usage() {
        let p = planner();
        let before = p.registry().get("profiler").unwrap().usage_count;
        p.plan(RUNNING_EXAMPLE).unwrap();
        assert_eq!(
            p.registry().get("profiler").unwrap().usage_count,
            before + 1
        );
    }

    #[test]
    fn task_ids_are_unique() {
        let p = planner();
        let a = p.plan(RUNNING_EXAMPLE).unwrap();
        let b = p.plan(RUNNING_EXAMPLE).unwrap();
        assert_ne!(a.task_id, b.task_id);
    }

    #[test]
    fn excluding_agent_reassigns_or_fails() {
        let p = planner();
        match p.plan_excluding(RUNNING_EXAMPLE, &["job-matcher".to_string()]) {
            // A substitute assignment is acceptable — but never the
            // excluded agent.
            Ok(plan) => {
                assert!(plan.nodes.iter().all(|n| n.agent != "job-matcher"));
            }
            Err(e) => {
                assert!(
                    matches!(e, PlanError::NoAgentFor(_))
                        || matches!(e, PlanError::UnboundParameter { .. })
                );
            }
        }
    }

    #[test]
    fn empty_registry_cannot_plan() {
        let p = TaskPlanner::new(
            Arc::new(AgentRegistry::new()),
            Arc::new(SimLlm::new(ModelProfile::large())),
        );
        assert!(matches!(
            p.plan(RUNNING_EXAMPLE),
            Err(PlanError::NoAgentFor(_))
        ));
    }

    #[test]
    fn ad_hoc_subtasks_plan() {
        let p = planner();
        let plan = p
            .plan_subtasks(
                "summarize the applicants",
                &["summarize and explain the query results".to_string()],
                &[],
            )
            .unwrap();
        assert_eq!(plan.nodes.len(), 1);
        assert_eq!(plan.nodes[0].agent, "query-summarizer");
        // A Table input with no upstream becomes a data-planner binding.
        assert!(matches!(
            plan.nodes[0].inputs["rows"],
            InputBinding::FromData { .. }
        ));
    }

    #[test]
    fn projected_profile_reflects_assigned_agents() {
        let plan = planner().plan(RUNNING_EXAMPLE).unwrap();
        let profile = plan.projected_profile();
        // profiler 0.5 + matcher 2.0 + presenter 0.1.
        assert!((profile.cost_per_call - 2.6).abs() < 1e-9);
        assert_eq!(profile.latency_micros, 180_000);
    }

    #[test]
    fn refine_remove_rewires_consumers() {
        let p = planner();
        let plan = p.plan(RUNNING_EXAMPLE).unwrap();
        // "skip profiling" — the matcher's profile input falls back to user.
        let refined = p
            .refine(&plan, &PlanFeedback::RemoveAgent("profiler".into()))
            .unwrap();
        assert_eq!(refined.nodes.len(), 2);
        assert!(refined.nodes.iter().all(|n| n.agent != "profiler"));
        let matcher = refined
            .nodes
            .iter()
            .find(|n| n.agent == "job-matcher")
            .unwrap();
        assert_eq!(matcher.inputs["job_seeker_data"], InputBinding::FromUser);
        refined.validate().unwrap();
        // Original plan untouched.
        assert_eq!(plan.nodes.len(), 3);
    }

    #[test]
    fn refine_remove_middle_rebinds_to_upstream() {
        let p = planner();
        let plan = p.plan(RUNNING_EXAMPLE).unwrap();
        let refined = p
            .refine(&plan, &PlanFeedback::RemoveAgent("job-matcher".into()))
            .unwrap();
        // Presenter now consumes the profiler's output directly.
        let presenter = refined
            .nodes
            .iter()
            .find(|n| n.agent == "presenter")
            .unwrap();
        assert_eq!(
            presenter.inputs["content"],
            InputBinding::FromNode {
                node: "n1".into(),
                output: "profile".into()
            }
        );
    }

    #[test]
    fn refine_replace_swaps_agent_and_rebinds() {
        let p = planner();
        let plan = p.plan("How many applicants have ml skills?").unwrap();
        // Swap the query summarizer for the presenter.
        let refined = p
            .refine(
                &plan,
                &PlanFeedback::ReplaceAgent {
                    from: "query-summarizer".into(),
                    to: "presenter".into(),
                },
            )
            .unwrap();
        let last = refined.nodes.last().unwrap();
        assert_eq!(last.agent, "presenter");
        assert_eq!(
            last.inputs["content"],
            InputBinding::FromNode {
                node: "n2".into(),
                output: "rows".into()
            }
        );
    }

    #[test]
    fn refine_pin_input() {
        let p = planner();
        let plan = p.plan(RUNNING_EXAMPLE).unwrap();
        let refined = p
            .refine(
                &plan,
                &PlanFeedback::PinInput {
                    agent: "job-matcher".into(),
                    param: "criteria".into(),
                    value: serde_json::json!("remote only"),
                },
            )
            .unwrap();
        let matcher = refined
            .nodes
            .iter()
            .find(|n| n.agent == "job-matcher")
            .unwrap();
        assert_eq!(
            matcher.inputs["criteria"],
            InputBinding::Literal(serde_json::json!("remote only"))
        );
    }

    #[test]
    fn refine_unknown_targets_error() {
        let p = planner();
        let plan = p.plan(RUNNING_EXAMPLE).unwrap();
        assert!(p
            .refine(&plan, &PlanFeedback::RemoveAgent("ghost".into()))
            .is_err());
        assert!(p
            .refine(
                &plan,
                &PlanFeedback::ReplaceAgent {
                    from: "profiler".into(),
                    to: "ghost".into()
                }
            )
            .is_err());
    }

    #[test]
    fn incremental_planning_steps_through_decomposition() {
        let p = planner();
        let mut steps = Vec::new();
        let mut completed = 0usize;
        while let Some(step) = p.plan_step(RUNNING_EXAMPLE, completed).unwrap() {
            assert_eq!(step.nodes.len(), 1);
            steps.push(step.nodes[0].agent.clone());
            completed += 1;
        }
        assert_eq!(steps, ["profiler", "job-matcher", "presenter"]);
        assert!(p.plan_step(RUNNING_EXAMPLE, completed).unwrap().is_none());
    }

    #[test]
    fn greeting_plans_conversational_response() {
        // With no conversational agent registered, planning fails cleanly.
        let p = planner();
        let result = p.plan("hello!");
        assert!(matches!(result, Err(PlanError::NoAgentFor(_))) || result.is_ok());
    }
}
