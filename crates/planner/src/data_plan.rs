//! Data plans: operator DAGs over multi-modal sources (Fig 7).

use serde::{Deserialize, Serialize};
use serde_json::Value;

use blueprint_agents::ops;
use blueprint_datastore::CostEstimate;
use blueprint_streams::Message;

use crate::error::PlanError;
use crate::Result;

/// Operators the data planner composes. Beyond relational operators the
/// paper calls for "several new operators ... to discover data, handle text
/// operations, etc." (§V-G) — `Q2NL`, `Knowledge`, `Extract`, `Summarize`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataOp {
    /// A constant input.
    Literal {
        /// The constant.
        value: Value,
    },
    /// Transforms a structured query fragment into a natural-language
    /// question for a parametric source — the operator the planner *injects*
    /// in Fig 7.
    Q2NL {
        /// The query fragment (e.g. `city ∈ "SF bay area"`).
        fragment: String,
    },
    /// Asks a parametric source (LLM) a knowledge question.
    /// Input slot `question` (from a `Q2NL` node).
    Knowledge {
        /// Data-source name in the planner's source set.
        source: String,
    },
    /// Expands a node through the graph source (title taxonomy).
    GraphExpand {
        /// Data-source name.
        source: String,
        /// Start node id.
        node: String,
        /// Hop bound.
        depth: usize,
    },
    /// Executes a SQL template against a relational source. `{slot}`
    /// placeholders splice in upstream list results as quoted literals.
    SqlTemplate {
        /// Data-source name.
        source: String,
        /// SQL text with `{slot}` placeholders.
        template: String,
    },
    /// Ranked search against a document source.
    DocSearch {
        /// Data-source name.
        source: String,
        /// Keyword query.
        query: String,
        /// Maximum hits.
        limit: usize,
    },
    /// Extracts structured criteria from text (LLM extract head).
    /// Input slot `text`.
    Extract,
    /// Summarizes a table into prose (LLM summarize head).
    /// Input slot `rows`.
    Summarize,
}

impl DataOp {
    /// One-line rendering of the operator (shared by the Fig 7 renderer and
    /// the unified plan IR renderer).
    pub fn detail(&self) -> String {
        match self {
            DataOp::Literal { value } => format!("literal({value})"),
            DataOp::Q2NL { fragment } => format!("q2nl(\"{fragment}\")"),
            DataOp::Knowledge { source } => format!("knowledge[{source}]"),
            DataOp::GraphExpand {
                source,
                node,
                depth,
            } => format!("graph-expand[{source}]({node}, depth {depth})"),
            DataOp::SqlTemplate { source, template } => format!("sql[{source}]: {template}"),
            DataOp::DocSearch {
                source,
                query,
                limit,
            } => format!("doc-search[{source}](\"{query}\", limit {limit})"),
            DataOp::Extract => "extract".to_string(),
            DataOp::Summarize => "summarize".to_string(),
        }
    }

    /// Operator name for rendering and traces.
    pub fn name(&self) -> &'static str {
        match self {
            DataOp::Literal { .. } => "literal",
            DataOp::Q2NL { .. } => "q2nl",
            DataOp::Knowledge { .. } => "knowledge",
            DataOp::GraphExpand { .. } => "graph-expand",
            DataOp::SqlTemplate { .. } => "sql",
            DataOp::DocSearch { .. } => "doc-search",
            DataOp::Extract => "extract",
            DataOp::Summarize => "summarize",
        }
    }
}

/// One operator instance in the plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataNode {
    /// Node id (unique in the plan).
    pub id: String,
    /// The operator.
    pub op: DataOp,
    /// Input wiring: `(slot name, producing node id)`.
    pub inputs: Vec<(String, String)>,
    /// Planner's QoS estimate for this node.
    pub estimate: CostEstimate,
}

/// An operator DAG with a designated output node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DataPlan {
    /// Free-text description of the request this plan answers.
    pub request: String,
    /// Nodes in insertion order (insertion order must be topological).
    pub nodes: Vec<DataNode>,
    /// Id of the node whose result is the plan's answer.
    pub output: String,
}

impl DataPlan {
    /// Creates an empty plan for a request.
    pub fn new(request: impl Into<String>) -> Self {
        DataPlan {
            request: request.into(),
            nodes: Vec::new(),
            output: String::new(),
        }
    }

    /// Adds a node and returns its id.
    pub fn push(&mut self, node: DataNode) -> String {
        let id = node.id.clone();
        self.nodes.push(node);
        self.output = id.clone();
        id
    }

    /// Node lookup.
    pub fn node(&self, id: &str) -> Option<&DataNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Validates: unique ids, inputs reference earlier nodes, output exists.
    pub fn validate(&self) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        for n in &self.nodes {
            for (slot, dep) in &n.inputs {
                if !seen.contains(dep.as_str()) {
                    return Err(PlanError::InvalidPlan(format!(
                        "node {} slot {slot} references {dep}, which is not an earlier node",
                        n.id
                    )));
                }
            }
            if !seen.insert(n.id.as_str()) {
                return Err(PlanError::InvalidPlan(format!(
                    "duplicate node id: {}",
                    n.id
                )));
            }
        }
        if !self.nodes.is_empty() && self.node(&self.output).is_none() {
            return Err(PlanError::InvalidPlan(format!(
                "output node {} not in plan",
                self.output
            )));
        }
        Ok(())
    }

    /// Total estimated QoS: costs/latencies add, accuracies multiply.
    pub fn projected_estimate(&self) -> CostEstimate {
        let mut total = CostEstimate::FREE;
        for n in &self.nodes {
            total = CostEstimate {
                cost_units: total.cost_units + n.estimate.cost_units,
                latency_micros: total.latency_micros + n.estimate.latency_micros,
                accuracy: total.accuracy * n.estimate.accuracy,
            };
        }
        total
    }

    /// Wraps the plan in a `data-plan` control message.
    pub fn into_message(self) -> Message {
        let value = serde_json::to_value(&self).expect("DataPlan serializes");
        Message::control(ops::DATA_PLAN, value).with_tag("plan")
    }

    /// Parses a plan from a `data-plan` control message.
    pub fn from_message(msg: &Message) -> Option<DataPlan> {
        if msg.control_op() != Some(ops::DATA_PLAN) {
            return None;
        }
        serde_json::from_value(msg.control_args()?.clone()).ok()
    }

    /// Renders the plan — the Fig 7 regeneration format:
    ///
    /// ```text
    /// data plan for: "data scientist position in sf bay area"
    ///   d1 q2nl("city ∈ 'SF bay area'")
    ///   d2 knowledge[gpt-knowledge](question ← d1)   ~cost 0.4
    ///   d3 graph-expand[title-taxonomy](data-scientist, depth 1)
    ///   d4 sql[hr-db]: SELECT * FROM jobs WHERE city IN ({cities}) …
    ///      (cities ← d2, titles ← d3)
    /// output: d4
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = format!("data plan for: \"{}\"\n", self.request);
        for n in &self.nodes {
            let detail = n.op.detail();
            let wiring = if n.inputs.is_empty() {
                String::new()
            } else {
                let parts: Vec<String> = n
                    .inputs
                    .iter()
                    .map(|(slot, dep)| format!("{slot} ← {dep}"))
                    .collect();
                format!(" ({})", parts.join(", "))
            };
            out.push_str(&format!("  {} {}{}\n", n.id, detail, wiring));
        }
        out.push_str(&format!("output: {}\n", self.output));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn fig7_plan() -> DataPlan {
        let mut plan = DataPlan::new("data scientist position in sf bay area");
        plan.push(DataNode {
            id: "d1".into(),
            op: DataOp::Q2NL {
                fragment: "city ∈ 'SF bay area'".into(),
            },
            inputs: vec![],
            estimate: CostEstimate::FREE,
        });
        plan.push(DataNode {
            id: "d2".into(),
            op: DataOp::Knowledge {
                source: "gpt-knowledge".into(),
            },
            inputs: vec![("question".into(), "d1".into())],
            estimate: CostEstimate {
                cost_units: 0.4,
                latency_micros: 300_000,
                accuracy: 0.95,
            },
        });
        plan.push(DataNode {
            id: "d3".into(),
            op: DataOp::GraphExpand {
                source: "title-taxonomy".into(),
                node: "data-scientist".into(),
                depth: 1,
            },
            inputs: vec![],
            estimate: CostEstimate {
                cost_units: 0.001,
                latency_micros: 80,
                accuracy: 1.0,
            },
        });
        plan.push(DataNode {
            id: "d4".into(),
            op: DataOp::SqlTemplate {
                source: "hr-db".into(),
                template: "SELECT * FROM jobs WHERE city IN ({cities}) AND title IN ({titles})"
                    .into(),
            },
            inputs: vec![
                ("cities".into(), "d2".into()),
                ("titles".into(), "d3".into()),
            ],
            estimate: CostEstimate {
                cost_units: 0.001,
                latency_micros: 1_000,
                accuracy: 1.0,
            },
        });
        plan
    }

    #[test]
    fn fig7_plan_validates() {
        let plan = fig7_plan();
        plan.validate().unwrap();
        assert_eq!(plan.output, "d4");
        assert_eq!(plan.node("d2").unwrap().op.name(), "knowledge");
    }

    #[test]
    fn forward_reference_rejected() {
        let mut plan = DataPlan::new("r");
        plan.push(DataNode {
            id: "a".into(),
            op: DataOp::Knowledge { source: "s".into() },
            inputs: vec![("question".into(), "b".into())],
            estimate: CostEstimate::FREE,
        });
        plan.push(DataNode {
            id: "b".into(),
            op: DataOp::Q2NL {
                fragment: "f".into(),
            },
            inputs: vec![],
            estimate: CostEstimate::FREE,
        });
        assert!(plan.validate().is_err());
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut plan = DataPlan::new("r");
        for _ in 0..2 {
            plan.push(DataNode {
                id: "a".into(),
                op: DataOp::Literal { value: json!(1) },
                inputs: vec![],
                estimate: CostEstimate::FREE,
            });
        }
        assert!(plan.validate().is_err());
    }

    #[test]
    fn bad_output_rejected() {
        let mut plan = fig7_plan();
        plan.output = "ghost".into();
        assert!(plan.validate().is_err());
    }

    #[test]
    fn projected_estimate_composes() {
        let est = fig7_plan().projected_estimate();
        assert!((est.cost_units - 0.402).abs() < 1e-9);
        assert_eq!(est.latency_micros, 301_080);
        assert!((est.accuracy - 0.95).abs() < 1e-9);
    }

    #[test]
    fn message_round_trip() {
        let plan = fig7_plan();
        let msg = plan.clone().into_message();
        let back = DataPlan::from_message(&msg).unwrap();
        assert_eq!(back, plan);
        assert!(DataPlan::from_message(&Message::data("x")).is_none());
    }

    #[test]
    fn render_shows_injected_q2nl_and_sources() {
        let text = fig7_plan().render_text();
        assert!(text.contains("q2nl(\"city ∈ 'SF bay area'\")"));
        assert!(text.contains("knowledge[gpt-knowledge]"));
        assert!(text.contains("graph-expand[title-taxonomy]"));
        assert!(text.contains("sql[hr-db]"));
        assert!(text.contains("cities ← d2"));
        assert!(text.contains("output: d4"));
    }

    #[test]
    fn op_names_cover_variants() {
        assert_eq!(DataOp::Literal { value: json!(1) }.name(), "literal");
        assert_eq!(DataOp::Extract.name(), "extract");
        assert_eq!(DataOp::Summarize.name(), "summarize");
        assert_eq!(
            DataOp::DocSearch {
                source: "s".into(),
                query: "q".into(),
                limit: 1
            }
            .name(),
            "doc-search"
        );
    }
}
