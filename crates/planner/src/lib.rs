//! # blueprint-planner
//!
//! The blueprint's two planners (§V-F, §V-G):
//!
//! * the **task planner** — an agent that interprets a user utterance and
//!   produces a [`TaskPlan`]: a DAG whose nodes are sub-tasks assigned to
//!   registry agents with input/output parameters connected (Fig 6);
//! * the **data planner** — invoked by agents and by the task coordinator
//!   to "provide agents with the right data": it decomposes a data
//!   retrieval/transformation request into a [`DataPlan`] over operators
//!   (discover, select, join, extract, summarize, Q2NL, ...) spanning
//!   sources of different modalities, injecting operators where needed —
//!   e.g. routing "cities in the SF bay area" to an LLM-as-data-source and
//!   splicing the answer into a relational query (Fig 7) — and optimizing
//!   source choices under QoS constraints.
//!
//! Both plan forms lower into the unified [`PlanIr`] (see [`ir`]), the
//! single typed DAG that the optimizer searches and the coordinator
//! executes.

pub mod data_plan;
pub mod data_planner;
pub mod error;
pub mod ir;
pub mod plan;
pub mod task_planner;

pub use data_plan::{DataNode, DataOp, DataPlan};
pub use data_planner::{DataPlanner, ExecutedPlan};
pub use error::PlanError;
pub use ir::{IrAlternative, IrBinding, IrKind, IrNode, IrPort, IrQos, PlanIr, TierSwitch};
pub use plan::{InputBinding, PlanEdge, PlanNode, TaskPlan};
pub use task_planner::{PlanFeedback, TaskPlanner};

/// Result alias for planner operations.
pub type Result<T> = std::result::Result<T, PlanError>;
