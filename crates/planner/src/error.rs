//! Error type for planning.

use std::fmt;

/// Errors raised by the task and data planners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No agent in the registry covers a sub-task.
    NoAgentFor(String),
    /// No data source can answer a query shape.
    NoSourceFor(String),
    /// A plan failed structural validation (cycle, dangling edge, ...).
    InvalidPlan(String),
    /// Parameters could not be connected between two nodes.
    UnboundParameter {
        /// Node whose input is unbound.
        node: String,
        /// The parameter name.
        param: String,
    },
    /// No feasible plan exists under the QoS constraints.
    Infeasible(String),
    /// An underlying component failed during plan execution.
    Execution(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoAgentFor(task) => write!(f, "no agent found for sub-task: {task}"),
            PlanError::NoSourceFor(q) => write!(f, "no data source for: {q}"),
            PlanError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            PlanError::UnboundParameter { node, param } => {
                write!(f, "unbound required parameter {param} on node {node}")
            }
            PlanError::Infeasible(msg) => write!(f, "no feasible plan: {msg}"),
            PlanError::Execution(msg) => write!(f, "plan execution failed: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PlanError::NoAgentFor("x".into())
            .to_string()
            .contains("no agent"));
        assert!(PlanError::NoSourceFor("x".into())
            .to_string()
            .contains("no data source"));
        assert!(PlanError::InvalidPlan("c".into())
            .to_string()
            .contains("invalid"));
        let u = PlanError::UnboundParameter {
            node: "n1".into(),
            param: "jobs".into(),
        };
        assert_eq!(u.to_string(), "unbound required parameter jobs on node n1");
        assert!(PlanError::Infeasible("i".into())
            .to_string()
            .contains("feasible"));
        assert!(PlanError::Execution("e".into())
            .to_string()
            .contains("failed"));
    }
}
