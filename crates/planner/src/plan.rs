//! Task plans: DAGs connecting agent inputs and outputs (Fig 6).

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};
use serde_json::Value;

use blueprint_agents::{ops, CostProfile};
use blueprint_streams::Message;

use crate::error::PlanError;
use crate::Result;

/// Where a plan node's input parameter gets its value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InputBinding {
    /// The original user utterance (or a user-provided value).
    FromUser,
    /// The named output of an upstream node.
    FromNode {
        /// Producing node id.
        node: String,
        /// Output parameter name on that node's agent.
        output: String,
    },
    /// A constant.
    Literal(Value),
    /// To be satisfied by the data planner at execution time: the task
    /// coordinator invokes the data planner with this query to produce the
    /// value (§V-H, e.g. `JOBS ← data("job listings")` in Fig 6).
    FromData {
        /// Natural-language description of the data needed.
        query: String,
    },
}

/// One sub-task assigned to an agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// Node id (unique within the plan, e.g. `n1`).
    pub id: String,
    /// Assigned agent name.
    pub agent: String,
    /// The sub-task description this node covers.
    pub task: String,
    /// Input parameter bindings.
    pub inputs: BTreeMap<String, InputBinding>,
    /// The agent's QoS profile (copied at planning time for the budget).
    pub profile: CostProfile,
}

/// A dataflow edge (derived from `FromNode` bindings).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanEdge {
    /// Producing node id.
    pub from: String,
    /// Consuming node id.
    pub to: String,
}

/// An agentic workflow: a DAG of agent invocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TaskPlan {
    /// Unique task id.
    pub task_id: String,
    /// The utterance this plan serves.
    pub utterance: String,
    /// Nodes in insertion order.
    pub nodes: Vec<PlanNode>,
}

impl TaskPlan {
    /// Creates an empty plan.
    pub fn new(task_id: impl Into<String>, utterance: impl Into<String>) -> Self {
        TaskPlan {
            task_id: task_id.into(),
            utterance: utterance.into(),
            nodes: Vec::new(),
        }
    }

    /// Adds a node.
    pub fn push(&mut self, node: PlanNode) {
        self.nodes.push(node);
    }

    /// Node lookup.
    pub fn node(&self, id: &str) -> Option<&PlanNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Edges derived from `FromNode` bindings.
    pub fn edges(&self) -> Vec<PlanEdge> {
        let mut edges = Vec::new();
        for n in &self.nodes {
            for binding in n.inputs.values() {
                if let InputBinding::FromNode { node, .. } = binding {
                    edges.push(PlanEdge {
                        from: node.clone(),
                        to: n.id.clone(),
                    });
                }
            }
        }
        edges
    }

    /// Validates structure: unique ids, known upstream references,
    /// acyclicity.
    pub fn validate(&self) -> Result<()> {
        let mut ids = HashSet::new();
        for n in &self.nodes {
            if !ids.insert(n.id.as_str()) {
                return Err(PlanError::InvalidPlan(format!(
                    "duplicate node id: {}",
                    n.id
                )));
            }
        }
        for n in &self.nodes {
            for b in n.inputs.values() {
                if let InputBinding::FromNode { node, .. } = b {
                    if !ids.contains(node.as_str()) {
                        return Err(PlanError::InvalidPlan(format!(
                            "node {} references unknown node {node}",
                            n.id
                        )));
                    }
                    if node == &n.id {
                        return Err(PlanError::InvalidPlan(format!(
                            "node {} depends on itself",
                            n.id
                        )));
                    }
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order of node ids; errors on cycles.
    ///
    /// Deterministic: among simultaneously ready nodes, insertion order
    /// wins — so planner-produced chains execute exactly in the order they
    /// were planned, and hand-built DAGs get a stable order.
    pub fn topo_order(&self) -> Result<Vec<String>> {
        let position: HashMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id.as_str(), i))
            .collect();
        let mut indegree: HashMap<&str, usize> =
            self.nodes.iter().map(|n| (n.id.as_str(), 0)).collect();
        let mut adjacency: HashMap<&str, Vec<&str>> = HashMap::new();
        for e in self.edges() {
            if !position.contains_key(e.from.as_str()) {
                return Err(PlanError::InvalidPlan(format!(
                    "unknown edge source {}",
                    e.from
                )));
            }
            let from = self
                .nodes
                .iter()
                .find(|n| n.id == e.from)
                .map(|n| n.id.as_str())
                .expect("checked above");
            let to = self
                .nodes
                .iter()
                .find(|n| n.id == e.to)
                .map(|n| n.id.as_str())
                .expect("edge target exists by construction");
            adjacency.entry(from).or_default().push(to);
            *indegree.get_mut(to).expect("indegree entry") += 1;
        }
        // Kahn with the ready set kept sorted by insertion position.
        let mut ready: Vec<&str> = self
            .nodes
            .iter()
            .filter(|n| indegree[n.id.as_str()] == 0)
            .map(|n| n.id.as_str())
            .collect();
        ready.sort_by_key(|id| position[id]);
        let mut order = Vec::with_capacity(self.nodes.len());
        while !ready.is_empty() {
            let id = ready.remove(0);
            order.push(id.to_string());
            for &next in adjacency.get(id).into_iter().flatten() {
                let d = indegree.get_mut(next).expect("indegree entry");
                *d -= 1;
                if *d == 0 {
                    let pos = ready
                        .binary_search_by_key(&position[next], |r| position[r])
                        .unwrap_or_else(|i| i);
                    ready.insert(pos, next);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(PlanError::InvalidPlan("plan contains a cycle".into()));
        }
        Ok(order)
    }

    /// Projected QoS of the whole plan: cost and latency add along the
    /// sequential execution, accuracy multiplies.
    pub fn projected_profile(&self) -> CostProfile {
        self.nodes
            .iter()
            .fold(CostProfile::FREE, |acc, n| acc.then(&n.profile))
    }

    /// Wraps the plan in a `task-plan` control message.
    pub fn into_message(self) -> Message {
        let value = serde_json::to_value(&self).expect("TaskPlan serializes");
        Message::control(ops::TASK_PLAN, value).with_tag("plan")
    }

    /// Parses a plan from a `task-plan` control message.
    pub fn from_message(msg: &Message) -> Option<TaskPlan> {
        if msg.control_op() != Some(ops::TASK_PLAN) {
            return None;
        }
        serde_json::from_value(msg.control_args()?.clone()).ok()
    }

    /// Renders the plan as text — the Fig 6 regeneration format:
    ///
    /// ```text
    /// task t1: "I am looking for a data scientist position in SF bay area."
    ///   n1 PROFILER(text ← user) → profile
    ///   n2 JOB-MATCHER(job_seeker_data ← n1.profile, jobs ← …) → matches
    ///   n3 PRESENTER(content ← n2.matches) → rendered
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = format!("task {}: \"{}\"\n", self.task_id, self.utterance);
        for n in &self.nodes {
            let inputs: Vec<String> = n
                .inputs
                .iter()
                .map(|(p, b)| match b {
                    InputBinding::FromUser => format!("{p} ← user"),
                    InputBinding::FromNode { node, output } => {
                        format!("{p} ← {node}.{output}")
                    }
                    InputBinding::Literal(v) => format!("{p} ← {v}"),
                    InputBinding::FromData { query } => format!("{p} ← data(\"{query}\")"),
                })
                .collect();
            out.push_str(&format!(
                "  {} {}({})\n",
                n.id,
                n.agent.to_uppercase(),
                inputs.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn node(id: &str, agent: &str) -> PlanNode {
        PlanNode {
            id: id.into(),
            agent: agent.into(),
            task: format!("task for {agent}"),
            inputs: BTreeMap::new(),
            profile: CostProfile::new(1.0, 1_000, 0.9),
        }
    }

    fn chain() -> TaskPlan {
        let mut plan = TaskPlan::new("t1", "find me a data scientist job");
        let mut n1 = node("n1", "profiler");
        n1.inputs.insert("text".into(), InputBinding::FromUser);
        let mut n2 = node("n2", "job-matcher");
        n2.inputs.insert(
            "job_seeker_data".into(),
            InputBinding::FromNode {
                node: "n1".into(),
                output: "profile".into(),
            },
        );
        n2.inputs
            .insert("jobs".into(), InputBinding::Literal(json!([])));
        let mut n3 = node("n3", "presenter");
        n3.inputs.insert(
            "content".into(),
            InputBinding::FromNode {
                node: "n2".into(),
                output: "matches".into(),
            },
        );
        plan.push(n1);
        plan.push(n2);
        plan.push(n3);
        plan
    }

    #[test]
    fn valid_chain_passes_and_orders() {
        let plan = chain();
        plan.validate().unwrap();
        assert_eq!(plan.topo_order().unwrap(), ["n1", "n2", "n3"]);
        assert_eq!(plan.edges().len(), 2);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut plan = chain();
        plan.push(node("n1", "dup"));
        assert!(matches!(plan.validate(), Err(PlanError::InvalidPlan(_))));
    }

    #[test]
    fn unknown_reference_rejected() {
        let mut plan = TaskPlan::new("t", "u");
        let mut n = node("n1", "a");
        n.inputs.insert(
            "x".into(),
            InputBinding::FromNode {
                node: "ghost".into(),
                output: "o".into(),
            },
        );
        plan.push(n);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn self_loop_rejected() {
        let mut plan = TaskPlan::new("t", "u");
        let mut n = node("n1", "a");
        n.inputs.insert(
            "x".into(),
            InputBinding::FromNode {
                node: "n1".into(),
                output: "o".into(),
            },
        );
        plan.push(n);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn cycle_rejected() {
        let mut plan = TaskPlan::new("t", "u");
        let mut a = node("a", "x");
        a.inputs.insert(
            "i".into(),
            InputBinding::FromNode {
                node: "b".into(),
                output: "o".into(),
            },
        );
        let mut b = node("b", "y");
        b.inputs.insert(
            "i".into(),
            InputBinding::FromNode {
                node: "a".into(),
                output: "o".into(),
            },
        );
        plan.push(a);
        plan.push(b);
        assert!(
            matches!(plan.validate(), Err(PlanError::InvalidPlan(msg)) if msg.contains("cycle"))
        );
    }

    #[test]
    fn out_of_order_insertion_still_topo_sorts() {
        let mut plan = TaskPlan::new("t", "u");
        // Insert consumer before producer.
        let mut consumer = node("n2", "b");
        consumer.inputs.insert(
            "i".into(),
            InputBinding::FromNode {
                node: "n1".into(),
                output: "o".into(),
            },
        );
        plan.push(consumer);
        plan.push(node("n1", "a"));
        let order = plan.topo_order().unwrap();
        assert_eq!(order, ["n1", "n2"]);
    }

    #[test]
    fn projected_profile_composes() {
        let plan = chain();
        let p = plan.projected_profile();
        assert!((p.cost_per_call - 3.0).abs() < 1e-9);
        assert_eq!(p.latency_micros, 3_000);
        assert!((p.accuracy - 0.729).abs() < 1e-9);
    }

    #[test]
    fn message_round_trip() {
        let plan = chain();
        let msg = plan.clone().into_message();
        assert!(msg.has_tag(&blueprint_streams::Tag::new("plan")));
        let back = TaskPlan::from_message(&msg).unwrap();
        assert_eq!(back, plan);
        assert!(TaskPlan::from_message(&Message::data("x")).is_none());
    }

    #[test]
    fn render_text_shows_connections() {
        let text = chain().render_text();
        assert!(text.contains("n1 PROFILER(text ← user)"));
        assert!(text.contains("job_seeker_data ← n1.profile"));
        assert!(text.contains("content ← n2.matches"));
    }

    #[test]
    fn empty_plan_is_valid() {
        let plan = TaskPlan::new("t", "u");
        plan.validate().unwrap();
        assert!(plan.topo_order().unwrap().is_empty());
        assert_eq!(plan.projected_profile(), CostProfile::FREE);
    }
}
